//! Crash a participant between its YES vote and the decision, restart it,
//! and watch recovery resolve the in-doubt transaction from the logs.
//!
//! A participant that force-logged `prepared YES` (with its `(vi, pi)`
//! policy-version tuples, as 2PVC requires) is *in doubt* after a crash: it
//! must ask the coordinator. The TM answers from its own forced decision
//! record and the participant applies the commit it had never heard.
//!
//! ```bash
//! cargo run --example recovery
//! ```

use safetx::core::{CloudServerActor, ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme};
use safetx::policy::{Atom, Constant, PolicyBuilder};
use safetx::store::Value;
use safetx::txn::{Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};

fn main() {
    let mut exp = Experiment::new(ExperimentConfig {
        servers: 2,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        ..Default::default()
    });
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text("grant(write, records) :- role(U, member).")
        .expect("rules parse")
        .build();
    exp.catalog().publish(policy);
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    exp.seed_item(ServerId::new(1), DataItemId::new(10), Value::Int(5));

    let credential = exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    let spec = TransactionSpec::new(
        TxnId::new(1),
        UserId::new(1),
        vec![
            QuerySpec::new(
                ServerId::new(0),
                "write",
                "records",
                vec![Operation::Write(DataItemId::new(0), Value::Int(1))],
            ),
            QuerySpec::new(
                ServerId::new(1),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(10), 1)],
            ),
        ],
    );
    exp.submit(spec, vec![credential], Duration::ZERO);

    // Timeline with 1 ms links: queries done by ~4 ms; Prepare-to-Commit at
    // ~4 ms reaches the servers at ~5 ms, votes return at ~6 ms; decisions
    // go out at ~6 ms. Crash server 1 at 5.5 ms: it has force-logged
    // `prepared YES` and voted, but the COMMIT decision will find it down.
    let s1 = exp.book().server_node(ServerId::new(1));
    exp.world_mut()
        .schedule_crash(Duration::from_micros(5_500), s1);
    exp.world_mut()
        .schedule_restart(Duration::from_millis(20), s1);

    exp.run();

    let record = &exp.report().records[0];
    println!("transaction outcome at the TM: {}\n", record.outcome);
    assert!(record.outcome.is_commit(), "all YES votes were in");

    let server = exp
        .world()
        .actor::<CloudServerActor>(s1)
        .expect("server exists");
    println!("participant s1's write-ahead log after recovery:");
    print!("{}", server.wal());
    println!();
    println!(
        "s1's store after recovery: x10 = {:?} (committed write applied)",
        server.store().read_int(DataItemId::new(10))
    );
    assert_eq!(
        server.store().read_int(DataItemId::new(10)),
        Some(6),
        "the in-doubt write must be applied after the inquiry"
    );
    println!();
    println!("sequence: prepared-YES force-logged -> crash -> restart -> inquiry to");
    println!("the TM -> TM answers COMMIT from its forced decision record -> s1");
    println!("force-logs the decision and applies the write set.");
}
