//! Quickstart: run one policy-checked distributed transaction end to end.
//!
//! Builds the Figure-2 deployment — a transaction manager, three cloud
//! servers with policy replicas, a master version server and a certificate
//! authority — then submits a three-query transaction and commits it with
//! Two-Phase Validation Commit (2PVC).
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use safetx::core::{ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme};
use safetx::policy::{Atom, Constant, PolicyBuilder};
use safetx::store::Value;
use safetx::txn::{Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};

fn main() {
    // 1. A deployment: 3 servers, Deferred proofs, view consistency.
    let mut exp = Experiment::new(ExperimentConfig {
        servers: 3,
        scheme: ProofScheme::Deferred,
        consistency: ConsistencyLevel::View,
        ..Default::default()
    });

    // 2. The administrator publishes an authorization policy: members may
    //    read and write `records`.
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build();
    exp.catalog().publish(policy);
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);

    // 3. Seed some data.
    exp.seed_item(ServerId::new(1), DataItemId::new(10), Value::Int(100));

    // 4. A certificate authority vouches that Alice is a member.
    let alice = UserId::new(1);
    let credential = exp.issue_credential(
        alice,
        Atom::fact(
            "role",
            vec![Constant::symbol("alice"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    println!("credential: {credential}");

    // 5. Alice's transaction touches all three servers.
    let spec = TransactionSpec::new(
        TxnId::new(1),
        alice,
        vec![
            QuerySpec::new(
                ServerId::new(0),
                "read",
                "records",
                vec![Operation::Read(DataItemId::new(0))],
            ),
            QuerySpec::new(
                ServerId::new(1),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(10), -25)],
            ),
            QuerySpec::new(
                ServerId::new(2),
                "write",
                "records",
                vec![Operation::Write(DataItemId::new(20), Value::Int(7))],
            ),
        ],
    );
    println!("transaction: {spec}\n");
    exp.submit(spec, vec![credential], Duration::ZERO);

    // 6. Run the simulated cloud to quiescence and inspect the result.
    exp.run();
    let report = exp.report();
    let record = &report.records[0];
    println!("outcome:  {}", record.outcome);
    println!(
        "latency:  {} (alpha at {})",
        record.finished_at.duration_since(record.started_at),
        record.started_at
    );
    println!("costs:    {}", record.metrics);
    println!("\nproofs of authorization in the transaction's view:");
    for proof in record.view.proofs() {
        println!("  {proof}");
    }
    assert!(record.outcome.is_commit(), "expected a clean commit");
}
