//! View (φ) vs. global (ψ) consistency, side by side.
//!
//! Every replica agrees on policy version 1, but the administrator has
//! already published version 2 (same rules, fresher version) — the master
//! knows, the replicas don't. Definition 2 accepts the internally
//! consistent stale snapshot; Definition 3 forces the replicas forward
//! before the commit may proceed.
//!
//! ```bash
//! cargo run --example view_vs_global
//! ```

use safetx::core::{ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme, TxnRecord};
use safetx::policy::{Atom, Constant, PolicyBuilder};
use safetx::store::Value;
use safetx::txn::{Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};

fn run(consistency: ConsistencyLevel) -> TxnRecord {
    let mut exp = Experiment::new(ExperimentConfig {
        servers: 2,
        scheme: ProofScheme::Deferred,
        consistency,
        gossip: false, // v2 never reaches the replicas on its own
        ..Default::default()
    });
    let v1 = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text("grant(write, records) :- role(U, member).")
        .expect("rules parse")
        .build();
    let v2 = v1.updated(v1.rules().clone()); // same rules, newer version
    exp.catalog().publish(v1);
    exp.catalog().publish(v2);
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    exp.seed_item(ServerId::new(0), DataItemId::new(0), Value::Int(0));
    exp.seed_item(ServerId::new(1), DataItemId::new(1), Value::Int(0));
    let credential = exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    let spec = TransactionSpec::new(
        TxnId::new(1),
        UserId::new(1),
        vec![
            QuerySpec::new(
                ServerId::new(0),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(0), 1)],
            ),
            QuerySpec::new(
                ServerId::new(1),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(1), 1)],
            ),
        ],
    );
    exp.submit(spec, vec![credential], Duration::ZERO);
    exp.run();
    exp.report().records[0].clone()
}

fn describe(label: &str, record: &TxnRecord) {
    println!("{label}:");
    println!("  outcome  : {}", record.outcome);
    println!(
        "  rounds   : {} collection round(s), {} protocol messages",
        record.metrics.rounds, record.metrics.messages
    );
    for (policy, versions) in record.view.versions_used() {
        let list: Vec<String> = versions.iter().map(|v| v.to_string()).collect();
        println!(
            "  {policy} versions used in the committed view: {}",
            list.join(", ")
        );
    }
    println!();
}

fn main() {
    println!("All replicas hold v1; the master already knows v2 (same rules).\n");

    let view = run(ConsistencyLevel::View);
    describe("view consistency (phi, Definition 2)", &view);
    assert!(view.outcome.is_commit());
    assert!(view.view.versions_used()[&PolicyId::new(0)].contains(&PolicyVersion(1)));

    let global = run(ConsistencyLevel::Global);
    describe("global consistency (psi, Definition 3)", &global);
    assert!(global.outcome.is_commit());
    assert!(global.view.versions_used()[&PolicyId::new(0)].contains(&PolicyVersion(2)));

    println!("phi committed on the stale-but-uniform v1 snapshot in one round;");
    println!("psi asked the master, found the replicas stale, pushed them to v2");
    println!("with an Update round, and only then committed — the paper's extra");
    println!("`2nr + r` messages buying freshness.");
}
