//! Compare all four proof-of-authorization schemes under policy churn.
//!
//! Runs the same workload — 60 three-query transactions while the
//! administrator publishes a policy update every ~8 ms (some temporarily
//! breaking) and occasionally revokes a credential — once per scheme, and
//! prints the paper's decision-relevant numbers side by side.
//!
//! ```bash
//! cargo run --release --example policy_churn
//! ```

use safetx::core::{ConsistencyLevel, ExperimentConfig, ProofScheme};
use safetx::metrics::AsciiTable;
use safetx::types::Duration;
use safetx::workload::{run_scenario, PolicyChurn, QueryCount, ScenarioConfig, WorkloadConfig};

fn main() {
    let mut table = AsciiTable::new(vec![
        "scheme",
        "commits",
        "aborts",
        "abort reasons",
        "mean commit ms",
        "msgs/txn",
        "proofs/txn",
    ]);
    table.title("60 transactions, 3 queries each, policy update every ~8 ms");

    for scheme in ProofScheme::ALL {
        let config = ScenarioConfig {
            experiment: ExperimentConfig {
                scheme,
                consistency: ConsistencyLevel::View,
                seed: 9,
                proof_eval_delay: Duration::from_micros(250),
                ..Default::default()
            },
            workload: WorkloadConfig {
                transactions: 60,
                queries_per_txn: QueryCount::Fixed(3),
                servers: 3,
                mean_interarrival: Duration::from_millis(20),
                ..Default::default()
            },
            churn: PolicyChurn {
                mean_update_interval: Some(Duration::from_millis(8)),
                breaking_fraction: 0.3,
                break_duration: Duration::from_millis(2),
            },
            revoke_fraction: 0.1,
            revoke_after: Duration::from_millis(3),
            undo_cost_per_query: Duration::from_millis(3),
        };
        let result = run_scenario(&config);
        let reasons: Vec<String> = result
            .aborts_by_reason
            .iter()
            .map(|(reason, count)| format!("{count}x {reason}"))
            .collect();
        table.row(vec![
            scheme.to_string(),
            result.report.commits().to_string(),
            result.report.aborts().to_string(),
            reasons.join(", "),
            format!("{:.2}", result.mean_commit_latency_ms().unwrap_or(f64::NAN)),
            format!("{:.1}", result.mean_messages()),
            format!("{:.1}", result.mean_proofs()),
        ]);
    }
    println!("{table}");
    println!("Deferred tolerates churn cheaply (updates are repaired at commit);");
    println!("Punctual/Incremental detect hazards early; Continuous pays quadratic");
    println!("messages for the strongest guarantee. See `cargo run -p safetx-bench");
    println!("--bin tradeoff` for the full Section VI-B study.");
}
