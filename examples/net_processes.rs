//! Run the 2PVC protocol across real OS processes.
//!
//! The parent process is the transaction manager; it re-executes itself
//! once per cloud server with `SAFETX_NET_ROLE=server`, and every protocol
//! message crosses a filesystem Unix socket as a length-prefixed wire
//! frame (see `safetx::net::wire`). Nothing is shared between the
//! processes except bytes: each server process builds its own catalog,
//! seeds its own store, and mirrors the TM's deterministic credential
//! issuance so both sides' certificate authorities agree on signatures.
//!
//! ```bash
//! cargo run --example net_processes
//! ```

use safetx::core::{ConsistencyLevel, ProofScheme, ResourcePolicyMap, ServerCore, SharedCas};
use safetx::net::{NetCluster, ServerHost, TM_PEER};
use safetx::policy::{
    Atom, CaRegistry, CertificateAuthority, Constant, Credential, Policy, PolicyBuilder,
};
use safetx::runtime::ClusterConfig;
use safetx::store::Value;
use safetx::txn::{CommitVariant, Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, CaId, DataItemId, PolicyId, PolicyVersion, ServerId, Timestamp, UserId,
};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const SERVERS: usize = 3;
const TXNS: u64 = 8;
const CA_SEED: u64 = 0x7331;

fn policy() -> Policy {
    PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build()
}

/// Issue the member credential from CA 0. The CA is deterministic from its
/// seed, so as long as every process issues the same credentials in the
/// same order, ids and signatures agree across process boundaries.
fn issue_member(cas: &SharedCas) -> Credential {
    cas.with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).expect("CA 0").issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    })
}

/// The server role: one `ServerHost` event loop behind a filesystem
/// socket, serving until the TM hangs up.
fn serve(id: u64, socket: &Path) {
    let catalog = safetx::core::SharedCatalog::new();
    let mut registry = CaRegistry::new();
    registry.register(CertificateAuthority::new(CaId::new(0), CA_SEED));
    let cas = SharedCas::new(registry);
    let _ = issue_member(&cas); // mirror the TM's issuance order
    catalog.publish(policy());
    let mut core = ServerCore::new(
        ServerId::new(id),
        catalog,
        ResourcePolicyMap::single(PolicyId::new(0)),
        cas,
        CommitVariant::Standard,
    );
    core.install_policy(PolicyId::new(0), PolicyVersion::INITIAL);
    for j in 0..TXNS {
        core.store_mut().write(
            DataItemId::new(id * 100 + j),
            Value::Int(100),
            Timestamp::ZERO,
        );
    }
    let host = ServerHost::spawn(core, Instant::now(), 16);

    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket).expect("bind server socket");
    let (stream, _) = listener.accept().expect("accept TM connection");
    host.attach(TM_PEER, stream);
    // Serve until the TM hangs up: wait for the attach to land, then for
    // the disconnect to drain.
    while host.live_peers() == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    while host.live_peers() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    host.shutdown();
}

fn connect_with_retry(path: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(path) {
            Ok(stream) => return stream,
            Err(e) if Instant::now() >= deadline => {
                panic!("server at {} never came up: {e}", path.display())
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn main() {
    if std::env::var("SAFETX_NET_ROLE").as_deref() == Ok("server") {
        let id: u64 = std::env::var("SAFETX_NET_SERVER")
            .expect("SAFETX_NET_SERVER")
            .parse()
            .expect("server id");
        let socket = PathBuf::from(std::env::var("SAFETX_NET_SOCKET").expect("SAFETX_NET_SOCKET"));
        serve(id, &socket);
        return;
    }

    let dir = std::env::temp_dir().join(format!("safetx-net-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let exe = std::env::current_exe().expect("current exe");

    // One child process per cloud server, each behind its own socket.
    let mut children = Vec::new();
    let mut streams = Vec::new();
    for i in 0..SERVERS {
        let socket = dir.join(format!("server-{i}.sock"));
        let child = std::process::Command::new(&exe)
            .env("SAFETX_NET_ROLE", "server")
            .env("SAFETX_NET_SERVER", i.to_string())
            .env("SAFETX_NET_SOCKET", &socket)
            .spawn()
            .expect("spawn server process");
        children.push(child);
        streams.push(connect_with_retry(&socket));
    }

    // TM-only cluster over the connected streams. The local catalog only
    // answers master consults, so publish the same policy version the
    // server processes installed for themselves.
    let cluster = NetCluster::connect(
        ClusterConfig {
            servers: SERVERS,
            scheme: ProofScheme::Continuous,
            consistency: ConsistencyLevel::Global,
            ..Default::default()
        },
        streams,
    );
    cluster.publish_policy(policy());
    let credential = issue_member(cluster.cas());

    let mut commits = 0;
    for t in 0..TXNS {
        let queries = (0..SERVERS as u64)
            .map(|s| {
                QuerySpec::new(
                    ServerId::new(s),
                    "write",
                    "records",
                    vec![Operation::Add(DataItemId::new(s * 100 + t), 1)],
                )
            })
            .collect();
        let spec = TransactionSpec::new(cluster.next_txn_id(), UserId::new(1), queries);
        let result = cluster.execute(&spec, std::slice::from_ref(&credential));
        if result.is_commit() {
            commits += 1;
        }
        println!(
            "txn {t}: {:?} in {:.2} ms ({} messages, {} proofs)",
            result.outcome,
            result.elapsed.as_secs_f64() * 1_000.0,
            result.metrics.messages,
            result.metrics.proofs,
        );
    }

    let transport = cluster.transport_counters();
    println!(
        "commits={commits}/{TXNS} frames_sent={} bytes_sent={} decode_errors={}",
        transport.frames_sent, transport.bytes_sent, transport.decode_errors,
    );
    cluster.shutdown();
    for mut child in children {
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        commits, TXNS,
        "a clean two-process run must commit everything"
    );
}
