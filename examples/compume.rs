//! The paper's motivating example (Figure 1): Bob, CompuMe and the unsafe
//! commit that 2PVC prevents.
//!
//! Bob is a CompuMe sales representative assigned to the `east` region. The
//! customers database and the inventory database both enforce policy `P`:
//! a sales rep may act only inside their assigned operational region. While
//! Bob's transaction is running,
//!
//! 1. Bob is reassigned: his `region(bob, east)` credential is **revoked**;
//! 2. the administrator tightens `P` to `P'`, which additionally demands a
//!    `certified(U)` credential — and eventual consistency means only one
//!    replica has seen `P'`.
//!
//! A system that trusted Bob's earlier read capability would commit an
//! unsafe transaction exactly as in the paper. 2PVC instead re-validates
//! everything at commit time under a consistent policy view and aborts.
//!
//! ```bash
//! cargo run --example compume
//! ```

use safetx::core::{ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme};
use safetx::policy::{Atom, Constant, PolicyBuilder};
use safetx::store::Value;
use safetx::txn::{Operation, QuerySpec, TransactionSpec};
use safetx::types::{
    AdminDomain, CaId, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId,
    UserId,
};

const CUSTOMERS_DB: ServerId = ServerId::new(0);
const INVENTORY_DB: ServerId = ServerId::new(1);

fn run(scheme: ProofScheme) -> safetx::core::TxnRecord {
    let mut exp = Experiment::new(ExperimentConfig {
        servers: 2,
        scheme,
        consistency: ConsistencyLevel::View,
        gossip: false, // eventual consistency: P' reaches one replica only
        ..Default::default()
    });

    // Policy P: a sales rep operating inside their assigned region.
    let p = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, customers) :- role(U, sales_rep), region(U, R), located(U, R).\n\
             grant(write, inventory) :- role(U, sales_rep), region(U, R), located(U, R).",
        )
        .expect("rules parse")
        .build();
    // P': additionally requires a certification credential.
    let p_prime = p.updated(
        "grant(read, customers) :- role(U, sales_rep), region(U, R), located(U, R), certified(U).\n\
         grant(write, inventory) :- role(U, sales_rep), region(U, R), located(U, R), certified(U)."
            .parse()
            .expect("rules parse"),
    );
    exp.catalog().publish(p);
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    exp.seed_item(INVENTORY_DB, DataItemId::new(100), Value::Int(42));

    // Both databases observe Bob in the east region.
    for db in [CUSTOMERS_DB, INVENTORY_DB] {
        exp.add_ambient_fact(db, "located(bob, east)");
    }

    // CA0 certifies Bob's role and region assignment.
    let bob = UserId::new(7);
    let role_cred = exp.issue_credential(
        bob,
        Atom::fact(
            "role",
            vec![Constant::symbol("bob"), Constant::symbol("sales_rep")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    let region_cred = exp.issue_credential(
        bob,
        Atom::fact(
            "region",
            vec![Constant::symbol("bob"), Constant::symbol("east")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );

    // Bob's transaction: read a customer record, then update inventory.
    let spec = TransactionSpec::new(
        TxnId::new(1),
        bob,
        vec![
            QuerySpec::new(
                CUSTOMERS_DB,
                "read",
                "customers",
                vec![Operation::Read(DataItemId::new(0))],
            ),
            QuerySpec::new(
                INVENTORY_DB,
                "write",
                "inventory",
                vec![Operation::Add(DataItemId::new(100), -1)],
            ),
        ],
    );
    let region_cred_id = region_cred.id();
    exp.submit(spec, vec![role_cred, region_cred], Duration::ZERO);

    // Mid-transaction (t = 1.5 ms, after the first query): Bob is
    // reassigned — his OpRegion credential is revoked…
    exp.cas().with_mut(|registry| {
        registry.revoke(CaId::new(0), region_cred_id, Timestamp::from_micros(1_500));
    });
    // …and P changes to P', reaching only the customers DB replica.
    exp.catalog().publish(p_prime);
    exp.install_at(CUSTOMERS_DB, PolicyId::new(0), PolicyVersion(2));

    exp.run();
    exp.report().records[0].clone()
}

fn main() {
    println!("Figure 1 scenario: Bob's OpRegion credential is revoked and policy P");
    println!("changes to P' (propagated to one replica only) mid-transaction.\n");

    for scheme in ProofScheme::ALL {
        let record = run(scheme);
        println!("{scheme:>21}: {}", record.outcome);
        assert!(
            !record.outcome.is_commit(),
            "{scheme} must not commit the unsafe transaction"
        );
    }

    println!();
    println!("Every scheme rolls the transaction back — the unsafe commit from the");
    println!("paper's Section II cannot happen: 2PVC re-validates all proofs of");
    println!("authorization under a consistent policy view before deciding, and the");
    println!("online credential status check exposes the revocation.");
}
