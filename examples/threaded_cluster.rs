//! Run the same 2PVC state machines on real OS threads.
//!
//! The protocol cores are sans-io, so the `safetx-runtime` crate can drive
//! them over crossbeam channels instead of the discrete-event simulator.
//! This example spawns a three-server cluster, fires 8 transactions from 4
//! concurrent client threads and prints wall-clock latencies.
//!
//! ```bash
//! cargo run --example threaded_cluster
//! ```

use safetx::core::{ConsistencyLevel, ProofScheme};
use safetx::policy::{Atom, Constant, PolicyBuilder};
use safetx::runtime::{Cluster, ClusterConfig};
use safetx::store::Value;
use safetx::txn::{Operation, QuerySpec, TransactionSpec};
use safetx::types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, UserId};
use std::sync::Arc;

fn main() {
    let cluster = Arc::new(Cluster::new(ClusterConfig {
        servers: 3,
        scheme: ProofScheme::Punctual,
        consistency: ConsistencyLevel::View,
        ..Default::default()
    }));

    // Publish the policy and seed balances.
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build();
    cluster.publish_policy(policy);
    for s in 0..3u64 {
        cluster.configure_server(ServerId::new(s), move |core| {
            core.store_mut()
                .write(DataItemId::new(s * 100), Value::Int(1_000), Timestamp::ZERO);
        });
    }

    let credential = cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).expect("CA0").issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    });

    // Four client threads, two transactions each, all moving value from
    // server 0's account to server 2's.
    let mut joins = Vec::new();
    for client in 0..4 {
        let cluster = Arc::clone(&cluster);
        let credential = credential.clone();
        joins.push(std::thread::spawn(move || {
            let mut outcomes = Vec::new();
            for _ in 0..2 {
                let spec = TransactionSpec::new(
                    cluster.next_txn_id(),
                    UserId::new(1),
                    vec![
                        QuerySpec::new(
                            ServerId::new(0),
                            "write",
                            "records",
                            vec![Operation::Add(DataItemId::new(0), -10)],
                        ),
                        QuerySpec::new(
                            ServerId::new(1),
                            "read",
                            "records",
                            vec![Operation::Read(DataItemId::new(100))],
                        ),
                        QuerySpec::new(
                            ServerId::new(2),
                            "write",
                            "records",
                            vec![Operation::Add(DataItemId::new(200), 10)],
                        ),
                    ],
                );
                let result = cluster.execute(&spec, std::slice::from_ref(&credential));
                outcomes.push((client, spec.id, result));
            }
            outcomes
        }));
    }

    let mut commits = 0;
    for join in joins {
        for (client, txn, result) in join.join().expect("client thread") {
            println!(
                "client {client}: {txn} -> {:<40} [{:?} wall]",
                result.outcome.to_string(),
                result.elapsed
            );
            if result.is_commit() {
                commits += 1;
            }
        }
    }
    println!("\n{commits}/8 committed (lock conflicts between concurrent clients abort)");

    // Money is conserved: total moved out of account 0 equals total moved
    // into account 200.
    let (tx, rx) = std::sync::mpsc::channel();
    cluster.configure_server(ServerId::new(0), {
        let tx = tx.clone();
        move |core| {
            let _ = tx.send(core.store().read_int(DataItemId::new(0)).unwrap());
        }
    });
    cluster.configure_server(ServerId::new(2), move |core| {
        let _ = tx.send(core.store().read_int(DataItemId::new(200)).unwrap());
    });
    let a = rx.recv().expect("balance 0");
    let b = rx.recv().expect("balance 200");
    println!("account balances after the run: src = {a}, dst = {b}");
    assert_eq!(
        (1_000 - a),
        (b - 1_000),
        "atomicity: every commit moved exactly 10 between the accounts"
    );
}
