//! Threaded in-process deployment of the safetx protocols.
//!
//! The protocol logic in `safetx-core` is sans-io: [`ServerCore`] consumes
//! messages and returns messages, and `safetx_core::TmCore` owns the whole
//! coordinator lifecycle — scheme pipelines, version pinning, 2PV, 2PVC,
//! forced logging, Table I accounting and both timeout paths — as a pure
//! `step(now, TmEvent) -> Vec<TmEffect>` machine. This crate runs those
//! exact state machines on real OS threads connected by crossbeam channels:
//! one thread per cloud server, and [`Cluster::execute`] driving a `TmCore`
//! synchronously from the calling thread, translating channel inputs into
//! events and performing the returned effects (sends through the fault
//! fabric, decision-log writes, inline master snapshot reads). The driver
//! owns nothing protocol-shaped except its failure detector: the
//! per-reply deadline (`ClusterConfig::reply_timeout`), whose firing the
//! core maps to `AbortReason::ServerUnavailable`.
//!
//! The discrete-event simulator remains the *measurement* harness (it
//! counts messages deterministically); this runtime demonstrates that the
//! protocol cores are runtime-agnostic and exercises them under true
//! concurrency, including lock contention between parallel callers. Because
//! both runtimes drive the same core, `tests/differential.rs` holds them to
//! identical outcomes, counters and proof views on identical inputs.
//!
//! # Examples
//!
//! ```
//! use safetx_runtime::{Cluster, ClusterConfig};
//! use safetx_core::{ConsistencyLevel, ProofScheme};
//!
//! let cluster = Cluster::new(ClusterConfig {
//!     servers: 2,
//!     scheme: ProofScheme::Deferred,
//!     consistency: ConsistencyLevel::View,
//!     ..Default::default()
//! });
//! // … publish a policy, issue credentials, call cluster.execute(...) …
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod fault;
mod shard;

pub use cluster::{
    resolve_batch, resolve_concurrency, Addr, Cluster, ClusterConfig, ExecutionResult,
};
pub use fault::{
    CrashPoint, CrashRule, EdgeRule, FaultPlan, MsgKind, Peer, PeerMatch, TmCrashPoint,
};
pub use shard::{ShardedCluster, ShardedConfig, TxnRoute};

// Re-exported so the doc example above typechecks without extra imports.
pub use safetx_core::{ServerCore, TwoPvc, ValidationRound};
