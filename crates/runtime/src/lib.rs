//! Threaded in-process deployment of the safetx protocols.
//!
//! The protocol logic in `safetx-core` is sans-io: [`ServerCore`] consumes
//! messages and returns messages, and [`TwoPvc`]/[`ValidationRound`] do the
//! same for the TM side. This crate runs those exact state machines on real
//! OS threads connected by crossbeam channels — one thread per cloud
//! server, transactions driven synchronously by the calling thread — and
//! measures wall-clock latencies instead of simulated time.
//!
//! The discrete-event simulator remains the *measurement* harness (it
//! counts messages deterministically); this runtime demonstrates that the
//! protocol cores are runtime-agnostic and exercises them under true
//! concurrency, including lock contention between parallel callers.
//!
//! # Examples
//!
//! ```
//! use safetx_runtime::{Cluster, ClusterConfig};
//! use safetx_core::{ConsistencyLevel, ProofScheme};
//!
//! let cluster = Cluster::new(ClusterConfig {
//!     servers: 2,
//!     scheme: ProofScheme::Deferred,
//!     consistency: ConsistencyLevel::View,
//!     ..Default::default()
//! });
//! // … publish a policy, issue credentials, call cluster.execute(...) …
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod fault;

pub use cluster::{Addr, Cluster, ClusterConfig, ExecutionResult};
pub use fault::{CrashPoint, CrashRule, EdgeRule, FaultPlan, MsgKind, Peer, PeerMatch};

// Re-exported so the doc example above typechecks without extra imports.
pub use safetx_core::{ServerCore, TwoPvc, ValidationRound};
