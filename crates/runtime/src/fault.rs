//! Deterministic, seeded fault injection for the threaded cluster.
//!
//! A [`FaultPlan`] describes *what can go wrong* on the wire and *when
//! servers die*: per-edge probabilistic rules (drop / duplicate / delay /
//! reorder, in permille) plus fire-once crash points pinned to protocol
//! message kinds. The cluster routes every protocol send through a single
//! choke point; when a plan is armed, that choke point consults the plan.
//! When no plan is armed the choke point is one relaxed atomic load and a
//! predicted-not-taken branch — the satellite requirement that runs with
//! faults disabled stay byte-identical in behaviour to a build without the
//! layer at all.
//!
//! # Determinism
//!
//! Every probabilistic decision is a pure function of
//! `(plan seed, edge, per-edge sequence number, message kind)` via
//! splitmix64 — no global RNG, no time. Two runs that deliver the same
//! message sequence on an edge take identical fault decisions on that
//! edge. Cross-edge interleaving still depends on OS scheduling (threads
//! race), so the guarantee is *per-edge determinism*, which is what makes
//! failing chaos seeds replayable in practice: the fault pattern a seed
//! produces is stable even though thread timing is not.

use safetx_core::Msg;
use safetx_metrics::FaultCounters;
use safetx_types::ServerId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// One end of a cluster edge, as seen by fault rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// A transaction manager (the caller of `Cluster::execute`).
    Coordinator,
    /// A cloud server thread.
    Server(ServerId),
}

impl Peer {
    /// Dense index used for per-edge sequence counters: coordinator is 0,
    /// server *i* is *i + 1*. Public so wire-level fabrics (`safetx-net`)
    /// can hash edges identically to the channel fabric.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Peer::Coordinator => 0,
            Peer::Server(id) => id.index() as usize + 1,
        }
    }
}

/// Which peers one side of an [`EdgeRule`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeerMatch {
    /// Every peer.
    #[default]
    Any,
    /// Any cloud server.
    AnyServer,
    /// The coordinator side.
    Coordinator,
    /// One specific server.
    Server(ServerId),
}

impl PeerMatch {
    /// Whether this matcher covers `peer`.
    #[must_use]
    pub fn matches(self, peer: Peer) -> bool {
        match self {
            PeerMatch::Any => true,
            PeerMatch::AnyServer => matches!(peer, Peer::Server(_)),
            PeerMatch::Coordinator => peer == Peer::Coordinator,
            PeerMatch::Server(id) => peer == Peer::Server(id),
        }
    }
}

/// Protocol message kinds, for pinning crash points to protocol moments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// TM → server query execution request.
    ExecQuery,
    /// Server → TM query completion.
    QueryDone,
    /// TM → server 2PV collection request.
    PrepareToValidate,
    /// Server → TM 2PV reply.
    ValidateReply,
    /// TM → server 2PVC voting request.
    PrepareToCommit,
    /// Server → TM 2PVC vote.
    CommitReply,
    /// TM → server policy-version update round.
    Update,
    /// TM → server global decision.
    Decision,
    /// Server → TM decision acknowledgment.
    Ack,
    /// Anything else (policy gossip, inquiries, …).
    Other,
}

impl MsgKind {
    /// Classifies a wire message.
    #[must_use]
    pub fn of(msg: &Msg) -> MsgKind {
        match msg {
            Msg::ExecQuery { .. } => MsgKind::ExecQuery,
            Msg::QueryDone { .. } => MsgKind::QueryDone,
            Msg::PrepareToValidate { .. } => MsgKind::PrepareToValidate,
            Msg::ValidateReply { .. } => MsgKind::ValidateReply,
            Msg::PrepareToCommit { .. } => MsgKind::PrepareToCommit,
            Msg::CommitReply { .. } => MsgKind::CommitReply,
            Msg::Update { .. } => MsgKind::Update,
            Msg::Decision { .. } => MsgKind::Decision,
            Msg::Ack { .. } => MsgKind::Ack,
            _ => MsgKind::Other,
        }
    }

    /// Stable per-kind salt folded into every seeded roll, shared with the
    /// wire fabric so identical edges hash identically across runtimes.
    #[must_use]
    pub fn salt(self) -> u64 {
        match self {
            MsgKind::ExecQuery => 1,
            MsgKind::QueryDone => 2,
            MsgKind::PrepareToValidate => 3,
            MsgKind::ValidateReply => 4,
            MsgKind::PrepareToCommit => 5,
            MsgKind::CommitReply => 6,
            MsgKind::Update => 7,
            MsgKind::Decision => 8,
            MsgKind::Ack => 9,
            MsgKind::Other => 10,
        }
    }
}

/// A per-edge probabilistic fault rule. Probabilities are in permille
/// (chances in 1000); a message is subject to the *first* rule whose
/// `from`/`to` matchers cover its edge.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeRule {
    /// Sender matcher.
    pub from: PeerMatch,
    /// Receiver matcher.
    pub to: PeerMatch,
    /// Chance the message is silently dropped.
    pub drop_permille: u32,
    /// Chance the message is delivered twice.
    pub duplicate_permille: u32,
    /// Chance the message is held back before delivery.
    pub delay_permille: u32,
    /// Lower bound of the injected delay, microseconds.
    pub delay_min_us: u64,
    /// Upper bound of the injected delay, microseconds.
    pub delay_max_us: u64,
    /// Chance the message is deferred behind later traffic (delivered via a
    /// short detour so a younger message can overtake it).
    pub reorder_permille: u32,
}

/// Where in the protocol a scheduled crash fires. Each rule fires at most
/// once per armed plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The server dies *instead of* receiving the next matching message:
    /// the message is lost with it (e.g. crash before the prepare
    /// request arrives).
    BeforeReceive(MsgKind),
    /// The server dies right after fully processing the next matching
    /// message (e.g. crash after logging the prepare and acting on the
    /// decision).
    AfterReceive(MsgKind),
    /// The server dies right after the next matching message it sends has
    /// left (e.g. crash after the YES vote is on the wire — the classic
    /// in-doubt window).
    AfterSend(MsgKind),
}

/// One scheduled server crash.
#[derive(Debug, Clone, Copy)]
pub struct CrashRule {
    /// The victim.
    pub server: ServerId,
    /// The protocol moment.
    pub point: CrashPoint,
}

/// A *coordinator* (TM-side) crash point: the protocol moment at which a
/// TM driver dies mid-transaction, leaving its participants to the
/// termination protocol. Where [`CrashPoint`] kills a server,
/// `TmCrashPoint` kills the process driving `TmCore` — the classic
/// blocked-participant scenarios of 2PC/2PVC.
///
/// The safety anchor is the force-before-vote discipline the core already
/// follows: `CoordinatorRecord::Collecting` is force-logged before any
/// vote is solicited and `CoordinatorRecord::Decision` before any
/// decision is sent, so whichever window the coordinator dies in, the
/// decision log determines (never contradicts) the answer recovery gives
/// each participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmCrashPoint {
    /// Die right after the first send of the given kind leaves (e.g.
    /// after `PrepareToCommit` is out — participants prepare and block).
    AfterSend(MsgKind),
    /// Die *instead of* force-logging the decision record: votes are in,
    /// the outcome was computed, but nothing durable records it.
    /// Termination answers from the forced `Collecting` record — abort.
    BeforeDecisionForce,
    /// Die right after force-logging the decision record, before any
    /// decision send leaves: participants are in-doubt, but the log
    /// already knows the outcome — termination delivers it.
    AfterDecisionForce,
}

/// A complete seeded fault schedule for one cluster run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic roll.
    pub seed: u64,
    /// Probabilistic per-edge rules (first match wins).
    pub rules: Vec<EdgeRule>,
    /// Fire-once crash points.
    pub crashes: Vec<CrashRule>,
}

impl FaultPlan {
    /// A ready-made chaos mix: one `Any → Any` rule whose probabilities
    /// are themselves derived from `seed`, so a sweep over seeds explores
    /// different fault intensities. Drop/duplicate/reorder stay ≤ 3% and
    /// delays ≤ 2 ms so that runs with a sane reply timeout still make
    /// progress.
    #[must_use]
    pub fn chaos(seed: u64) -> FaultPlan {
        let r = |salt: u64, modulo: u64| splitmix64(seed ^ salt.wrapping_mul(0x9e37_79b9)) % modulo;
        FaultPlan {
            seed,
            rules: vec![EdgeRule {
                from: PeerMatch::Any,
                to: PeerMatch::Any,
                drop_permille: r(1, 31) as u32,
                duplicate_permille: r(2, 31) as u32,
                delay_permille: 20 + r(3, 60) as u32,
                delay_min_us: 20,
                delay_max_us: 200 + r(4, 1800),
                reorder_permille: r(5, 31) as u32,
            }],
            crashes: Vec::new(),
        }
    }

    /// The fault decision for one message on `from → to`, given the
    /// edge-local sequence number of that message.
    pub(crate) fn roll(&self, from: Peer, to: Peer, kind: MsgKind, seq: u64) -> Verdict {
        let Some(rule) = self
            .rules
            .iter()
            .find(|r| r.from.matches(from) && r.to.matches(to))
        else {
            return Verdict::Deliver;
        };
        let base = self
            .seed
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add((from.index() as u64) << 32)
            .wrapping_add((to.index() as u64) << 16)
            .wrapping_add(kind.salt())
            ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let sub = |salt: u64| splitmix64(base.wrapping_add(salt));
        if sub(1) % 1000 < u64::from(rule.drop_permille) {
            return Verdict::Drop;
        }
        if sub(2) % 1000 < u64::from(rule.duplicate_permille) {
            return Verdict::Duplicate;
        }
        if sub(3) % 1000 < u64::from(rule.delay_permille) {
            let span = rule.delay_max_us.saturating_sub(rule.delay_min_us) + 1;
            let us = rule.delay_min_us + sub(4) % span;
            return Verdict::Delay {
                by: Duration::from_micros(us),
                reorder: false,
            };
        }
        if sub(5) % 1000 < u64::from(rule.reorder_permille) {
            // A short detour: enough for queue neighbours to overtake.
            return Verdict::Delay {
                by: Duration::from_micros(30 + sub(6) % 270),
                reorder: true,
            };
        }
        Verdict::Deliver
    }
}

/// What the choke point does with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Pass through.
    Deliver,
    /// Silently discard.
    Drop,
    /// Deliver twice.
    Duplicate,
    /// Hold back, then deliver (possibly behind younger messages).
    Delay {
        /// How long to hold it.
        by: Duration,
        /// Count as a reorder rather than a delay.
        reorder: bool,
    },
}

/// An armed plan plus its fire-once crash flags.
pub(crate) struct ArmedPlan {
    pub(crate) plan: FaultPlan,
    fired: Vec<AtomicBool>,
}

impl ArmedPlan {
    pub(crate) fn new(plan: FaultPlan) -> ArmedPlan {
        let fired = plan
            .crashes
            .iter()
            .map(|_| AtomicBool::new(false))
            .collect();
        ArmedPlan { plan, fired }
    }

    /// Consumes (at most once) a crash rule for `server` matching `pred`.
    pub(crate) fn take_crash(
        &self,
        server: ServerId,
        pred: impl Fn(CrashPoint) -> bool,
    ) -> Option<CrashPoint> {
        for (rule, fired) in self.plan.crashes.iter().zip(&self.fired) {
            if rule.server == server && pred(rule.point) && !fired.swap(true, Ordering::AcqRel) {
                return Some(rule.point);
            }
        }
        None
    }
}

/// Lock-free fault/recovery counters, snapshotted into
/// [`safetx_metrics::FaultCounters`].
#[derive(Debug, Default)]
pub(crate) struct FaultStats {
    pub(crate) dropped: AtomicU64,
    pub(crate) delayed: AtomicU64,
    pub(crate) duplicated: AtomicU64,
    pub(crate) reordered: AtomicU64,
    pub(crate) server_crashes: AtomicU64,
    pub(crate) recoveries: AtomicU64,
    pub(crate) timeout_aborts: AtomicU64,
}

impl FaultStats {
    pub(crate) fn snapshot(&self) -> FaultCounters {
        FaultCounters {
            faults_dropped: self.dropped.load(Ordering::Relaxed),
            faults_delayed: self.delayed.load(Ordering::Relaxed),
            faults_duplicated: self.duplicated.load(Ordering::Relaxed),
            faults_reordered: self.reordered.load(Ordering::Relaxed),
            server_crashes: self.server_crashes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            timeout_aborts: self.timeout_aborts.load(Ordering::Relaxed),
            // Wire-only faults: a channel fabric never corrupts, truncates
            // or disconnects (those live in `safetx_net`'s frame fabric).
            ..FaultCounters::default()
        }
    }
}

/// splitmix64: the statelessly seeded generator behind every roll.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_plan(rule: EdgeRule) -> FaultPlan {
        FaultPlan {
            seed: 42,
            rules: vec![rule],
            crashes: Vec::new(),
        }
    }

    #[test]
    fn rolls_are_deterministic_per_edge() {
        let plan = FaultPlan::chaos(7);
        let a = Peer::Coordinator;
        let b = Peer::Server(ServerId::new(1));
        for seq in 0..200 {
            assert_eq!(
                plan.roll(a, b, MsgKind::ExecQuery, seq),
                plan.roll(a, b, MsgKind::ExecQuery, seq),
            );
        }
    }

    #[test]
    fn no_matching_rule_delivers() {
        let plan = edge_plan(EdgeRule {
            from: PeerMatch::Server(ServerId::new(3)),
            to: PeerMatch::Coordinator,
            drop_permille: 1000,
            ..EdgeRule::default()
        });
        // Different edge: untouched.
        let v = plan.roll(
            Peer::Coordinator,
            Peer::Server(ServerId::new(0)),
            MsgKind::ExecQuery,
            0,
        );
        assert_eq!(v, Verdict::Deliver);
        // Matching edge: always dropped.
        let v = plan.roll(
            Peer::Server(ServerId::new(3)),
            Peer::Coordinator,
            MsgKind::QueryDone,
            0,
        );
        assert_eq!(v, Verdict::Drop);
    }

    #[test]
    fn permille_probabilities_are_roughly_respected() {
        let plan = edge_plan(EdgeRule {
            from: PeerMatch::Any,
            to: PeerMatch::Any,
            drop_permille: 250,
            ..EdgeRule::default()
        });
        let drops = (0..4000)
            .filter(|&seq| {
                plan.roll(
                    Peer::Coordinator,
                    Peer::Server(ServerId::new(0)),
                    MsgKind::Decision,
                    seq,
                ) == Verdict::Drop
            })
            .count();
        // 25% ± generous slack.
        assert!((700..1300).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn crash_rules_fire_once() {
        let armed = ArmedPlan::new(FaultPlan {
            seed: 0,
            rules: Vec::new(),
            crashes: vec![CrashRule {
                server: ServerId::new(1),
                point: CrashPoint::AfterSend(MsgKind::CommitReply),
            }],
        });
        let pred = |p: CrashPoint| p == CrashPoint::AfterSend(MsgKind::CommitReply);
        assert!(armed.take_crash(ServerId::new(0), pred).is_none());
        assert!(armed.take_crash(ServerId::new(1), pred).is_some());
        assert!(armed.take_crash(ServerId::new(1), pred).is_none());
    }

    #[test]
    fn chaos_plans_differ_by_seed_and_stay_bounded() {
        let a = FaultPlan::chaos(1);
        let b = FaultPlan::chaos(2);
        let ra = a.rules[0];
        let rb = b.rules[0];
        assert!(
            (ra.drop_permille, ra.delay_permille, ra.delay_max_us)
                != (rb.drop_permille, rb.delay_permille, rb.delay_max_us)
        );
        for plan in [a, b] {
            let r = plan.rules[0];
            assert!(r.drop_permille <= 30);
            assert!(r.duplicate_permille <= 30);
            assert!(r.delay_max_us <= 2000);
        }
    }
}
