//! Thread-per-server cluster.

use crate::fault::{
    ArmedPlan, CrashPoint, FaultPlan, FaultStats, MsgKind, Peer, TmCrashPoint, Verdict,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use safetx_core::{
    coalesce_replies, reply_counts_as_dropped, AbortReason, ConcurrencyMode, ConsistencyLevel,
    EvalSnapshot, Msg, ProofScheme, ResourcePolicyMap, ServerCore, SharedCas, SharedCatalog,
    TmConfig, TmCore, TmEffect, TmEvent, TransactionView, TxnOutcome, TxnTermination,
    ValidationReply, VersionMap,
};
use safetx_metrics::{FaultCounters, ProtocolMetrics};
use safetx_policy::{CaRegistry, CertificateAuthority, Credential};
use safetx_store::Wal;
use safetx_txn::{CommitVariant, CoordinatorRecord, QuerySpec, TransactionSpec, Vote};
use safetx_types::{CaId, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Who sent a message (and how to reply to them). Opaque: exposed only so
/// [`Cluster::configure_server`] closures can name `ServerCore<Addr>`.
#[derive(Clone)]
pub struct Addr {
    endpoint: Endpoint,
    tx: Sender<Input>,
    /// Process-unique channel identity: reply coalescing groups a round's
    /// outputs by destination with it (two coordinators share an
    /// `Endpoint::Coordinator` but never a channel).
    id: u64,
}

/// A fresh process-unique [`Addr::id`].
fn fresh_addr_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl std::fmt::Debug for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Addr({:?})", self.endpoint)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Endpoint {
    Coordinator,
    Server(ServerId),
}

fn peer_of(endpoint: Endpoint) -> Peer {
    match endpoint {
        Endpoint::Coordinator => Peer::Coordinator,
        Endpoint::Server(id) => Peer::Server(id),
    }
}

/// A configuration closure applied on a server thread.
type ConfigureFn = Box<dyn FnOnce(&mut ServerCore<Addr>) + Send>;

/// What flows through the channels.
// Msg dominates the variant sizes; inputs are moved once into an unbounded
// channel and never stored in bulk, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum Input {
    Proto(Addr, Msg),
    Configure(ConfigureFn, Sender<()>),
    /// Kill this server thread mid-protocol: volatile state is lost, the
    /// core is salvaged (its WAL and store survive the "crash") so
    /// [`Cluster::restart_server`] can recover it.
    Crash,
    Shutdown,
}

/// Crashed cores awaiting restart, by server index. Models the durable
/// state (store + WAL) that outlives the process.
type Salvage = Arc<Mutex<HashMap<u64, ServerCore<Addr>>>>;

/// The coordinator-side decision log shared by every TM (`execute` caller)
/// of this cluster — the log `answer_inquiry` consults when a recovered
/// participant asks what happened.
type DecisionLog = Arc<Mutex<Wal<CoordinatorRecord>>>;

/// The message fabric: the single choke point every protocol send crosses.
///
/// With no fault plan armed the fast path is one relaxed atomic load and an
/// uncontended read lock around the destination lookup — behaviourally
/// identical to the pre-fault-layer direct sends. With a plan armed, each
/// message is rolled against the plan's edge rules and crash points.
///
/// The server channel registry lives *inside* the fabric (rather than in
/// `Cluster`) so a restarted server can swap its channel without stopping
/// traffic from concurrent TM threads.
struct Net {
    /// Current address (endpoint + input channel) of each server.
    addrs: RwLock<Vec<Addr>>,
    /// Armed fault plan, if any.
    plan: RwLock<Option<ArmedPlan>>,
    /// Mirrors `plan.is_some()`; checked without taking the lock.
    enabled: AtomicBool,
    stats: FaultStats,
    /// Per-edge message sequence numbers, `[from][to]` flattened over
    /// `peers` slots per side (coordinator = 0, server at local position
    /// *i* is *i* + 1 — see [`Net::slot`]).
    seqs: Vec<AtomicU64>,
    peers: usize,
    /// First global server id owned by this fabric: sharded deployments
    /// give each shard a disjoint id range, and the dense sequence-counter
    /// slots are relative to it.
    base: u64,
}

impl Net {
    fn new(addrs: Vec<Addr>, base: u64) -> Net {
        let peers = addrs.len() + 1;
        Net {
            addrs: RwLock::new(addrs),
            plan: RwLock::new(None),
            enabled: AtomicBool::new(false),
            stats: FaultStats::default(),
            seqs: (0..peers * peers).map(|_| AtomicU64::new(0)).collect(),
            peers,
            base,
        }
    }

    /// Dense per-fabric slot of a peer: coordinator 0, servers 1.. in
    /// id order relative to this fabric's first server id.
    fn slot(&self, peer: Peer) -> usize {
        match peer {
            Peer::Coordinator => 0,
            Peer::Server(id) => (id.index() - self.base) as usize + 1,
        }
    }

    fn arm(&self, plan: FaultPlan) {
        *self.plan.write().expect("fault plan lock") = Some(ArmedPlan::new(plan));
        self.enabled.store(true, Ordering::Release);
    }

    fn disarm(&self) {
        self.enabled.store(false, Ordering::Release);
        *self.plan.write().expect("fault plan lock") = None;
    }

    fn counters(&self) -> FaultCounters {
        self.stats.snapshot()
    }

    fn note_crash(&self) {
        self.stats.server_crashes.fetch_add(1, Ordering::Relaxed);
    }

    fn note_recovery(&self) {
        self.stats.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    fn note_timeout_abort(&self) {
        self.stats.timeout_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// The current input channel of a server (control plane: configure,
    /// crash, shutdown, recovery — never subject to faults).
    fn tx(&self, server: usize) -> Sender<Input> {
        self.addrs.read().expect("net addrs")[server].tx.clone()
    }

    fn server_addr(&self, server: usize) -> Addr {
        self.addrs.read().expect("net addrs")[server].clone()
    }

    fn replace_server(&self, server: usize, addr: Addr) {
        self.addrs.write().expect("net addrs")[server] = addr;
    }

    /// Protocol send to a server by index.
    fn to_server(&self, from: &Addr, server: usize, msg: Msg) {
        if !self.enabled.load(Ordering::Relaxed) {
            let addrs = self.addrs.read().expect("net addrs");
            let _ = addrs[server].tx.send(Input::Proto(from.clone(), msg));
            return;
        }
        let to = self.server_addr(server);
        self.send_faulty(from, &to, msg);
    }

    /// Protocol send to an arbitrary address (server → coordinator replies
    /// and server-side forwards).
    fn send_proto(&self, from: &Addr, to: &Addr, msg: Msg) {
        if !self.enabled.load(Ordering::Relaxed) {
            let _ = to.tx.send(Input::Proto(from.clone(), msg));
            return;
        }
        self.send_faulty(from, to, msg);
    }

    #[cold]
    fn send_faulty(&self, from: &Addr, to: &Addr, msg: Msg) {
        let guard = self.plan.read().expect("fault plan lock");
        let Some(armed) = guard.as_ref() else {
            let _ = to.tx.send(Input::Proto(from.clone(), msg));
            return;
        };
        let kind = MsgKind::of(&msg);
        // A crash scheduled "after this server sends its next <kind>"?
        // Consume the rule now; enqueue the crash after the send went out.
        let crash_sender = match from.endpoint {
            Endpoint::Server(id) => armed
                .take_crash(id, |p| p == CrashPoint::AfterSend(kind))
                .is_some(),
            Endpoint::Coordinator => false,
        };
        // "Before receive": the receiver dies *instead of* taking
        // delivery — the message is lost with it.
        if let Endpoint::Server(id) = to.endpoint {
            if armed
                .take_crash(id, |p| p == CrashPoint::BeforeReceive(kind))
                .is_some()
            {
                let _ = to.tx.send(Input::Crash);
                if crash_sender {
                    let _ = from.tx.send(Input::Crash);
                }
                return;
            }
        }
        let from_peer = peer_of(from.endpoint);
        let to_peer = peer_of(to.endpoint);
        let edge = self.slot(from_peer) * self.peers + self.slot(to_peer);
        let seq = self.seqs[edge].fetch_add(1, Ordering::Relaxed);
        let mut delivered_inline = false;
        match armed.plan.roll(from_peer, to_peer, kind, seq) {
            Verdict::Deliver => {
                let _ = to.tx.send(Input::Proto(from.clone(), msg));
                delivered_inline = true;
            }
            Verdict::Drop => {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Verdict::Duplicate => {
                self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                let _ = to.tx.send(Input::Proto(from.clone(), msg.clone()));
                let _ = to.tx.send(Input::Proto(from.clone(), msg));
                delivered_inline = true;
            }
            Verdict::Delay { by, reorder } => {
                if reorder {
                    self.stats.reordered.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.stats.delayed.fetch_add(1, Ordering::Relaxed);
                }
                let from = from.clone();
                let to_tx = to.tx.clone();
                // Detached sleeper: delivery races everything sent in the
                // meantime, which is exactly the point. A send into a since
                // dead or replaced channel is a message lost to the crash.
                std::thread::spawn(move || {
                    std::thread::sleep(by);
                    let _ = to_tx.send(Input::Proto(from, msg));
                });
            }
        }
        // "After receive" fires only when the message actually went out in
        // order, so the crash lands in the queue right behind it.
        if delivered_inline {
            if let Endpoint::Server(id) = to.endpoint {
                if armed
                    .take_crash(id, |p| p == CrashPoint::AfterReceive(kind))
                    .is_some()
                {
                    let _ = to.tx.send(Input::Crash);
                }
            }
        }
        if crash_sender {
            let _ = from.tx.send(Input::Crash);
        }
    }
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of server threads.
    pub servers: usize,
    /// Proof-of-authorization scheme.
    pub scheme: ProofScheme,
    /// Consistency level.
    pub consistency: ConsistencyLevel,
    /// Commit-protocol logging variant.
    pub variant: CommitVariant,
    /// Data-plane worker threads per server (proof evaluation off the
    /// server thread). `None` defers to the `SAFETX_SERVER_WORKERS`
    /// environment variable, then to `min(4, available_parallelism)`.
    /// A value of `1` (or `0`) keeps every server fully single-threaded —
    /// the exact pre-pool behaviour.
    pub server_workers: Option<usize>,
    /// How long a TM waits for any single protocol reply before treating
    /// the round as failed ([`AbortReason::ServerUnavailable`], or — once a
    /// decision exists — one decision retransmission and then completion
    /// without the missing acknowledgments).
    ///
    /// `None` (the default) blocks forever, the pre-fault-layer behaviour;
    /// any run that crashes servers or arms a fault plan with drops should
    /// set it.
    pub reply_timeout: Option<Duration>,
    /// Maximum protocol messages one server-loop iteration drains and
    /// processes as a single round (shared proof-evaluation batch, one WAL
    /// group commit, coalesced replies). `None` defers to the
    /// `SAFETX_SERVER_BATCH` environment variable, then to `1` — which
    /// keeps the exact message-at-a-time loop.
    pub server_batch: Option<usize>,
    /// Simulated cost of one physical WAL sync (spin-waited inside
    /// `Wal::force`/group close). `None` makes syncs free, the historical
    /// behaviour; set it to make group commit's sync coalescing visible in
    /// wall-clock measurements.
    pub wal_sync_cost: Option<Duration>,
    /// Concurrency mode of every server: strict no-wait 2PL (`Locking`)
    /// or snapshot-read optimistic execution validated at the 2PVC vote
    /// (`Occ`). `None` defers to the `SAFETX_CONCURRENCY_MODE`
    /// environment variable, then to `Locking` — the exact pre-seam
    /// behaviour.
    pub concurrency: Option<ConcurrencyMode>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            servers: 3,
            scheme: ProofScheme::Deferred,
            consistency: ConsistencyLevel::View,
            variant: CommitVariant::Standard,
            server_workers: None,
            reply_timeout: None,
            server_batch: None,
            wal_sync_cost: None,
            concurrency: None,
        }
    }
}

/// Resolves the per-server worker count: explicit config, then the
/// `SAFETX_SERVER_WORKERS` environment variable, then
/// `min(4, available_parallelism)`.
fn resolve_workers(config: &ClusterConfig) -> usize {
    config
        .server_workers
        .or_else(|| {
            std::env::var("SAFETX_SERVER_WORKERS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1)
        })
}

/// Resolves the server-round batch limit: explicit config, then the
/// `SAFETX_SERVER_BATCH` environment variable, then `1` (batching off).
///
/// Public so alternative deployments of the same [`ClusterConfig`] (the
/// socket runtime in `safetx-net`) resolve the limit identically.
pub fn resolve_batch(config: &ClusterConfig) -> usize {
    config
        .server_batch
        .or_else(|| {
            std::env::var("SAFETX_SERVER_BATCH")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(1)
        .max(1)
}

/// Resolves the concurrency mode: explicit config, then the
/// `SAFETX_CONCURRENCY_MODE` environment variable, then `Locking`.
///
/// Public for the same reason as [`resolve_batch`]: every deployment of a
/// [`ClusterConfig`] (threaded, socket, sharded) must resolve the mode
/// identically, so CI can flip a whole battery through the environment.
#[must_use]
pub fn resolve_concurrency(config: &ClusterConfig) -> ConcurrencyMode {
    config.concurrency.unwrap_or_else(ConcurrencyMode::from_env)
}

/// A job shipped to a server's data-plane workers.
type Job = Box<dyn FnOnce() + Send>;

/// A fixed pool of data-plane helper threads owned by one server thread.
/// Each worker drains its own queue; jobs are distributed round-robin
/// (they are uniform in kind — one proof evaluation batch each). Dropping
/// the pool closes the job channels and joins every worker, so the server
/// thread never exits (and the cluster's live-thread gauge never reaches
/// zero) while a proof evaluation is still in flight.
struct WorkerPool {
    txs: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    next: std::cell::Cell<usize>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = unbounded::<Job>();
            txs.push(tx);
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            }));
        }
        WorkerPool {
            txs,
            handles,
            next: std::cell::Cell::new(0),
        }
    }

    fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let slot = self.next.get();
        self.next.set((slot + 1) % self.txs.len());
        self.txs[slot].send(Box::new(job)).expect("worker alive");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The outcome of one executed transaction plus wall-clock timing.
///
/// Built from the core's [`TxnTermination`] — the same termination record
/// the simulator reports as `TxnRecord` — so both runtimes derive their
/// outcome, view, and cost counters from one shared type.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Commit/abort and the protocol-time instant it was decided.
    pub outcome: TxnOutcome,
    /// Wall-clock latency of the whole execution.
    pub elapsed: std::time::Duration,
    /// Every proof of authorization the TM saw during this execution,
    /// recorded for post-hoc audits (Definitions 4–9 in
    /// `safetx_core::trusted`).
    pub view: TransactionView,
    /// How many queries finished executing before the decision (wasted
    /// work on aborts; equals the query count on commits).
    pub queries_executed: usize,
    /// Paper-model cost counters (Table I messages/proofs/rounds), counted
    /// by the shared [`TmCore`] accounting.
    pub metrics: ProtocolMetrics,
}

impl ExecutionResult {
    /// True when the transaction committed.
    #[must_use]
    pub fn is_commit(&self) -> bool {
        self.outcome.is_commit()
    }

    /// Builds the result from the core's termination record.
    #[must_use]
    pub fn from_termination(termination: TxnTermination, elapsed: std::time::Duration) -> Self {
        ExecutionResult {
            outcome: termination.outcome,
            elapsed,
            view: termination.view,
            queries_executed: termination.queries_executed,
            metrics: termination.metrics,
        }
    }
}

/// Converts a coordinator-channel input into the core event it carries.
///
/// `Err` means the input was stale or foreign; its payload is the
/// [`reply_counts_as_dropped`] verdict for the unconverted message (the
/// only thing the driver needs from it — returning the message itself
/// would haul 200+ bytes through the error path).
fn coordinator_event(txn: TxnId, from: &Addr, msg: Msg) -> Result<TmEvent, bool> {
    let server = match from.endpoint {
        Endpoint::Server(id) => Some(id),
        Endpoint::Coordinator => None,
    };
    match (server, msg) {
        (
            _,
            Msg::QueryDone {
                txn: t,
                query_index,
                ok,
                proof,
                capability,
            },
        ) if t == txn => Ok(TmEvent::QueryDone {
            query_index,
            ok,
            proof,
            capability,
        }),
        (Some(from), Msg::ValidateReply { txn: t, reply }) if t == txn => {
            Ok(TmEvent::ValidateReply { from, reply })
        }
        (Some(from), Msg::CommitReply { txn: t, reply }) if t == txn => {
            Ok(TmEvent::CommitReply { from, reply })
        }
        (Some(from), Msg::Ack { txn: t }) if t == txn => Ok(TmEvent::Ack { from }),
        (_, msg) => Err(reply_counts_as_dropped(&msg)),
    }
}

/// A running cluster: server threads plus shared catalog and CAs.
pub struct Cluster {
    config: ClusterConfig,
    catalog: SharedCatalog,
    cas: SharedCas,
    net: Arc<Net>,
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    epoch: Instant,
    next_txn: AtomicU64,
    live_servers: Arc<AtomicUsize>,
    /// Inputs received on a coordinator's reply channel that no receive
    /// loop was waiting for (stale replies for resolved rounds). These were
    /// previously dropped silently by the catch-all match arms.
    dropped_replies: Arc<AtomicU64>,
    salvage: Salvage,
    decision_log: DecisionLog,
    /// In-doubt resolver threads spawned by [`Cluster::restart_server`].
    resolvers: Mutex<Vec<JoinHandle<()>>>,
    stopping: Arc<AtomicBool>,
    workers: usize,
    batch: usize,
    /// First global server id owned by this cluster (0 for a standalone
    /// deployment; a shard's offset into the global id space otherwise).
    base: u64,
}

/// Decrements the live-thread gauge when a server thread exits — normally
/// or by panic (the guard drops during unwind either way).
struct LiveGuard(Arc<AtomicUsize>);

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

impl Cluster {
    /// Spawns the server threads. One certificate authority (`CA0`) is
    /// registered; every resource maps to [`PolicyId`] 0.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        let catalog = SharedCatalog::new();
        let mut registry = CaRegistry::new();
        registry.register(CertificateAuthority::new(CaId::new(0), 0x7331));
        let cas = SharedCas::new(registry);
        Self::with_topology(config, 0, catalog, cas, Instant::now())
    }

    /// Spawns the server threads as one shard of a larger deployment: the
    /// servers own global ids `first_server..first_server + servers`, and
    /// the policy catalog, certificate authorities and protocol-time epoch
    /// are shared with the other shards so credentials, policy versions and
    /// timestamps agree everywhere. [`Cluster::new`] is the single-shard
    /// special case (`first_server = 0`, fresh shared state).
    #[must_use]
    pub fn with_topology(
        config: ClusterConfig,
        first_server: u64,
        catalog: SharedCatalog,
        cas: SharedCas,
        epoch: Instant,
    ) -> Self {
        let workers = resolve_workers(&config);
        let batch = resolve_batch(&config);
        let concurrency = resolve_concurrency(&config);
        let live_servers = Arc::new(AtomicUsize::new(0));
        let salvage: Salvage = Arc::new(Mutex::new(HashMap::new()));

        let mut addrs = Vec::with_capacity(config.servers);
        let mut rxs = Vec::with_capacity(config.servers);
        for i in 0..config.servers {
            let (tx, rx) = unbounded::<Input>();
            addrs.push(Addr {
                endpoint: Endpoint::Server(ServerId::new(first_server + i as u64)),
                tx,
                id: fresh_addr_id(),
            });
            rxs.push(rx);
        }
        let net = Arc::new(Net::new(addrs, first_server));

        let mut handles = Vec::with_capacity(config.servers);
        for (i, rx) in rxs.into_iter().enumerate() {
            let id = ServerId::new(first_server + i as u64);
            let mut core = ServerCore::new(
                id,
                catalog.clone(),
                ResourcePolicyMap::single(PolicyId::new(0)),
                cas.clone(),
                config.variant,
            );
            if let Some(cost) = config.wal_sync_cost {
                core.set_wal_sync_cost(cost);
            }
            core.set_concurrency(concurrency);
            let my_addr = net.server_addr(i);
            live_servers.fetch_add(1, Ordering::Release);
            let guard = LiveGuard(live_servers.clone());
            let net = Arc::clone(&net);
            let salvage = Arc::clone(&salvage);
            handles.push(Some(std::thread::spawn(move || {
                let _guard = guard;
                server_loop(core, rx, my_addr, epoch, workers, batch, net, salvage);
            })));
        }

        Cluster {
            config,
            catalog,
            cas,
            net,
            handles: Mutex::new(handles),
            epoch,
            next_txn: AtomicU64::new(0),
            live_servers,
            dropped_replies: Arc::new(AtomicU64::new(0)),
            salvage,
            decision_log: Arc::new(Mutex::new(Wal::new())),
            resolvers: Mutex::new(Vec::new()),
            stopping: Arc::new(AtomicBool::new(false)),
            workers,
            batch,
            base: first_server,
        }
    }

    /// Array slot of a server this cluster owns.
    ///
    /// # Panics
    ///
    /// Panics when the id is outside this cluster's range.
    fn pos(&self, server: ServerId) -> usize {
        let pos = server
            .index()
            .checked_sub(self.base)
            .expect("server below this cluster's id range") as usize;
        assert!(
            pos < self.config.servers,
            "server {server} above this cluster's id range"
        );
        pos
    }

    /// First global server id owned by this cluster.
    #[must_use]
    pub fn first_server(&self) -> u64 {
        self.base
    }

    /// The global ids of every server this cluster owns, in slot order.
    #[must_use]
    pub fn server_ids(&self) -> Vec<ServerId> {
        (0..self.config.servers as u64)
            .map(|i| ServerId::new(self.base + i))
            .collect()
    }

    /// How many coordinator-side inputs were received but matched no
    /// pending protocol round (stale replies after an abort, for example).
    #[must_use]
    pub fn dropped_replies(&self) -> u64 {
        self.dropped_replies.load(Ordering::Relaxed)
    }

    /// The configuration this cluster was built with.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// How many server threads are currently running. Reaches zero only
    /// after shutdown (or drop) has joined every thread.
    #[must_use]
    pub fn live_servers(&self) -> usize {
        self.live_servers.load(Ordering::Acquire)
    }

    /// A clone of the live-thread gauge, for tests that must observe the
    /// cluster's threads after the `Cluster` itself is gone.
    #[must_use]
    pub fn live_servers_gauge(&self) -> Arc<AtomicUsize> {
        self.live_servers.clone()
    }

    /// The shared policy catalog.
    #[must_use]
    pub fn catalog(&self) -> &SharedCatalog {
        &self.catalog
    }

    /// The shared certificate authorities.
    #[must_use]
    pub fn cas(&self) -> &SharedCas {
        &self.cas
    }

    /// Protocol-time now (microseconds since cluster start).
    #[must_use]
    pub fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// A fresh transaction id.
    #[must_use]
    pub fn next_txn_id(&self) -> TxnId {
        TxnId::new(
            self.next_txn
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Arms a fault plan: every subsequent protocol send is subject to its
    /// edge rules and crash points. Replaces any previously armed plan
    /// (crash points start unfired).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.net.arm(plan);
    }

    /// Disarms fault injection; sends go back to the direct fast path.
    pub fn clear_fault_plan(&self) {
        self.net.disarm();
    }

    /// Fault-injection and recovery counters accumulated so far.
    #[must_use]
    pub fn fault_counters(&self) -> FaultCounters {
        self.net.counters()
    }

    /// Aggregated WAL accounting across every server: logical forced
    /// appends (the paper's Table I log metric, unchanged by batching) and
    /// the physical device syncs actually performed for them (strictly
    /// fewer under group commit when rounds carry multiple forces).
    ///
    /// Live servers are probed through their configure barrier; crashed
    /// servers are read from their salvaged durable state. Meaningful on a
    /// quiesced cluster — probing mid-`execute` reads a moving total.
    #[must_use]
    pub fn wal_stats(&self) -> safetx_metrics::WalStats {
        let mut total = safetx_metrics::WalStats::default();
        let crashed: BTreeSet<u64> = {
            let salvage = self.salvage.lock().expect("salvage lock");
            for core in salvage.values() {
                total.merge(&core.wal_stats());
            }
            salvage.keys().copied().collect()
        };
        for server in self.server_ids() {
            if crashed.contains(&server.index()) {
                continue;
            }
            let (tx, rx) = unbounded();
            self.configure_server(server, move |core| {
                let _ = tx.send(core.wal_stats());
            });
            total.merge(&rx.recv().expect("wal stats probe"));
        }
        total
    }

    /// Kills a server thread as if its process died: volatile state
    /// (locks, unprepared transactions) is lost; the store and WAL
    /// survive. Blocks until the thread is gone.
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range or the thread does not
    /// exit within a generous deadline.
    pub fn crash_server(&self, server: ServerId) {
        let idx = self.pos(server);
        let _ = self.net.tx(idx).send(Input::Crash);
        let deadline = Instant::now() + Duration::from_secs(10);
        while !self
            .salvage
            .lock()
            .expect("salvage lock")
            .contains_key(&server.index())
        {
            assert!(
                Instant::now() < deadline,
                "server {server} did not crash in time"
            );
            std::thread::yield_now();
        }
        if let Some(handle) = self.handles.lock().expect("handles lock")[idx].take() {
            let _ = handle.join();
        }
    }

    /// Servers currently crashed (awaiting [`Cluster::restart_server`]).
    #[must_use]
    pub fn crashed_servers(&self) -> Vec<ServerId> {
        let mut ids: Vec<u64> = self
            .salvage
            .lock()
            .expect("salvage lock")
            .keys()
            .copied()
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(ServerId::new).collect()
    }

    /// Restarts a crashed server: rebuilds its protocol state from the
    /// WAL ([`ServerCore::recover_from_wal`]), spawns a fresh thread on a
    /// fresh channel, and — for every in-doubt transaction — starts a
    /// resolver that drives the coordinator-inquiry path against this
    /// cluster's decision log until the decision is known.
    ///
    /// Blocks until the crashed core is available (a router-triggered
    /// crash may still be tearing the old thread down).
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range or no crash is pending
    /// for it.
    pub fn restart_server(&self, server: ServerId) {
        let idx = self.pos(server);
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut core = loop {
            if let Some(core) = self
                .salvage
                .lock()
                .expect("salvage lock")
                .remove(&server.index())
            {
                break core;
            }
            assert!(
                Instant::now() < deadline,
                "server {server} has no crash to restart from"
            );
            std::thread::yield_now();
        };
        // Router-triggered crashes leave the joined-out handle in place.
        if let Some(handle) = self.handles.lock().expect("handles lock")[idx].take() {
            let _ = handle.join();
        }

        let in_doubt = core.recover_from_wal();
        let (tx, rx) = unbounded::<Input>();
        let my_addr = Addr {
            endpoint: Endpoint::Server(server),
            tx,
            id: fresh_addr_id(),
        };
        self.net.replace_server(idx, my_addr.clone());
        self.live_servers.fetch_add(1, Ordering::Release);
        let guard = LiveGuard(self.live_servers.clone());
        let net = Arc::clone(&self.net);
        let salvage = Arc::clone(&self.salvage);
        let (epoch, workers, batch) = (self.epoch, self.workers, self.batch);
        let handle = std::thread::spawn(move || {
            let _guard = guard;
            server_loop(core, rx, my_addr, epoch, workers, batch, net, salvage);
        });
        self.handles.lock().expect("handles lock")[idx] = Some(handle);
        self.net.note_recovery();
        for txn in in_doubt {
            self.spawn_resolver(server, txn);
        }
    }

    /// Spawns a thread that polls the decision log for `txn`'s fate and
    /// injects the answer into the recovered server — the threaded
    /// equivalent of the simulator's `Inquiry`/`InquiryReply` round trip
    /// (the "TM" here is the decision log all coordinators share).
    fn spawn_resolver(&self, server: ServerId, txn: TxnId) {
        let net = Arc::clone(&self.net);
        let log = Arc::clone(&self.decision_log);
        let variant = self.config.variant;
        let stopping = Arc::clone(&self.stopping);
        let idx = self.pos(server);
        let handle = std::thread::spawn(move || {
            // A reply address nobody reads: the participant's ack (if its
            // variant sends one) dies quietly, exactly like an ack to a
            // coordinator that already moved on.
            let (dead_tx, _dead_rx) = unbounded::<Input>();
            let coordinator = Addr {
                endpoint: Endpoint::Coordinator,
                tx: dead_tx,
                id: fresh_addr_id(),
            };
            let deadline = Instant::now() + Duration::from_secs(10);
            while !stopping.load(Ordering::Acquire) && Instant::now() < deadline {
                let answer = {
                    let log = log.lock().expect("decision log lock");
                    safetx_txn::answer_inquiry(txn, variant, log.records())
                };
                if matches!(answer, safetx_txn::InquiryAnswer::Decided(_)) {
                    let _ = net
                        .tx(idx)
                        .send(Input::Proto(coordinator, Msg::InquiryReply { txn, answer }));
                    return;
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        });
        self.resolvers.lock().expect("resolvers lock").push(handle);
    }

    /// Drives the participants' termination protocol from the harness
    /// side: asks every live server which transactions it still holds
    /// state for (decision messages may have been dropped or crashed away)
    /// and answers each from the coordinator decision log. Returns how
    /// many transactions were resolved.
    ///
    /// Only meaningful on a **quiesced** cluster — no `execute` in flight.
    /// A transaction that is mid-2PVC has no decision record yet and would
    /// be answered from its variant's presumption, which can contradict
    /// the decision its coordinator is about to take.
    ///
    /// Two classes of leftovers are distinguished. A participant that is
    /// *in-doubt* (prepared, voted Yes) gets the inquiry answer from the
    /// decision log under the cluster's termination variant. A participant
    /// that never reached a vote — its coordinator crashed before (or
    /// during) prepare — gets a unilateral `Decision::Abort` instead:
    /// its vote was never cast, so no coordinator can have committed with
    /// it as a participant, and a presumption answer (presumed-commit in
    /// particular) must never reach an unprepared transaction.
    pub fn resolve_in_doubt(&self) -> usize {
        let crashed: BTreeSet<u64> = self
            .salvage
            .lock()
            .expect("salvage lock")
            .keys()
            .copied()
            .collect();
        let mut resolved = 0;
        for server in self.server_ids() {
            if crashed.contains(&server.index()) {
                continue;
            }
            let (probe_tx, probe_rx) = unbounded();
            self.configure_server(server, move |core| {
                let _ = probe_tx.send((core.active_txn_ids(), core.in_doubt_txns()));
            });
            let (active, in_doubt) = probe_rx.recv().expect("probe reply");
            let in_doubt: BTreeSet<TxnId> = in_doubt.into_iter().collect();
            for txn in active {
                let msg = if in_doubt.contains(&txn) {
                    let mut answer = {
                        let log = self.decision_log.lock().expect("decision log lock");
                        safetx_txn::answer_inquiry(txn, self.config.variant, log.records())
                    };
                    // Basic 2PC's blocking case (no record, no
                    // presumption): on a quiesced cluster the coordinator
                    // is gone for good, so the absence of a forced
                    // decision record proves no participant ever saw
                    // COMMIT — coordinator recovery decides ABORT, same
                    // rule as `safetx_txn::recover_coordinator`.
                    if !matches!(answer, safetx_txn::InquiryAnswer::Decided(_)) {
                        answer = safetx_txn::InquiryAnswer::Decided(safetx_txn::Decision::Abort);
                    }
                    Msg::InquiryReply { txn, answer }
                } else {
                    Msg::Decision {
                        txn,
                        decision: safetx_txn::Decision::Abort,
                    }
                };
                let (dead_tx, _dead_rx) = unbounded::<Input>();
                let coordinator = Addr {
                    endpoint: Endpoint::Coordinator,
                    tx: dead_tx,
                    id: fresh_addr_id(),
                };
                let _ = self
                    .net
                    .tx(self.pos(server))
                    .send(Input::Proto(coordinator, msg));
                resolved += 1;
            }
            // Barrier: the injected replies are processed before this
            // no-op configure returns, so callers can probe stores
            // immediately after.
            self.configure_server(server, |_| {});
        }
        resolved
    }

    /// The coordinator decision log, oldest record first — what every
    /// recovery inquiry is answered from, and the ground truth chaos
    /// audits compare server state against.
    #[must_use]
    pub fn decision_log_records(&self) -> Vec<CoordinatorRecord> {
        self.decision_log
            .lock()
            .expect("decision log lock")
            .records()
            .cloned()
            .collect()
    }

    /// Applies a configuration closure on a server thread and waits for it
    /// (seed data, install policies, add constraints).
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range or its thread has exited.
    pub fn configure_server(
        &self,
        server: ServerId,
        f: impl FnOnce(&mut ServerCore<Addr>) + Send + 'static,
    ) {
        let (done_tx, done_rx) = unbounded();
        self.net
            .tx(self.pos(server))
            .send(Input::Configure(Box::new(f), done_tx))
            .expect("server thread alive");
        done_rx.recv().expect("configuration applied");
    }

    /// Publishes a policy version and notifies every replica.
    pub fn publish_policy(&self, policy: safetx_policy::Policy) {
        let id = policy.id();
        let version = policy.version();
        self.catalog.publish(policy);
        for server in self.server_ids() {
            self.configure_server(server, move |core| {
                core.install_policy(id, version);
            });
        }
    }

    /// Installs a policy version at every replica without publishing a new
    /// catalog entry.
    pub fn install_everywhere(&self, policy: PolicyId, version: PolicyVersion) {
        for server in self.server_ids() {
            self.configure_server(server, move |core| {
                core.install_policy(policy, version);
            });
        }
    }

    /// Executes one transaction synchronously: a blocking receive loop
    /// driving the shared sans-io [`TmCore`] state machine from the calling
    /// thread. All scheme-pipeline and 2PVC logic lives in the core; the
    /// shared [`drive_tm`] driver only converts channel inputs into
    /// [`TmEvent`]s and performs the returned [`TmEffect`]s (sends through
    /// the fault fabric, decision log writes, inline master consults).
    /// Thread-safe: concurrent callers contend on the servers' lock
    /// managers exactly like concurrent TMs.
    #[must_use]
    pub fn execute(&self, spec: &TransactionSpec, credentials: &[Credential]) -> ExecutionResult {
        let config = TmConfig::new(
            self.config.scheme,
            self.config.consistency,
            self.config.variant,
        );
        drive_tm(
            self,
            config,
            spec,
            credentials,
            self.config.reply_timeout,
            self.epoch,
        )
    }

    /// Executes one transaction whose coordinator dies at the given
    /// protocol moment (`None` when the crash fired; `Some` when the
    /// transaction finished before reaching the point). Whatever the
    /// crash leaves behind — participants blocked on a vote, in-doubt
    /// after a YES, holding locks for an unheard decision — is resolved
    /// by [`Cluster::resolve_in_doubt`] against the decision log, which
    /// the force-before-send discipline keeps authoritative.
    #[must_use]
    pub fn execute_with_coordinator_crash(
        &self,
        spec: &TransactionSpec,
        credentials: &[Credential],
        point: TmCrashPoint,
    ) -> Option<ExecutionResult> {
        let config = TmConfig::new(
            self.config.scheme,
            self.config.consistency,
            self.config.variant,
        );
        drive_tm_with_crash(
            self,
            config,
            spec,
            credentials,
            self.config.reply_timeout,
            self.epoch,
            Some(point),
        )
    }

    /// Protocol send to one of this cluster's servers, from a coordinator
    /// reply address. Used by [`drive_tm`] routes (including the sharded
    /// deployment's cross-shard coordinator in `shard.rs`).
    pub(crate) fn send_from(&self, from: &Addr, server: ServerId, msg: Msg) {
        self.net.to_server(from, self.pos(server), msg);
    }

    /// Force-appends a coordinator record to this cluster's decision log —
    /// the log its recovery inquiries are answered from.
    pub(crate) fn force_decision_record(&self, record: CoordinatorRecord) {
        self.decision_log
            .lock()
            .expect("decision log lock")
            .force(record);
    }

    /// Appends a non-forced coordinator record to this cluster's decision
    /// log.
    pub(crate) fn append_decision_record(&self, record: CoordinatorRecord) {
        self.decision_log
            .lock()
            .expect("decision log lock")
            .append(record);
    }

    /// Adds to the stale-reply counter surfaced by
    /// [`Cluster::dropped_replies`].
    pub(crate) fn note_dropped_replies(&self, count: u64) {
        self.dropped_replies.fetch_add(count, Ordering::Relaxed);
    }

    /// Records a reply-deadline abort in the fault counters.
    pub(crate) fn note_timeout_abort(&self) {
        self.net.note_timeout_abort();
    }

    /// Stops all server threads and waits for them.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stopping.store(true, Ordering::Release);
        for handle in self.resolvers.lock().expect("resolvers lock").drain(..) {
            let _ = handle.join();
        }
        for i in 0..self.config.servers {
            let _ = self.net.tx(i).send(Input::Shutdown);
        }
        for slot in self.handles.lock().expect("handles lock").iter_mut() {
            if let Some(handle) = slot.take() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Where a TM driver's effects land: protocol sends, master consults,
/// decision-log writes and counter updates. [`Cluster`] routes everything
/// to its own servers and log; the sharded deployment's cross-shard
/// coordinator (`shard.rs`) routes each server to its owning shard and
/// replicates decision records into every participant shard's log — both
/// drive the **same** [`drive_tm`] loop, which is what makes a 1-shard
/// deployment byte-identical to a plain cluster.
pub(crate) trait TmRoute {
    /// Protocol send to a (globally identified) server.
    fn send(&self, from: &Addr, server: ServerId, msg: Msg);
    /// The master's latest version per policy.
    fn master_versions(&self) -> Arc<VersionMap>;
    /// Force a coordinator record to every relevant decision log before
    /// the protocol proceeds.
    fn force_decision(&self, record: CoordinatorRecord);
    /// Append a non-forced coordinator record.
    fn append_decision(&self, record: CoordinatorRecord);
    /// Count stale replies observed by the driver.
    fn note_dropped(&self, count: u64);
    /// Count a reply-deadline abort.
    fn note_timeout(&self);
}

impl TmRoute for Cluster {
    fn send(&self, from: &Addr, server: ServerId, msg: Msg) {
        self.send_from(from, server, msg);
    }

    // The catalog IS the master here; answer inline from its epoch
    // snapshot (no map rebuild, no deep clone).
    fn master_versions(&self) -> Arc<VersionMap> {
        self.catalog.latest_snapshot().1
    }

    fn force_decision(&self, record: CoordinatorRecord) {
        self.force_decision_record(record);
    }

    fn append_decision(&self, record: CoordinatorRecord) {
        self.append_decision_record(record);
    }

    fn note_dropped(&self, count: u64) {
        self.note_dropped_replies(count);
    }

    fn note_timeout(&self) {
        self.note_timeout_abort();
    }
}

/// The blocking TM driver shared by every threaded deployment: feeds the
/// sans-io [`TmCore`] from a fresh coordinator reply channel and performs
/// its effects through the given [`TmRoute`]. All scheme-pipeline and 2PVC
/// logic lives in the core; the route only decides *where* sends and
/// decision records go.
pub(crate) fn drive_tm<R: TmRoute + ?Sized>(
    route: &R,
    config: TmConfig,
    spec: &TransactionSpec,
    credentials: &[Credential],
    reply_timeout: Option<Duration>,
    epoch: Instant,
) -> ExecutionResult {
    drive_tm_with_crash(route, config, spec, credentials, reply_timeout, epoch, None)
        .expect("no coordinator crash scheduled")
}

/// [`drive_tm`] with an optional scheduled coordinator crash: at the
/// matching protocol moment the driver stops dead — no further effects
/// are performed, nothing is cleaned up, and `None` is returned. Effects
/// performed *before* the crash point (sends on the wire, records in the
/// decision log) stand, exactly as a process kill would leave them; the
/// participants' termination protocol owns whatever is left.
pub(crate) fn drive_tm_with_crash<R: TmRoute + ?Sized>(
    route: &R,
    config: TmConfig,
    spec: &TransactionSpec,
    credentials: &[Credential],
    reply_timeout: Option<Duration>,
    epoch: Instant,
    crash: Option<TmCrashPoint>,
) -> Option<ExecutionResult> {
    let started = Instant::now();
    let (reply_tx, reply_rx) = unbounded::<Input>();
    let me = Addr {
        endpoint: Endpoint::Coordinator,
        tx: reply_tx,
        id: fresh_addr_id(),
    };
    let txn = spec.id;
    let mut core = TmCore::new(config, spec.clone(), credentials.to_vec(), now_since(epoch));
    let mut termination: Option<TxnTermination> = None;
    // Stale inputs this driver observed on the reply channel (the core
    // tracks the ones it was fed itself).
    let mut driver_dropped = 0u64;
    // Messages unpacked from a coalesced [`Msg::Batch`] envelope and
    // not yet fed to the core: drained before the channel is read again
    // so batched replies keep their in-envelope order.
    let mut pending: std::collections::VecDeque<(Addr, Msg)> = std::collections::VecDeque::new();

    let mut effects = core.start(now_since(epoch));
    loop {
        // Perform the batch. A master consult is answered only after the
        // whole batch has flushed, so sends keep their protocol order.
        let mut consult_master = false;
        for effect in effects {
            match effect {
                TmEffect::Send(server, msg) => {
                    let kind = MsgKind::of(&msg);
                    route.send(&me, server, msg);
                    if crash == Some(TmCrashPoint::AfterSend(kind)) {
                        // The frame left; the coordinator dies before the
                        // rest of this effect batch.
                        return None;
                    }
                }
                TmEffect::QueryMaster => consult_master = true,
                TmEffect::ForceLog { record, .. } => {
                    let is_decision = matches!(record, CoordinatorRecord::Decision { .. });
                    if is_decision && crash == Some(TmCrashPoint::BeforeDecisionForce) {
                        // The outcome was computed but never became
                        // durable; termination must answer from the
                        // forced Collecting record (abort).
                        return None;
                    }
                    route.force_decision(record);
                    if is_decision && crash == Some(TmCrashPoint::AfterDecisionForce) {
                        // The decision is durable but no participant has
                        // heard it: the effect batch orders the force
                        // before every decision send, all of which now
                        // die with the coordinator.
                        return None;
                    }
                }
                TmEffect::Log(record) => route.append_decision(record),
                // The reply deadline below is this driver's failure
                // detector; the idle watchdog is never configured.
                TmEffect::ArmTimer(_) | TmEffect::Decided(_) => {}
                TmEffect::Finished(t) => termination = Some(*t),
            }
        }
        if termination.is_some() {
            break;
        }
        if consult_master {
            let versions = route.master_versions();
            effects = core.step(now_since(epoch), TmEvent::MasterVersions { versions });
            continue;
        }
        // One reply: first anything left over from a coalesced batch,
        // then the channel (or `None` after the configured deadline;
        // with no deadline, `None` only if every sender is gone).
        let input = match pending.pop_front() {
            Some((from, msg)) => Some(Input::Proto(from, msg)),
            None => match reply_timeout {
                None => reply_rx.recv().ok(),
                Some(t) => reply_rx.recv_timeout(t).ok(),
            },
        };
        let event = match input {
            None => TmEvent::ReplyTimeout,
            Some(Input::Proto(from, Msg::Batch(msgs))) => {
                // Flatten a coalesced envelope; the inner messages are
                // processed in order starting this iteration.
                pending.extend(msgs.into_iter().map(|m| (from.clone(), m)));
                effects = Vec::new();
                continue;
            }
            Some(Input::Proto(from, msg)) => match coordinator_event(txn, &from, msg) {
                Ok(event) => event,
                Err(counts_as_dropped) => {
                    if counts_as_dropped {
                        driver_dropped += 1;
                    }
                    effects = Vec::new();
                    continue;
                }
            },
            // Only protocol traffic reaches a coordinator channel.
            Some(_) => {
                effects = Vec::new();
                continue;
            }
        };
        effects = core.step(now_since(epoch), event);
    }

    // Drain stale stragglers without blocking, under the same unified
    // rule the core applies: acks never count, everything else does.
    // Leftover batch contents first, counted message by message (a
    // coalesced envelope is several replies, not one).
    for (_, msg) in pending {
        if reply_counts_as_dropped(&msg) {
            driver_dropped += 1;
        }
    }
    while let Ok(input) = reply_rx.try_recv() {
        if let Input::Proto(_, msg) = input {
            match msg {
                Msg::Batch(msgs) => {
                    driver_dropped +=
                        msgs.iter().filter(|m| reply_counts_as_dropped(m)).count() as u64;
                }
                msg if reply_counts_as_dropped(&msg) => driver_dropped += 1,
                _ => {}
            }
        }
    }
    route.note_dropped(driver_dropped + core.dropped_replies());

    let termination = termination.expect("core emitted Finished");
    if termination.outcome.abort_reason() == Some(AbortReason::ServerUnavailable) {
        route.note_timeout();
    }
    Some(ExecutionResult::from_termination(
        termination,
        started.elapsed(),
    ))
}

fn now_since(epoch: Instant) -> Timestamp {
    Timestamp::from_micros(epoch.elapsed().as_micros() as u64)
}

/// Sends protocol-core outputs to their destinations through the fabric.
/// A dead peer (a finished coordinator, a crashed server) is fine to
/// ignore.
fn forward(outputs: Vec<(Addr, Msg)>, my_addr: &Addr, net: &Net) {
    for (to, out) in outputs {
        net.send_proto(my_addr, &to, out);
    }
}

#[allow(clippy::too_many_arguments)]
fn server_loop(
    mut core: ServerCore<Addr>,
    rx: Receiver<Input>,
    my_addr: Addr,
    epoch: Instant,
    workers: usize,
    batch: usize,
    net: Arc<Net>,
    salvage: Salvage,
) {
    // With fewer than two workers the pool is skipped entirely and every
    // message runs inline on this thread — the exact pre-pool behaviour.
    let pool = (workers > 1).then(|| WorkerPool::new(workers));
    let crashed = if batch <= 1 {
        // Message-at-a-time: the exact pre-batching loop.
        loop {
            let Ok(input) = rx.recv() else { break false };
            match input {
                Input::Proto(from, msg) => {
                    let now = now_since(epoch);
                    // The unsafe baseline measures capability-shortcut
                    // hazards that depend on exact interleavings: keep it
                    // inline.
                    match &pool {
                        Some(pool) if !core.unsafe_baseline() => {
                            dispatch(&mut core, pool, &my_addr, epoch, now, from, msg, &net);
                        }
                        _ => forward(core.handle(now, from, msg), &my_addr, &net),
                    }
                }
                Input::Configure(f, done) => {
                    f(&mut core);
                    let _ = done.send(());
                }
                Input::Crash => break true,
                Input::Shutdown => break false,
            }
        }
    } else {
        // Batched: each iteration blocks for one input, then drains up to
        // `batch` protocol messages already queued and processes them as a
        // single round. Control inputs act as barriers — the round that was
        // open when one arrives completes first, then the control input
        // runs, preserving the FIFO semantics `configure_server` callers
        // (and `resolve_in_doubt`'s no-op barrier) rely on.
        loop {
            let Ok(first) = rx.recv() else { break false };
            let mut round: Vec<(Addr, Msg)> = Vec::new();
            let mut control = None;
            match first {
                Input::Proto(from, msg) => round.push((from, msg)),
                other => control = Some(other),
            }
            while control.is_none() && round.len() < batch {
                match rx.try_recv() {
                    Ok(Input::Proto(from, msg)) => round.push((from, msg)),
                    Ok(other) => control = Some(other),
                    Err(_) => break,
                }
            }
            if !round.is_empty() {
                process_round(&mut core, pool.as_ref(), &my_addr, epoch, round, &net);
            }
            match control {
                None => {}
                Some(Input::Configure(f, done)) => {
                    f(&mut core);
                    let _ = done.send(());
                }
                Some(Input::Crash) => break true,
                Some(Input::Shutdown) => break false,
                Some(Input::Proto(..)) => unreachable!("proto inputs join the round"),
            }
        }
    };
    // Join in-flight data-plane work first: replies already computed are
    // "on the wire" and still delivered, like packets leaving a dying host.
    drop(pool);
    if crashed {
        let Endpoint::Server(id) = my_addr.endpoint else {
            unreachable!("server loops run on server endpoints");
        };
        core.crash();
        net.note_crash();
        salvage
            .lock()
            .expect("salvage lock")
            .insert(id.index(), core);
    }
}

/// Splits one message between the server thread (protocol plane: locks,
/// write sets, WAL, participant state) and the data-plane worker pool
/// (proof evaluation and the reply it feeds). Messages whose handling is
/// pure protocol — voting, decisions, recovery — run inline unchanged; so
/// does anything holding a lock-manager or write-set decision, keeping the
/// server thread the single serialization point for those.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    core: &mut ServerCore<Addr>,
    pool: &WorkerPool,
    my_addr: &Addr,
    epoch: Instant,
    now: Timestamp,
    from: Addr,
    msg: Msg,
    net: &Arc<Net>,
) {
    match msg {
        // Query execution with an attached proof (Punctual / Incremental
        // Punctual): registration, locking and write-set ops stay inline;
        // on success, the proof is evaluated on a worker, which sends the
        // QueryDone itself.
        Msg::ExecQuery {
            txn,
            query_index,
            query,
            user,
            credentials,
            evaluate_proof: true,
            pin_versions,
            capabilities,
        } => {
            let replies = core.handle(
                now,
                from.clone(),
                Msg::ExecQuery {
                    txn,
                    query_index,
                    query: Arc::clone(&query),
                    user,
                    credentials: Arc::clone(&credentials),
                    evaluate_proof: false,
                    pin_versions,
                    capabilities,
                },
            );
            let ok = replies
                .iter()
                .any(|(_, m)| matches!(m, Msg::QueryDone { ok: true, .. }));
            if !ok {
                // Lock conflict (or unknown failure): the inline reply
                // already says so; the proof is moot.
                forward(replies, my_addr, net);
                return;
            }
            let data = core.data_plane();
            let my_addr = my_addr.clone();
            let net = Arc::clone(net);
            pool.submit(move || {
                let proof = data.evaluate_one(now_since(epoch), user, &credentials, &query);
                net.send_proto(
                    &my_addr,
                    &from,
                    Msg::QueryDone {
                        txn,
                        query_index,
                        ok: true,
                        proof: Some(proof),
                        capability: None,
                    },
                );
            });
        }

        // 2PV collection (Continuous): the transaction registration is
        // protocol state and stays inline; the proof re-evaluations — the
        // round's entire cost — run on a worker.
        Msg::PrepareToValidate {
            txn,
            new_query,
            user,
            credentials,
        } => {
            let Some(snapshot) =
                core.register_validation(txn, new_query, user, credentials, from.clone())
            else {
                // A duplicated or delayed round for a transaction already
                // decided here: no reply owed (the coordinator is gone).
                return;
            };
            let data = core.data_plane();
            let my_addr = my_addr.clone();
            let net = Arc::clone(net);
            pool.submit(move || {
                let (truth, versions, proofs) = data.evaluate_snapshot(now_since(epoch), &snapshot);
                let reply = ValidationReply {
                    vote: Vote::Yes,
                    truth,
                    versions,
                    proofs,
                    conflict: false,
                };
                net.send_proto(&my_addr, &from, Msg::ValidateReply { txn, reply });
            });
        }

        // Standalone 2PV update round (Global consistency): fast-forward is
        // a data-plane operation; the re-evaluation goes to a worker.
        // In-commit updates touch the participant state machine and stay
        // inline.
        Msg::Update {
            txn,
            targets,
            in_commit: false,
        } => {
            core.data_plane().fast_forward(&targets);
            let Some(snapshot) = core.snapshot_txn(txn) else {
                // Same vacuous reply ServerCore::handle produces for a
                // transaction with no state here.
                let reply = ValidationReply {
                    vote: Vote::Yes,
                    truth: true,
                    versions: VersionMap::new(),
                    proofs: Vec::new(),
                    conflict: false,
                };
                net.send_proto(my_addr, &from, Msg::ValidateReply { txn, reply });
                return;
            };
            let data = core.data_plane();
            let my_addr = my_addr.clone();
            let net = Arc::clone(net);
            pool.submit(move || {
                let (truth, versions, proofs) = data.evaluate_snapshot(now_since(epoch), &snapshot);
                let reply = ValidationReply {
                    vote: Vote::Yes,
                    truth,
                    versions,
                    proofs,
                    conflict: false,
                };
                net.send_proto(&my_addr, &from, Msg::ValidateReply { txn, reply });
            });
        }

        other => forward(core.handle(now, from, other), my_addr, net),
    }
}

/// One proof-evaluation work item deferred out of a batched round. Its
/// protocol-plane half (registration, locks, write set, WAL) already ran on
/// the server thread; evaluating the proofs and sending the reply is pure
/// data-plane work.
enum EvalTask {
    /// An `ExecQuery` whose data operations succeeded: evaluate the proof
    /// and send the `QueryDone`.
    Query {
        txn: TxnId,
        query_index: usize,
        query: Arc<QuerySpec>,
        user: UserId,
        credentials: Arc<[Credential]>,
        to: Addr,
    },
    /// A 2PV contact (`PrepareToValidate` or a standalone `Update` round):
    /// evaluate the snapshot and send the `ValidateReply`.
    Snapshot {
        txn: TxnId,
        snapshot: EvalSnapshot,
        to: Addr,
    },
}

/// Processes one batched server round: protocol-plane handling for every
/// message runs inline (in arrival order, under one WAL group so the
/// round's forced appends coalesce into a single physical sync), the
/// round's proof evaluations are collected and shipped to the data plane
/// as **one** batch job sharing policy fetches, credential saturations and
/// within-round dedup, and replies to the same destination leave as one
/// coalesced [`Msg::Batch`] send.
///
/// The WAL group closes — performing the round's one physical sync —
/// before any reply is released, so a vote still never outruns the force
/// it acknowledges. Deferred evaluation replies involve no forces.
fn process_round(
    core: &mut ServerCore<Addr>,
    pool: Option<&WorkerPool>,
    my_addr: &Addr,
    epoch: Instant,
    round: Vec<(Addr, Msg)>,
    net: &Arc<Net>,
) {
    let now = now_since(epoch);
    let mut inline: Vec<(Addr, Msg)> = Vec::new();
    let mut tasks: Vec<EvalTask> = Vec::new();
    core.begin_wal_group();
    for (from, msg) in round {
        // Servers are not coalescing targets today, but a Batch envelope is
        // by definition its inner messages in order.
        let msgs = match msg {
            Msg::Batch(inner) => inner,
            other => vec![other],
        };
        for msg in msgs {
            // The unsafe baseline measures capability-shortcut hazards that
            // depend on exact interleavings: keep it fully inline.
            if core.unsafe_baseline() {
                inline.extend(core.handle(now, from.clone(), msg));
                continue;
            }
            match msg {
                Msg::ExecQuery {
                    txn,
                    query_index,
                    query,
                    user,
                    credentials,
                    evaluate_proof: true,
                    pin_versions,
                    capabilities,
                } => {
                    let replies = core.handle(
                        now,
                        from.clone(),
                        Msg::ExecQuery {
                            txn,
                            query_index,
                            query: Arc::clone(&query),
                            user,
                            credentials: Arc::clone(&credentials),
                            evaluate_proof: false,
                            pin_versions,
                            capabilities,
                        },
                    );
                    let ok = replies
                        .iter()
                        .any(|(_, m)| matches!(m, Msg::QueryDone { ok: true, .. }));
                    if ok {
                        tasks.push(EvalTask::Query {
                            txn,
                            query_index,
                            query,
                            user,
                            credentials,
                            to: from.clone(),
                        });
                    } else {
                        // Lock conflict: the inline reply already says so.
                        inline.extend(replies);
                    }
                }
                Msg::PrepareToValidate {
                    txn,
                    new_query,
                    user,
                    credentials,
                } => {
                    if let Some(snapshot) =
                        core.register_validation(txn, new_query, user, credentials, from.clone())
                    {
                        tasks.push(EvalTask::Snapshot {
                            txn,
                            snapshot,
                            to: from.clone(),
                        });
                    }
                    // None: duplicated/delayed round for a decided
                    // transaction — no reply owed.
                }
                Msg::Update {
                    txn,
                    targets,
                    in_commit: false,
                } => {
                    core.data_plane().fast_forward(&targets);
                    match core.snapshot_txn(txn) {
                        Some(snapshot) => tasks.push(EvalTask::Snapshot {
                            txn,
                            snapshot,
                            to: from.clone(),
                        }),
                        // Same vacuous reply ServerCore::handle produces for
                        // a transaction with no state here.
                        None => inline.push((
                            from.clone(),
                            Msg::ValidateReply {
                                txn,
                                reply: ValidationReply {
                                    vote: Vote::Yes,
                                    truth: true,
                                    versions: VersionMap::new(),
                                    proofs: Vec::new(),
                                    conflict: false,
                                },
                            },
                        )),
                    }
                }
                other => inline.extend(core.handle(now, from.clone(), other)),
            }
        }
    }
    core.end_wal_group();
    send_coalesced(inline, my_addr, net);
    if tasks.is_empty() {
        return;
    }
    let data = core.data_plane();
    let reply_addr = my_addr.clone();
    let net = Arc::clone(net);
    let job = move || {
        let mut batch = data.begin_batch(now_since(epoch));
        let mut replies = Vec::with_capacity(tasks.len());
        for task in tasks {
            match task {
                EvalTask::Query {
                    txn,
                    query_index,
                    query,
                    user,
                    credentials,
                    to,
                } => {
                    let proof = batch.evaluate_one(user, &credentials, &query);
                    replies.push((
                        to,
                        Msg::QueryDone {
                            txn,
                            query_index,
                            ok: true,
                            proof: Some(proof),
                            capability: None,
                        },
                    ));
                }
                EvalTask::Snapshot { txn, snapshot, to } => {
                    let (truth, versions, proofs) = batch.evaluate_snapshot(&snapshot);
                    replies.push((
                        to,
                        Msg::ValidateReply {
                            txn,
                            reply: ValidationReply {
                                vote: Vote::Yes,
                                truth,
                                versions,
                                proofs,
                                conflict: false,
                            },
                        },
                    ));
                }
            }
        }
        send_coalesced(replies, &reply_addr, &net);
    };
    match pool {
        Some(pool) => pool.submit(job),
        None => job(),
    }
}

/// Sends a round's outputs through the shared coalescing helper, keyed by
/// [`Addr::id`] — process-unique per reply channel, which satisfies
/// [`coalesce_replies`]'s key invariant because this runtime never reuses
/// a channel across logical peers (see the invariant documented on
/// `safetx_core::coalesce_replies`).
fn send_coalesced(outputs: Vec<(Addr, Msg)>, my_addr: &Addr, net: &Net) {
    for (to, msg) in coalesce_replies(outputs, |a| a.id) {
        net.send_proto(my_addr, &to, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_policy::{Atom, Constant, PolicyBuilder};
    use safetx_store::Value;
    use safetx_txn::{Decision, Operation, QuerySpec};
    use safetx_types::{AdminDomain, DataItemId, UserId};

    fn seeded(cluster: Cluster) -> Cluster {
        let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text(
                "grant(read, records) :- role(U, member).\n\
                 grant(write, records) :- role(U, member).",
            )
            .unwrap()
            .build();
        cluster.publish_policy(policy);
        for s in 0..cluster.config().servers as u64 {
            cluster.configure_server(ServerId::new(s), move |core| {
                core.store_mut()
                    .write(DataItemId::new(s * 100), Value::Int(10), Timestamp::ZERO);
            });
        }
        cluster
    }

    fn cluster(scheme: ProofScheme, consistency: ConsistencyLevel) -> Cluster {
        seeded(Cluster::new(ClusterConfig {
            servers: 3,
            scheme,
            consistency,
            variant: CommitVariant::Standard,
            ..ClusterConfig::default()
        }))
    }

    fn member_credential(cluster: &Cluster) -> Credential {
        cluster.cas().with_mut(|registry| {
            registry.ca_mut(CaId::new(0)).unwrap().issue(
                UserId::new(1),
                Atom::fact(
                    "role",
                    vec![Constant::symbol("u1"), Constant::symbol("member")],
                ),
                Timestamp::ZERO,
                Timestamp::MAX,
            )
        })
    }

    fn spec(cluster: &Cluster) -> TransactionSpec {
        TransactionSpec::new(
            cluster.next_txn_id(),
            UserId::new(1),
            vec![
                QuerySpec::new(
                    ServerId::new(0),
                    "read",
                    "records",
                    vec![Operation::Read(DataItemId::new(0))],
                ),
                QuerySpec::new(
                    ServerId::new(1),
                    "write",
                    "records",
                    vec![Operation::Add(DataItemId::new(100), 1)],
                ),
                QuerySpec::new(
                    ServerId::new(2),
                    "write",
                    "records",
                    vec![Operation::Add(DataItemId::new(200), -1)],
                ),
            ],
        )
    }

    #[test]
    fn every_scheme_commits_on_real_threads() {
        for scheme in ProofScheme::ALL {
            for consistency in ConsistencyLevel::ALL {
                let cluster = cluster(scheme, consistency);
                let cred = member_credential(&cluster);
                let result = cluster.execute(&spec(&cluster), &[cred]);
                assert!(
                    result.is_commit(),
                    "{scheme}/{consistency}: {:?}",
                    result.outcome
                );
                cluster.shutdown();
            }
        }
    }

    #[test]
    fn missing_credential_aborts_on_threads() {
        let cluster = cluster(ProofScheme::Punctual, ConsistencyLevel::View);
        let result = cluster.execute(&spec(&cluster), &[]);
        assert_eq!(result.outcome.abort_reason(), Some(AbortReason::ProofFalse));
        cluster.shutdown();
    }

    #[test]
    fn commits_apply_writes_visible_to_later_transactions() {
        let cluster = cluster(ProofScheme::Deferred, ConsistencyLevel::View);
        let cred = member_credential(&cluster);
        assert!(cluster
            .execute(&spec(&cluster), std::slice::from_ref(&cred))
            .is_commit());
        // Read back through a configure probe.
        let (tx, rx) = unbounded();
        cluster.configure_server(ServerId::new(1), move |core| {
            let _ = tx.send(core.store().read_int(DataItemId::new(100)));
        });
        assert_eq!(rx.recv().unwrap(), Some(11));
        cluster.shutdown();
    }

    #[test]
    fn concurrent_transactions_serialize_via_locks() {
        let cluster = std::sync::Arc::new(cluster(ProofScheme::Deferred, ConsistencyLevel::View));
        let cred = member_credential(&cluster);
        let mut joins = Vec::new();
        for _ in 0..4 {
            let cluster = cluster.clone();
            let cred = cred.clone();
            let spec = spec(&cluster);
            joins.push(std::thread::spawn(move || {
                cluster.execute(&spec, &[cred]).is_commit()
            }));
        }
        let outcomes: Vec<bool> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        // At least one must commit; others may hit lock conflicts.
        assert!(outcomes.iter().any(|&c| c), "{outcomes:?}");
    }

    #[test]
    fn drop_joins_server_threads_even_when_the_caller_panics() {
        // Smuggle the gauge out of the panicking scope so we can observe
        // the threads after the unwind.
        let gauge: std::sync::Mutex<Option<Arc<AtomicUsize>>> = std::sync::Mutex::new(None);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cluster = cluster(ProofScheme::Deferred, ConsistencyLevel::View);
            assert_eq!(cluster.live_servers(), 3);
            *gauge.lock().unwrap() = Some(cluster.live_servers_gauge());
            // A transaction is in flight state-wise (locks taken and
            // released); then the driver dies without calling shutdown().
            let cred = member_credential(&cluster);
            assert!(cluster.execute(&spec(&cluster), &[cred]).is_commit());
            panic!("driver died mid-run");
        }));
        assert!(result.is_err(), "the probe must have panicked");
        let gauge = gauge.lock().unwrap().clone().expect("gauge captured");
        // Cluster::drop ran during unwind and joined every server thread.
        assert_eq!(
            gauge.load(Ordering::Acquire),
            0,
            "server threads leaked past Drop"
        );
    }

    #[test]
    fn shutdown_brings_live_servers_to_zero() {
        let cluster = cluster(ProofScheme::Deferred, ConsistencyLevel::View);
        let gauge = cluster.live_servers_gauge();
        assert_eq!(cluster.live_servers(), 3);
        cluster.shutdown();
        assert_eq!(gauge.load(Ordering::Acquire), 0);
    }

    #[test]
    fn execution_view_supports_definition4_audit() {
        use safetx_core::trusted;
        for scheme in ProofScheme::ALL {
            for consistency in ConsistencyLevel::ALL {
                let cluster = cluster(scheme, consistency);
                let cred = member_credential(&cluster);
                let result = cluster.execute(&spec(&cluster), &[cred]);
                assert!(result.is_commit(), "{scheme}/{consistency}");
                assert!(
                    !result.view.is_empty(),
                    "{scheme}/{consistency}: commit recorded no proofs"
                );
                let authority = cluster.catalog().latest_versions();
                assert!(
                    trusted::is_trusted(&result.view, consistency, &authority),
                    "{scheme}/{consistency}: committed view fails Definition 4"
                );
                cluster.shutdown();
            }
        }
    }

    #[test]
    fn policy_update_between_queries_aborts_incremental() {
        let cluster = cluster(ProofScheme::IncrementalPunctual, ConsistencyLevel::Global);
        let cred = member_credential(&cluster);
        // Publish v2 after the cluster is set up but mid-"transaction" is
        // impossible to time deterministically on real threads, so publish
        // before: the master pin sees v2 everywhere and commits.
        let v2 = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .version(PolicyVersion(2))
            .rules_text(
                "grant(read, records) :- role(U, member).\n\
                 grant(write, records) :- role(U, member).",
            )
            .unwrap()
            .build();
        cluster.publish_policy(v2);
        let result = cluster.execute(&spec(&cluster), &[cred]);
        assert!(result.is_commit(), "{:?}", result.outcome);
        cluster.shutdown();
    }

    #[test]
    fn faults_disabled_counters_stay_zero() {
        let cluster = cluster(ProofScheme::Deferred, ConsistencyLevel::View);
        let cred = member_credential(&cluster);
        assert!(cluster.execute(&spec(&cluster), &[cred]).is_commit());
        assert_eq!(cluster.fault_counters(), FaultCounters::default());
        assert!(!cluster.decision_log_records().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn crash_and_restart_preserves_committed_state() {
        let cluster = cluster(ProofScheme::Deferred, ConsistencyLevel::View);
        let cred = member_credential(&cluster);
        assert!(cluster.execute(&spec(&cluster), &[cred]).is_commit());
        cluster.crash_server(ServerId::new(1));
        assert_eq!(cluster.live_servers(), 2);
        assert_eq!(cluster.crashed_servers(), vec![ServerId::new(1)]);
        cluster.restart_server(ServerId::new(1));
        assert_eq!(cluster.live_servers(), 3);
        assert!(cluster.crashed_servers().is_empty());
        let (tx, rx) = unbounded();
        cluster.configure_server(ServerId::new(1), move |core| {
            let _ = tx.send((
                core.store().read_int(DataItemId::new(100)),
                core.active_txns(),
            ));
        });
        // The committed write survived the crash; no ghost state came back.
        assert_eq!(rx.recv().unwrap(), (Some(11), 0));
        let counters = cluster.fault_counters();
        assert_eq!(counters.server_crashes, 1);
        assert_eq!(counters.recoveries, 1);
        cluster.shutdown();
    }

    #[test]
    fn dead_server_times_out_as_unavailable_and_recovers() {
        let cluster = seeded(Cluster::new(ClusterConfig {
            servers: 3,
            scheme: ProofScheme::Deferred,
            consistency: ConsistencyLevel::View,
            variant: CommitVariant::Standard,
            reply_timeout: Some(Duration::from_millis(20)),
            ..ClusterConfig::default()
        }));
        let cred = member_credential(&cluster);
        cluster.crash_server(ServerId::new(2));
        let result = cluster.execute(&spec(&cluster), std::slice::from_ref(&cred));
        assert_eq!(
            result.outcome.abort_reason(),
            Some(AbortReason::ServerUnavailable),
            "{:?}",
            result.outcome
        );
        assert!(cluster.fault_counters().timeout_aborts >= 1);
        // After restart the cluster is whole again and commits.
        cluster.restart_server(ServerId::new(2));
        let result = cluster.execute(&spec(&cluster), &[cred]);
        assert!(result.is_commit(), "{:?}", result.outcome);
        cluster.shutdown();
    }

    #[test]
    fn crashed_participant_learns_commit_through_recovery() {
        // Crash server 2 right after its YES vote is on the wire: the TM
        // commits (votes are in), the participant stays in doubt, and the
        // restart resolver answers the inquiry from the decision log.
        let cluster = seeded(Cluster::new(ClusterConfig {
            servers: 3,
            scheme: ProofScheme::Deferred,
            consistency: ConsistencyLevel::View,
            variant: CommitVariant::Standard,
            reply_timeout: Some(Duration::from_millis(20)),
            ..ClusterConfig::default()
        }));
        let cred = member_credential(&cluster);
        cluster.set_fault_plan(FaultPlan {
            seed: 0,
            rules: Vec::new(),
            crashes: vec![crate::fault::CrashRule {
                server: ServerId::new(2),
                point: CrashPoint::AfterSend(MsgKind::CommitReply),
            }],
        });
        let result = cluster.execute(&spec(&cluster), &[cred]);
        assert!(result.is_commit(), "{:?}", result.outcome);
        cluster.clear_fault_plan();
        cluster.restart_server(ServerId::new(2));
        // The resolver delivers the commit; poll until applied.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let (tx, rx) = unbounded();
            cluster.configure_server(ServerId::new(2), move |core| {
                let _ = tx.send((
                    core.store().read_int(DataItemId::new(200)),
                    core.decided_decision(TxnId::new(0)),
                ));
            });
            let (value, decided) = rx.recv().unwrap();
            if decided == Some(Decision::Commit) {
                assert_eq!(value, Some(9), "recovered write-set not applied");
                break;
            }
            assert!(Instant::now() < deadline, "recovery never resolved");
            std::thread::sleep(Duration::from_millis(1));
        }
        cluster.shutdown();
    }
}
