//! Thread-per-server cluster.

use crossbeam::channel::{unbounded, Receiver, Sender};
use safetx_core::{
    AbortReason, ConsistencyLevel, Msg, ProofScheme, ResourcePolicyMap, ServerCore, SharedCas,
    SharedCatalog, TransactionView, TwoPvc, TwoPvcAction, TxnOutcome, ValidationAction,
    ValidationConfig, ValidationOutcome, ValidationReply, ValidationRound, VersionMap,
};
use safetx_policy::{CaRegistry, CertificateAuthority, Credential};
use safetx_txn::{CommitVariant, QuerySpec, TransactionSpec, Vote};
use safetx_types::{CaId, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Who sent a message (and how to reply to them). Opaque: exposed only so
/// [`Cluster::configure_server`] closures can name `ServerCore<Addr>`.
#[derive(Clone)]
pub struct Addr {
    endpoint: Endpoint,
    tx: Sender<Input>,
}

impl std::fmt::Debug for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Addr({:?})", self.endpoint)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Endpoint {
    Coordinator,
    Server(ServerId),
}

/// A configuration closure applied on a server thread.
type ConfigureFn = Box<dyn FnOnce(&mut ServerCore<Addr>) + Send>;

/// What flows through the channels.
// Msg dominates the variant sizes; inputs are moved once into an unbounded
// channel and never stored in bulk, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum Input {
    Proto(Addr, Msg),
    Configure(ConfigureFn, Sender<()>),
    Shutdown,
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of server threads.
    pub servers: usize,
    /// Proof-of-authorization scheme.
    pub scheme: ProofScheme,
    /// Consistency level.
    pub consistency: ConsistencyLevel,
    /// Commit-protocol logging variant.
    pub variant: CommitVariant,
    /// Data-plane worker threads per server (proof evaluation off the
    /// server thread). `None` defers to the `SAFETX_SERVER_WORKERS`
    /// environment variable, then to `min(4, available_parallelism)`.
    /// A value of `1` (or `0`) keeps every server fully single-threaded —
    /// the exact pre-pool behaviour.
    pub server_workers: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            servers: 3,
            scheme: ProofScheme::Deferred,
            consistency: ConsistencyLevel::View,
            variant: CommitVariant::Standard,
            server_workers: None,
        }
    }
}

/// Resolves the per-server worker count: explicit config, then the
/// `SAFETX_SERVER_WORKERS` environment variable, then
/// `min(4, available_parallelism)`.
fn resolve_workers(config: &ClusterConfig) -> usize {
    config
        .server_workers
        .or_else(|| {
            std::env::var("SAFETX_SERVER_WORKERS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1)
        })
}

/// A job shipped to a server's data-plane workers.
type Job = Box<dyn FnOnce() + Send>;

/// A fixed pool of data-plane helper threads owned by one server thread.
/// Each worker drains its own queue; jobs are distributed round-robin
/// (they are uniform in kind — one proof evaluation batch each). Dropping
/// the pool closes the job channels and joins every worker, so the server
/// thread never exits (and the cluster's live-thread gauge never reaches
/// zero) while a proof evaluation is still in flight.
struct WorkerPool {
    txs: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    next: std::cell::Cell<usize>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = unbounded::<Job>();
            txs.push(tx);
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            }));
        }
        WorkerPool {
            txs,
            handles,
            next: std::cell::Cell::new(0),
        }
    }

    fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let slot = self.next.get();
        self.next.set((slot + 1) % self.txs.len());
        self.txs[slot].send(Box::new(job)).expect("worker alive");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The outcome of one executed transaction plus wall-clock timing.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Commit/abort and the protocol-time instant it was decided.
    pub outcome: TxnOutcome,
    /// Wall-clock latency of the whole execution.
    pub elapsed: std::time::Duration,
    /// Every proof of authorization the TM saw during this execution,
    /// recorded for post-hoc audits (Definitions 4–9 in
    /// `safetx_core::trusted`).
    pub view: TransactionView,
    /// How many queries finished executing before the decision (wasted
    /// work on aborts; equals the query count on commits).
    pub queries_executed: usize,
}

impl ExecutionResult {
    /// True when the transaction committed.
    #[must_use]
    pub fn is_commit(&self) -> bool {
        self.outcome.is_commit()
    }
}

/// A running cluster: server threads plus shared catalog and CAs.
pub struct Cluster {
    config: ClusterConfig,
    catalog: SharedCatalog,
    cas: SharedCas,
    server_txs: Vec<Sender<Input>>,
    handles: Vec<JoinHandle<()>>,
    epoch: Instant,
    next_txn: AtomicU64,
    live_servers: Arc<AtomicUsize>,
    /// Inputs received on a coordinator's reply channel that no receive
    /// loop was waiting for (stale replies for resolved rounds). These were
    /// previously dropped silently by the catch-all match arms.
    dropped_replies: Arc<AtomicU64>,
}

/// Decrements the live-thread gauge when a server thread exits — normally
/// or by panic (the guard drops during unwind either way).
struct LiveGuard(Arc<AtomicUsize>);

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

impl Cluster {
    /// Spawns the server threads. One certificate authority (`CA0`) is
    /// registered; every resource maps to [`PolicyId`] 0.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        let catalog = SharedCatalog::new();
        let mut registry = CaRegistry::new();
        registry.register(CertificateAuthority::new(CaId::new(0), 0x7331));
        let cas = SharedCas::new(registry);
        let epoch = Instant::now();

        let workers = resolve_workers(&config);
        let live_servers = Arc::new(AtomicUsize::new(0));
        let mut server_txs = Vec::with_capacity(config.servers);
        let mut handles = Vec::with_capacity(config.servers);
        for i in 0..config.servers {
            let id = ServerId::new(i as u64);
            let (tx, rx) = unbounded::<Input>();
            let core = ServerCore::new(
                id,
                catalog.clone(),
                ResourcePolicyMap::single(PolicyId::new(0)),
                cas.clone(),
                config.variant,
            );
            let my_addr = Addr {
                endpoint: Endpoint::Server(id),
                tx: tx.clone(),
            };
            live_servers.fetch_add(1, Ordering::Release);
            let guard = LiveGuard(live_servers.clone());
            handles.push(std::thread::spawn(move || {
                let _guard = guard;
                server_loop(core, rx, my_addr, epoch, workers);
            }));
            server_txs.push(tx);
        }

        Cluster {
            config,
            catalog,
            cas,
            server_txs,
            handles,
            epoch,
            next_txn: AtomicU64::new(0),
            live_servers,
            dropped_replies: Arc::new(AtomicU64::new(0)),
        }
    }

    /// How many coordinator-side inputs were received but matched no
    /// pending protocol round (stale replies after an abort, for example).
    #[must_use]
    pub fn dropped_replies(&self) -> u64 {
        self.dropped_replies.load(Ordering::Relaxed)
    }

    /// The configuration this cluster was built with.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// How many server threads are currently running. Reaches zero only
    /// after shutdown (or drop) has joined every thread.
    #[must_use]
    pub fn live_servers(&self) -> usize {
        self.live_servers.load(Ordering::Acquire)
    }

    /// A clone of the live-thread gauge, for tests that must observe the
    /// cluster's threads after the `Cluster` itself is gone.
    #[must_use]
    pub fn live_servers_gauge(&self) -> Arc<AtomicUsize> {
        self.live_servers.clone()
    }

    /// The shared policy catalog.
    #[must_use]
    pub fn catalog(&self) -> &SharedCatalog {
        &self.catalog
    }

    /// The shared certificate authorities.
    #[must_use]
    pub fn cas(&self) -> &SharedCas {
        &self.cas
    }

    /// Protocol-time now (microseconds since cluster start).
    #[must_use]
    pub fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// A fresh transaction id.
    #[must_use]
    pub fn next_txn_id(&self) -> TxnId {
        TxnId::new(
            self.next_txn
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Applies a configuration closure on a server thread and waits for it
    /// (seed data, install policies, add constraints).
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range or its thread has exited.
    pub fn configure_server(
        &self,
        server: ServerId,
        f: impl FnOnce(&mut ServerCore<Addr>) + Send + 'static,
    ) {
        let (done_tx, done_rx) = unbounded();
        self.server_txs[server.index() as usize]
            .send(Input::Configure(Box::new(f), done_tx))
            .expect("server thread alive");
        done_rx.recv().expect("configuration applied");
    }

    /// Publishes a policy version and notifies every replica.
    pub fn publish_policy(&self, policy: safetx_policy::Policy) {
        let id = policy.id();
        let version = policy.version();
        self.catalog.publish(policy);
        for server in 0..self.config.servers {
            self.configure_server(ServerId::new(server as u64), move |core| {
                core.install_policy(id, version);
            });
        }
    }

    /// Installs a policy version at every replica without publishing a new
    /// catalog entry.
    pub fn install_everywhere(&self, policy: PolicyId, version: PolicyVersion) {
        for server in 0..self.config.servers {
            self.configure_server(ServerId::new(server as u64), move |core| {
                core.install_policy(policy, version);
            });
        }
    }

    /// Executes one transaction synchronously, driving the scheme's
    /// pipeline and 2PVC from the calling thread. Thread-safe: concurrent
    /// callers contend on the servers' lock managers exactly like
    /// concurrent TMs.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn execute(&self, spec: &TransactionSpec, credentials: &[Credential]) -> ExecutionResult {
        let started = Instant::now();
        let (reply_tx, reply_rx) = unbounded::<Input>();
        let me = Addr {
            endpoint: Endpoint::Coordinator,
            tx: reply_tx,
        };
        let txn = spec.id;
        let scheme = self.config.scheme;
        let consistency = self.config.consistency;

        // Build the shared message payloads once: every per-query ×
        // per-server message below bumps a refcount instead of deep-cloning
        // the credential list and query specs (under Continuous the
        // per-transaction clone count is otherwise quadratic in queries).
        let credentials: Arc<[Credential]> = credentials.into();
        let queries: Vec<Arc<QuerySpec>> = spec.queries.iter().cloned().map(Arc::new).collect();

        let mut touched: BTreeSet<ServerId> = BTreeSet::new();
        let mut pinned: VersionMap = VersionMap::new();
        let mut master_pinned: Option<(u64, Arc<VersionMap>)> = None;
        let mut view = TransactionView::new();
        let mut queries_executed = 0usize;

        let abort = |this: &Cluster,
                     touched: &BTreeSet<ServerId>,
                     reason: AbortReason,
                     view: TransactionView,
                     queries_executed: usize| {
            for &s in touched {
                let _ = this.server_txs[s.index() as usize].send(Input::Proto(
                    me_clone(&me),
                    Msg::Decision {
                        txn,
                        decision: safetx_txn::Decision::Abort,
                    },
                ));
            }
            // Drain without blocking: expected acks plus any stale replies
            // (the latter are what the dropped-replies counter tracks).
            while let Ok(input) = reply_rx.try_recv() {
                if !matches!(input, Input::Proto(_, Msg::Ack { .. })) {
                    this.dropped_replies.fetch_add(1, Ordering::Relaxed);
                }
            }
            ExecutionResult {
                outcome: TxnOutcome::Aborted {
                    at: this.now(),
                    reason,
                },
                elapsed: started.elapsed(),
                view,
                queries_executed,
            }
        };

        // ------------------------------------------------------- queries
        for (index, query) in spec.queries.iter().enumerate() {
            // Continuous: 2PV over the servers involved so far + this one.
            if scheme.validates_before_each_query() {
                let involved: BTreeSet<ServerId> = spec
                    .queries
                    .iter()
                    .take(index + 1)
                    .map(|q| q.server)
                    .collect();
                let mut validation =
                    ValidationRound::new(involved, ValidationConfig::two_pv(consistency));
                let mut pending = validation.start();
                let outcome = loop {
                    let mut resolved = None;
                    let batch = std::mem::take(&mut pending);
                    for action in batch {
                        match action {
                            ValidationAction::SendRequest(server) => {
                                let new_query = (server == query.server)
                                    .then(|| (index, Arc::clone(&queries[index])));
                                self.server_txs[server.index() as usize]
                                    .send(Input::Proto(
                                        me_clone(&me),
                                        Msg::PrepareToValidate {
                                            txn,
                                            new_query,
                                            user: spec.user,
                                            credentials: Arc::clone(&credentials),
                                        },
                                    ))
                                    .expect("server alive");
                            }
                            ValidationAction::SendUpdate(server, targets) => {
                                self.server_txs[server.index() as usize]
                                    .send(Input::Proto(
                                        me_clone(&me),
                                        Msg::Update {
                                            txn,
                                            targets,
                                            in_commit: false,
                                        },
                                    ))
                                    .expect("server alive");
                            }
                            ValidationAction::QueryMaster => {
                                // The catalog IS the master here; answer
                                // inline from its epoch snapshot (no map
                                // rebuild, no deep clone).
                                pending.extend(
                                    validation.on_master_versions(self.catalog.latest_snapshot().1),
                                );
                            }
                            ValidationAction::Resolved(outcome) => resolved = Some(outcome),
                        }
                    }
                    if let Some(outcome) = resolved {
                        break outcome;
                    }
                    match reply_rx.recv().expect("servers alive") {
                        Input::Proto(from, Msg::ValidateReply { txn: t, mut reply })
                            if t == txn =>
                        {
                            if let Endpoint::Server(sid) = from.endpoint {
                                // The round's state machine only reads the
                                // truth value and versions; move the proofs
                                // into the audit view instead of cloning.
                                for proof in std::mem::take(&mut reply.proofs) {
                                    view.record(proof);
                                }
                                pending.extend(validation.on_reply(sid, reply));
                            }
                        }
                        _ => {
                            self.dropped_replies.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                };
                if let ValidationOutcome::Abort(reason) = outcome {
                    return abort(self, &touched, reason, view, queries_executed);
                }
            }

            // Incremental / global: retrieve the master version per query.
            // The consult is a generation check first: when no policy was
            // published since the pin, the snapshot is unchanged by
            // construction and the map comparison is skipped entirely.
            if scheme.checks_versions_incrementally() && consistency == ConsistencyLevel::Global {
                let (generation, latest) = self.catalog.latest_snapshot();
                match &master_pinned {
                    None => master_pinned = Some((generation, latest)),
                    Some((pinned_gen, _)) if *pinned_gen == generation => {}
                    Some((_, pin)) => {
                        if **pin != *latest {
                            return abort(
                                self,
                                &touched,
                                AbortReason::VersionInconsistency,
                                view,
                                queries_executed,
                            );
                        }
                        master_pinned = Some((generation, latest));
                    }
                }
            }

            // Execute the query's data operations (and per-scheme proof).
            let evaluate_proof = scheme.evaluates_at_query() && scheme != ProofScheme::Continuous;
            let pin_versions = if scheme.checks_versions_incrementally() {
                match consistency {
                    ConsistencyLevel::View => pinned.clone(),
                    ConsistencyLevel::Global => master_pinned
                        .as_ref()
                        .map(|(_, pin)| (**pin).clone())
                        .unwrap_or_default(),
                }
            } else {
                VersionMap::new()
            };

            touched.insert(query.server);
            self.server_txs[query.server.index() as usize]
                .send(Input::Proto(
                    me_clone(&me),
                    Msg::ExecQuery {
                        txn,
                        query_index: index,
                        query: Arc::clone(&queries[index]),
                        user: spec.user,
                        credentials: Arc::clone(&credentials),
                        evaluate_proof,
                        pin_versions,
                        capabilities: Vec::new(),
                    },
                ))
                .expect("server alive");
            // Await this query's completion.
            let (ok, proof) = loop {
                match reply_rx.recv().expect("servers alive") {
                    Input::Proto(
                        _,
                        Msg::QueryDone {
                            txn: t,
                            query_index: qi,
                            ok,
                            proof,
                            capability: _,
                        },
                    ) if t == txn && qi == index => break (ok, proof),
                    _ => {
                        self.dropped_replies.fetch_add(1, Ordering::Relaxed);
                    }
                }
            };
            if !ok {
                return abort(
                    self,
                    &touched,
                    AbortReason::LockConflict,
                    view,
                    queries_executed,
                );
            }
            queries_executed += 1;
            if let Some(proof) = proof {
                // Read the fields the checks need, then move the proof into
                // the audit view — no clone.
                let policy_id = proof.policy_id;
                let policy_version = proof.policy_version;
                let truth = proof.truth();
                view.record(proof);
                if scheme.checks_versions_incrementally() {
                    let expectation = match consistency {
                        ConsistencyLevel::View => {
                            Some(*pinned.entry(policy_id).or_insert(policy_version))
                        }
                        ConsistencyLevel::Global => master_pinned
                            .as_ref()
                            .and_then(|(_, pin)| pin.get(&policy_id).copied()),
                    };
                    if let Some(expected) = expectation {
                        if policy_version != expected {
                            return abort(
                                self,
                                &touched,
                                AbortReason::VersionInconsistency,
                                view,
                                queries_executed,
                            );
                        }
                    }
                }
                if !truth {
                    return abort(
                        self,
                        &touched,
                        AbortReason::ProofFalse,
                        view,
                        queries_executed,
                    );
                }
            }
        }

        // -------------------------------------------------------- commit
        let validate = scheme.validates_at_commit(consistency);
        let mut pvc = TwoPvc::new(
            txn,
            spec.participants(),
            consistency,
            self.config.variant,
            validate,
        );
        let mut pending = pvc.start();
        let decision = loop {
            let mut done = None;
            let mut decided = None;
            let batch = std::mem::take(&mut pending);
            for action in batch {
                match action {
                    TwoPvcAction::SendPrepareToCommit(server) => {
                        let expected_queries: Vec<usize> = spec
                            .queries
                            .iter()
                            .enumerate()
                            .filter(|(_, q)| q.server == server)
                            .map(|(i, _)| i)
                            .collect();
                        self.server_txs[server.index() as usize]
                            .send(Input::Proto(
                                me_clone(&me),
                                Msg::PrepareToCommit {
                                    txn,
                                    validate,
                                    expected_queries,
                                },
                            ))
                            .expect("server alive");
                    }
                    TwoPvcAction::SendUpdate(server, targets) => {
                        self.server_txs[server.index() as usize]
                            .send(Input::Proto(
                                me_clone(&me),
                                Msg::Update {
                                    txn,
                                    targets,
                                    in_commit: true,
                                },
                            ))
                            .expect("server alive");
                    }
                    TwoPvcAction::QueryMaster => {
                        pending.extend(pvc.on_master_versions(self.catalog.latest_snapshot().1));
                    }
                    TwoPvcAction::SendDecision(server, decision) => {
                        self.server_txs[server.index() as usize]
                            .send(Input::Proto(me_clone(&me), Msg::Decision { txn, decision }))
                            .expect("server alive");
                    }
                    TwoPvcAction::ForceLog(_) | TwoPvcAction::Log(_) => {}
                    TwoPvcAction::Decided(d) => decided = Some(d),
                    TwoPvcAction::Completed => done = Some(()),
                }
            }
            if done.is_some() {
                break decided
                    .or(pvc.decision())
                    .expect("completed implies decided");
            }
            match reply_rx.recv().expect("servers alive") {
                Input::Proto(from, Msg::CommitReply { txn: t, mut reply }) if t == txn => {
                    if let Endpoint::Server(sid) = from.endpoint {
                        for proof in std::mem::take(&mut reply.proofs) {
                            view.record(proof);
                        }
                        pending.extend(pvc.on_reply(sid, reply));
                    }
                }
                Input::Proto(from, Msg::Ack { txn: t }) if t == txn => {
                    if let Endpoint::Server(sid) = from.endpoint {
                        pending.extend(pvc.on_ack(sid));
                    }
                }
                _ => {
                    self.dropped_replies.fetch_add(1, Ordering::Relaxed);
                }
            }
        };

        let outcome = if decision.is_commit() {
            TxnOutcome::Committed { at: self.now() }
        } else {
            TxnOutcome::Aborted {
                at: self.now(),
                reason: pvc
                    .abort_reason()
                    .unwrap_or(AbortReason::IntegrityViolation),
            }
        };
        ExecutionResult {
            outcome,
            elapsed: started.elapsed(),
            view,
            queries_executed,
        }
    }

    /// Stops all server threads and waits for them.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.server_txs {
            let _ = tx.send(Input::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn me_clone(me: &Addr) -> Addr {
    me.clone()
}

fn now_since(epoch: Instant) -> Timestamp {
    Timestamp::from_micros(epoch.elapsed().as_micros() as u64)
}

/// Sends protocol-core outputs to their destinations. A dead peer (a
/// finished coordinator) is fine to ignore.
fn forward(outputs: Vec<(Addr, Msg)>, my_addr: &Addr) {
    for (to, out) in outputs {
        let _ = to.tx.send(Input::Proto(my_addr.clone(), out));
    }
}

fn server_loop(
    mut core: ServerCore<Addr>,
    rx: Receiver<Input>,
    my_addr: Addr,
    epoch: Instant,
    workers: usize,
) {
    // With fewer than two workers the pool is skipped entirely and every
    // message runs inline on this thread — the exact pre-pool behaviour.
    let pool = (workers > 1).then(|| WorkerPool::new(workers));
    while let Ok(input) = rx.recv() {
        match input {
            Input::Proto(from, msg) => {
                let now = now_since(epoch);
                // The unsafe baseline measures capability-shortcut hazards
                // that depend on exact interleavings: keep it inline.
                match &pool {
                    Some(pool) if !core.unsafe_baseline() => {
                        dispatch(&mut core, pool, &my_addr, epoch, now, from, msg);
                    }
                    _ => forward(core.handle(now, from, msg), &my_addr),
                }
            }
            Input::Configure(f, done) => {
                f(&mut core);
                let _ = done.send(());
            }
            Input::Shutdown => return,
        }
    }
}

/// Splits one message between the server thread (protocol plane: locks,
/// write sets, WAL, participant state) and the data-plane worker pool
/// (proof evaluation and the reply it feeds). Messages whose handling is
/// pure protocol — voting, decisions, recovery — run inline unchanged; so
/// does anything holding a lock-manager or write-set decision, keeping the
/// server thread the single serialization point for those.
fn dispatch(
    core: &mut ServerCore<Addr>,
    pool: &WorkerPool,
    my_addr: &Addr,
    epoch: Instant,
    now: Timestamp,
    from: Addr,
    msg: Msg,
) {
    match msg {
        // Query execution with an attached proof (Punctual / Incremental
        // Punctual): registration, locking and write-set ops stay inline;
        // on success, the proof is evaluated on a worker, which sends the
        // QueryDone itself.
        Msg::ExecQuery {
            txn,
            query_index,
            query,
            user,
            credentials,
            evaluate_proof: true,
            pin_versions,
            capabilities,
        } => {
            let replies = core.handle(
                now,
                from.clone(),
                Msg::ExecQuery {
                    txn,
                    query_index,
                    query: Arc::clone(&query),
                    user,
                    credentials: Arc::clone(&credentials),
                    evaluate_proof: false,
                    pin_versions,
                    capabilities,
                },
            );
            let ok = replies
                .iter()
                .any(|(_, m)| matches!(m, Msg::QueryDone { ok: true, .. }));
            if !ok {
                // Lock conflict (or unknown failure): the inline reply
                // already says so; the proof is moot.
                forward(replies, my_addr);
                return;
            }
            let data = core.data_plane();
            let my_addr = my_addr.clone();
            pool.submit(move || {
                let proof = data.evaluate_one(now_since(epoch), user, &credentials, &query);
                let _ = from.tx.send(Input::Proto(
                    my_addr,
                    Msg::QueryDone {
                        txn,
                        query_index,
                        ok: true,
                        proof: Some(proof),
                        capability: None,
                    },
                ));
            });
        }

        // 2PV collection (Continuous): the transaction registration is
        // protocol state and stays inline; the proof re-evaluations — the
        // round's entire cost — run on a worker.
        Msg::PrepareToValidate {
            txn,
            new_query,
            user,
            credentials,
        } => {
            let snapshot =
                core.register_validation(txn, new_query, user, credentials, from.clone());
            let data = core.data_plane();
            let my_addr = my_addr.clone();
            pool.submit(move || {
                let (truth, versions, proofs) = data.evaluate_snapshot(now_since(epoch), &snapshot);
                let reply = ValidationReply {
                    vote: Vote::Yes,
                    truth,
                    versions,
                    proofs,
                };
                let _ = from
                    .tx
                    .send(Input::Proto(my_addr, Msg::ValidateReply { txn, reply }));
            });
        }

        // Standalone 2PV update round (Global consistency): fast-forward is
        // a data-plane operation; the re-evaluation goes to a worker.
        // In-commit updates touch the participant state machine and stay
        // inline.
        Msg::Update {
            txn,
            targets,
            in_commit: false,
        } => {
            core.data_plane().fast_forward(&targets);
            let Some(snapshot) = core.snapshot_txn(txn) else {
                // Same vacuous reply ServerCore::handle produces for a
                // transaction with no state here.
                let reply = ValidationReply {
                    vote: Vote::Yes,
                    truth: true,
                    versions: VersionMap::new(),
                    proofs: Vec::new(),
                };
                let _ = from.tx.send(Input::Proto(
                    my_addr.clone(),
                    Msg::ValidateReply { txn, reply },
                ));
                return;
            };
            let data = core.data_plane();
            let my_addr = my_addr.clone();
            pool.submit(move || {
                let (truth, versions, proofs) = data.evaluate_snapshot(now_since(epoch), &snapshot);
                let reply = ValidationReply {
                    vote: Vote::Yes,
                    truth,
                    versions,
                    proofs,
                };
                let _ = from
                    .tx
                    .send(Input::Proto(my_addr, Msg::ValidateReply { txn, reply }));
            });
        }

        other => forward(core.handle(now, from, other), my_addr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_policy::{Atom, Constant, PolicyBuilder};
    use safetx_store::Value;
    use safetx_txn::{Operation, QuerySpec};
    use safetx_types::{AdminDomain, DataItemId, UserId};

    fn cluster(scheme: ProofScheme, consistency: ConsistencyLevel) -> Cluster {
        let cluster = Cluster::new(ClusterConfig {
            servers: 3,
            scheme,
            consistency,
            variant: CommitVariant::Standard,
            server_workers: None,
        });
        let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text(
                "grant(read, records) :- role(U, member).\n\
                 grant(write, records) :- role(U, member).",
            )
            .unwrap()
            .build();
        cluster.publish_policy(policy);
        for s in 0..3u64 {
            cluster.configure_server(ServerId::new(s), move |core| {
                core.store_mut()
                    .write(DataItemId::new(s * 100), Value::Int(10), Timestamp::ZERO);
            });
        }
        cluster
    }

    fn member_credential(cluster: &Cluster) -> Credential {
        cluster.cas().with_mut(|registry| {
            registry.ca_mut(CaId::new(0)).unwrap().issue(
                UserId::new(1),
                Atom::fact(
                    "role",
                    vec![Constant::symbol("u1"), Constant::symbol("member")],
                ),
                Timestamp::ZERO,
                Timestamp::MAX,
            )
        })
    }

    fn spec(cluster: &Cluster) -> TransactionSpec {
        TransactionSpec::new(
            cluster.next_txn_id(),
            UserId::new(1),
            vec![
                QuerySpec::new(
                    ServerId::new(0),
                    "read",
                    "records",
                    vec![Operation::Read(DataItemId::new(0))],
                ),
                QuerySpec::new(
                    ServerId::new(1),
                    "write",
                    "records",
                    vec![Operation::Add(DataItemId::new(100), 1)],
                ),
                QuerySpec::new(
                    ServerId::new(2),
                    "write",
                    "records",
                    vec![Operation::Add(DataItemId::new(200), -1)],
                ),
            ],
        )
    }

    #[test]
    fn every_scheme_commits_on_real_threads() {
        for scheme in ProofScheme::ALL {
            for consistency in ConsistencyLevel::ALL {
                let cluster = cluster(scheme, consistency);
                let cred = member_credential(&cluster);
                let result = cluster.execute(&spec(&cluster), &[cred]);
                assert!(
                    result.is_commit(),
                    "{scheme}/{consistency}: {:?}",
                    result.outcome
                );
                cluster.shutdown();
            }
        }
    }

    #[test]
    fn missing_credential_aborts_on_threads() {
        let cluster = cluster(ProofScheme::Punctual, ConsistencyLevel::View);
        let result = cluster.execute(&spec(&cluster), &[]);
        assert_eq!(result.outcome.abort_reason(), Some(AbortReason::ProofFalse));
        cluster.shutdown();
    }

    #[test]
    fn commits_apply_writes_visible_to_later_transactions() {
        let cluster = cluster(ProofScheme::Deferred, ConsistencyLevel::View);
        let cred = member_credential(&cluster);
        assert!(cluster
            .execute(&spec(&cluster), std::slice::from_ref(&cred))
            .is_commit());
        // Read back through a configure probe.
        let (tx, rx) = unbounded();
        cluster.configure_server(ServerId::new(1), move |core| {
            let _ = tx.send(core.store().read_int(DataItemId::new(100)));
        });
        assert_eq!(rx.recv().unwrap(), Some(11));
        cluster.shutdown();
    }

    #[test]
    fn concurrent_transactions_serialize_via_locks() {
        let cluster = std::sync::Arc::new(cluster(ProofScheme::Deferred, ConsistencyLevel::View));
        let cred = member_credential(&cluster);
        let mut joins = Vec::new();
        for _ in 0..4 {
            let cluster = cluster.clone();
            let cred = cred.clone();
            let spec = spec(&cluster);
            joins.push(std::thread::spawn(move || {
                cluster.execute(&spec, &[cred]).is_commit()
            }));
        }
        let outcomes: Vec<bool> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        // At least one must commit; others may hit lock conflicts.
        assert!(outcomes.iter().any(|&c| c), "{outcomes:?}");
    }

    #[test]
    fn drop_joins_server_threads_even_when_the_caller_panics() {
        // Smuggle the gauge out of the panicking scope so we can observe
        // the threads after the unwind.
        let gauge: std::sync::Mutex<Option<Arc<AtomicUsize>>> = std::sync::Mutex::new(None);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cluster = cluster(ProofScheme::Deferred, ConsistencyLevel::View);
            assert_eq!(cluster.live_servers(), 3);
            *gauge.lock().unwrap() = Some(cluster.live_servers_gauge());
            // A transaction is in flight state-wise (locks taken and
            // released); then the driver dies without calling shutdown().
            let cred = member_credential(&cluster);
            assert!(cluster.execute(&spec(&cluster), &[cred]).is_commit());
            panic!("driver died mid-run");
        }));
        assert!(result.is_err(), "the probe must have panicked");
        let gauge = gauge.lock().unwrap().clone().expect("gauge captured");
        // Cluster::drop ran during unwind and joined every server thread.
        assert_eq!(
            gauge.load(Ordering::Acquire),
            0,
            "server threads leaked past Drop"
        );
    }

    #[test]
    fn shutdown_brings_live_servers_to_zero() {
        let cluster = cluster(ProofScheme::Deferred, ConsistencyLevel::View);
        let gauge = cluster.live_servers_gauge();
        assert_eq!(cluster.live_servers(), 3);
        cluster.shutdown();
        assert_eq!(gauge.load(Ordering::Acquire), 0);
    }

    #[test]
    fn execution_view_supports_definition4_audit() {
        use safetx_core::trusted;
        for scheme in ProofScheme::ALL {
            for consistency in ConsistencyLevel::ALL {
                let cluster = cluster(scheme, consistency);
                let cred = member_credential(&cluster);
                let result = cluster.execute(&spec(&cluster), &[cred]);
                assert!(result.is_commit(), "{scheme}/{consistency}");
                assert!(
                    !result.view.is_empty(),
                    "{scheme}/{consistency}: commit recorded no proofs"
                );
                let authority = cluster.catalog().latest_versions();
                assert!(
                    trusted::is_trusted(&result.view, consistency, &authority),
                    "{scheme}/{consistency}: committed view fails Definition 4"
                );
                cluster.shutdown();
            }
        }
    }

    #[test]
    fn policy_update_between_queries_aborts_incremental() {
        let cluster = cluster(ProofScheme::IncrementalPunctual, ConsistencyLevel::Global);
        let cred = member_credential(&cluster);
        // Publish v2 after the cluster is set up but mid-"transaction" is
        // impossible to time deterministically on real threads, so publish
        // before: the master pin sees v2 everywhere and commits.
        let v2 = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .version(PolicyVersion(2))
            .rules_text(
                "grant(read, records) :- role(U, member).\n\
                 grant(write, records) :- role(U, member).",
            )
            .unwrap()
            .build();
        cluster.publish_policy(v2);
        let result = cluster.execute(&spec(&cluster), &[cred]);
        assert!(result.is_commit(), "{:?}", result.outcome);
        cluster.shutdown();
    }
}
