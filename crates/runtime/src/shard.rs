//! Partitioned (sharded) deployment of the threaded runtime.
//!
//! A [`ShardedCluster`] splits the server id space into `N` shards, each a
//! full [`Cluster`] with its own server threads, fault fabric, WAL set and
//! decision log, all sharing one policy catalog, one certificate-authority
//! registry and one protocol-time epoch. A router classifies each
//! transaction by the servers its queries touch:
//!
//! - **Single-shard** transactions (every participant inside one shard)
//!   run entirely inside that shard via its own [`Cluster::execute`] — no
//!   cross-shard coordination of any kind, which also makes a 1-shard
//!   deployment *byte-identical* to a plain cluster.
//! - **Cross-shard** transactions are driven by a coordinating TM through
//!   the full 2PV/2PVC pipeline across the union of participant servers
//!   (the same shared `drive_tm` loop the single-shard path uses), with
//!   every decision record force-logged into **each** participant shard's
//!   decision log before participants learn it — so any shard's recovery
//!   inquiry can be answered locally, and force-before-vote and Table-I
//!   accounting are preserved per shard.
//!
//! Key-space partitioning is by server ownership: the workload maps items
//! to servers, and contiguous server ranges belong to shards, so a
//! hash/range key partition is exactly a server partition.

use crate::cluster::{
    drive_tm, drive_tm_with_crash, Cluster, ClusterConfig, ExecutionResult, TmRoute,
};
use crate::fault::{FaultPlan, TmCrashPoint};
use safetx_core::{Msg, SharedCas, SharedCatalog, TmConfig, VersionMap};
use safetx_metrics::{FaultCounters, Histogram, RouteCounters, WalStats};
use safetx_policy::{CaRegistry, CertificateAuthority, Credential};
use safetx_txn::{CoordinatorRecord, TransactionSpec};
use safetx_types::{CaId, PolicyId, PolicyVersion, ServerId, TxnId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sharded deployment configuration.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards (each a full [`Cluster`]).
    pub shards: usize,
    /// Per-shard cluster template; its `servers` field is the number of
    /// servers **per shard**. `reply_timeout`, scheme, consistency,
    /// variant, worker and batch settings apply to every shard and to the
    /// cross-shard coordinator alike.
    pub cluster: ClusterConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 2,
            cluster: ClusterConfig::default(),
        }
    }
}

/// How the router classified one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnRoute {
    /// Every participant server lives in this one shard.
    Single(usize),
    /// Participants span these shards (sorted, ≥ 2 entries).
    Cross(Vec<usize>),
}

impl TxnRoute {
    /// True for the single-shard fast path.
    #[must_use]
    pub fn is_single(&self) -> bool {
        matches!(self, TxnRoute::Single(_))
    }
}

/// Per-class routing counters (atomic mirror of [`RouteCounters`]).
#[derive(Default)]
struct RouteStats {
    single_submitted: AtomicU64,
    single_commits: AtomicU64,
    single_aborts: AtomicU64,
    cross_submitted: AtomicU64,
    cross_commits: AtomicU64,
    cross_aborts: AtomicU64,
}

impl RouteStats {
    fn snapshot(&self) -> RouteCounters {
        RouteCounters {
            single_shard_submitted: self.single_submitted.load(Ordering::Relaxed),
            single_shard_commits: self.single_commits.load(Ordering::Relaxed),
            single_shard_aborts: self.single_aborts.load(Ordering::Relaxed),
            cross_shard_submitted: self.cross_submitted.load(Ordering::Relaxed),
            cross_shard_commits: self.cross_commits.load(Ordering::Relaxed),
            cross_shard_aborts: self.cross_aborts.load(Ordering::Relaxed),
        }
    }
}

/// A partitioned deployment: `shards` independent [`Cluster`]s over one
/// shared catalog/CA/epoch, plus the router and cross-shard coordinator.
pub struct ShardedCluster {
    config: ShardedConfig,
    shards: Vec<Cluster>,
    catalog: SharedCatalog,
    cas: SharedCas,
    epoch: Instant,
    next_txn: AtomicU64,
    route: RouteStats,
    /// Stale replies observed by cross-shard coordinators (per-shard
    /// drivers count into their own cluster).
    cross_dropped: AtomicU64,
    /// Reply-deadline aborts taken by cross-shard coordinators.
    cross_timeout_aborts: AtomicU64,
    /// Wall-clock latency of single-shard executions, milliseconds.
    single_latency_ms: Mutex<Histogram>,
    /// Wall-clock latency of cross-shard executions, milliseconds.
    cross_latency_ms: Mutex<Histogram>,
}

impl ShardedCluster {
    /// Spawns every shard. One certificate authority (`CA0`) is registered
    /// in the shared registry; every resource maps to [`PolicyId`] 0 —
    /// the same bootstrap as [`Cluster::new`].
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `cluster.servers` is zero.
    #[must_use]
    pub fn new(config: ShardedConfig) -> Self {
        assert!(config.shards > 0, "at least one shard required");
        assert!(
            config.cluster.servers > 0,
            "at least one server per shard required"
        );
        let catalog = SharedCatalog::new();
        let mut registry = CaRegistry::new();
        registry.register(CertificateAuthority::new(CaId::new(0), 0x7331));
        let cas = SharedCas::new(registry);
        let epoch = Instant::now();
        let per_shard = config.cluster.servers as u64;
        let shards = (0..config.shards)
            .map(|s| {
                Cluster::with_topology(
                    config.cluster.clone(),
                    s as u64 * per_shard,
                    catalog.clone(),
                    cas.clone(),
                    epoch,
                )
            })
            .collect();
        ShardedCluster {
            config,
            shards,
            catalog,
            cas,
            epoch,
            next_txn: AtomicU64::new(0),
            route: RouteStats::default(),
            cross_dropped: AtomicU64::new(0),
            cross_timeout_aborts: AtomicU64::new(0),
            single_latency_ms: Mutex::new(Histogram::new()),
            cross_latency_ms: Mutex::new(Histogram::new()),
        }
    }

    /// The deployment configuration.
    #[must_use]
    pub fn sharded_config(&self) -> &ShardedConfig {
        &self.config
    }

    /// The per-shard cluster template (scheme, consistency, variant,
    /// timeouts) — the protocol configuration every coordinator runs with.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config.cluster
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Servers per shard.
    #[must_use]
    pub fn servers_per_shard(&self) -> usize {
        self.config.cluster.servers
    }

    /// Total servers across every shard.
    #[must_use]
    pub fn total_servers(&self) -> usize {
        self.shards() * self.servers_per_shard()
    }

    /// One shard's cluster (for audits, probes and tests).
    ///
    /// # Panics
    ///
    /// Panics when the index is out of range.
    #[must_use]
    pub fn shard(&self, index: usize) -> &Cluster {
        &self.shards[index]
    }

    /// The shard owning a (globally identified) server.
    ///
    /// # Panics
    ///
    /// Panics when the id is outside the deployment.
    #[must_use]
    pub fn shard_of(&self, server: ServerId) -> usize {
        let shard = (server.index() / self.servers_per_shard() as u64) as usize;
        assert!(
            shard < self.shards(),
            "server {server} outside the deployment"
        );
        shard
    }

    /// Classifies a transaction by the shards its queries touch.
    ///
    /// # Panics
    ///
    /// Panics when the spec has no queries or names a server outside the
    /// deployment.
    #[must_use]
    pub fn route_of(&self, spec: &TransactionSpec) -> TxnRoute {
        let mut shards: Vec<usize> = spec
            .participants()
            .into_iter()
            .map(|s| self.shard_of(s))
            .collect();
        shards.dedup();
        match shards.as_slice() {
            [] => panic!("transaction {} has no participants", spec.id),
            [only] => TxnRoute::Single(*only),
            _ => TxnRoute::Cross(shards),
        }
    }

    /// The shared policy catalog.
    #[must_use]
    pub fn catalog(&self) -> &SharedCatalog {
        &self.catalog
    }

    /// The shared certificate authorities.
    #[must_use]
    pub fn cas(&self) -> &SharedCas {
        &self.cas
    }

    /// A fresh transaction id (one sequence across all shards).
    #[must_use]
    pub fn next_txn_id(&self) -> TxnId {
        TxnId::new(self.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    /// Executes one transaction, routing it by its participant set:
    /// single-shard specs run verbatim through their shard's
    /// [`Cluster::execute`]; cross-shard specs are driven by this
    /// coordinator through the same shared TM loop across the union of
    /// participant servers.
    #[must_use]
    pub fn execute(&self, spec: &TransactionSpec, credentials: &[Credential]) -> ExecutionResult {
        match self.route_of(spec) {
            TxnRoute::Single(shard) => {
                self.route.single_submitted.fetch_add(1, Ordering::Relaxed);
                let result = self.shards[shard].execute(spec, credentials);
                if result.is_commit() {
                    self.route.single_commits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.route.single_aborts.fetch_add(1, Ordering::Relaxed);
                }
                self.single_latency_ms
                    .lock()
                    .expect("latency lock")
                    .record(result.elapsed.as_secs_f64() * 1_000.0);
                result
            }
            TxnRoute::Cross(participants) => {
                self.route.cross_submitted.fetch_add(1, Ordering::Relaxed);
                let config = TmConfig::new(
                    self.config.cluster.scheme,
                    self.config.cluster.consistency,
                    self.config.cluster.variant,
                );
                let route = CrossShardRoute {
                    owner: self,
                    participants: &participants,
                };
                let result = drive_tm(
                    &route,
                    config,
                    spec,
                    credentials,
                    self.config.cluster.reply_timeout,
                    self.epoch,
                );
                if result.is_commit() {
                    self.route.cross_commits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.route.cross_aborts.fetch_add(1, Ordering::Relaxed);
                }
                self.cross_latency_ms
                    .lock()
                    .expect("latency lock")
                    .record(result.elapsed.as_secs_f64() * 1_000.0);
                result
            }
        }
    }

    /// Executes one transaction whose coordinator dies at the given
    /// protocol moment — the single-shard TM or the cross-shard
    /// coordinator, whichever the route selects. Returns `None` when the
    /// crash fired (`Some` when the transaction finished first). Route
    /// counters and latency histograms are deliberately not touched: a
    /// dead coordinator reports nothing.
    ///
    /// For a cross-shard victim this is the scenario the replicated
    /// decision logs exist for: every `ForceLog` record was written to
    /// **each** participant shard's log before any send, so each shard's
    /// [`Cluster::resolve_in_doubt`] terminates its own participants
    /// locally — no shard ever wedges on a dead remote coordinator.
    #[must_use]
    pub fn execute_with_coordinator_crash(
        &self,
        spec: &TransactionSpec,
        credentials: &[Credential],
        point: TmCrashPoint,
    ) -> Option<ExecutionResult> {
        match self.route_of(spec) {
            TxnRoute::Single(shard) => {
                self.shards[shard].execute_with_coordinator_crash(spec, credentials, point)
            }
            TxnRoute::Cross(participants) => {
                let config = TmConfig::new(
                    self.config.cluster.scheme,
                    self.config.cluster.consistency,
                    self.config.cluster.variant,
                );
                let route = CrossShardRoute {
                    owner: self,
                    participants: &participants,
                };
                drive_tm_with_crash(
                    &route,
                    config,
                    spec,
                    credentials,
                    self.config.cluster.reply_timeout,
                    self.epoch,
                    Some(point),
                )
            }
        }
    }

    /// Arms the same fault plan on every shard's message fabric. Edge
    /// rules apply within each shard (cross-matching by peer); a crash
    /// rule fires on whichever shard owns the victim server (global ids
    /// are disjoint across shards, so exactly one fabric can match it).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        for shard in &self.shards {
            shard.set_fault_plan(plan.clone());
        }
    }

    /// Disarms every shard's fault fabric.
    pub fn clear_fault_plan(&self) {
        for shard in &self.shards {
            shard.clear_fault_plan();
        }
    }

    /// Publishes a policy version once to the shared catalog and notifies
    /// every replica in every shard.
    pub fn publish_policy(&self, policy: safetx_policy::Policy) {
        let id = policy.id();
        let version = policy.version();
        self.catalog.publish(policy);
        for shard in &self.shards {
            shard.install_everywhere(id, version);
        }
    }

    /// Installs a policy version at every replica of every shard without
    /// publishing a new catalog entry.
    pub fn install_everywhere(&self, policy: PolicyId, version: PolicyVersion) {
        for shard in &self.shards {
            shard.install_everywhere(policy, version);
        }
    }

    /// Applies a configuration closure on the owning shard's server thread
    /// and waits for it.
    pub fn configure_server(
        &self,
        server: ServerId,
        f: impl FnOnce(&mut safetx_core::ServerCore<crate::Addr>) + Send + 'static,
    ) {
        self.shards[self.shard_of(server)].configure_server(server, f);
    }

    /// Kills a server thread (see [`Cluster::crash_server`]).
    pub fn crash_server(&self, server: ServerId) {
        self.shards[self.shard_of(server)].crash_server(server);
    }

    /// Restarts a crashed server (see [`Cluster::restart_server`]).
    pub fn restart_server(&self, server: ServerId) {
        self.shards[self.shard_of(server)].restart_server(server);
    }

    /// Servers currently crashed, across every shard.
    #[must_use]
    pub fn crashed_servers(&self) -> Vec<ServerId> {
        self.shards
            .iter()
            .flat_map(Cluster::crashed_servers)
            .collect()
    }

    /// Resolves in-doubt transactions on every shard's quiesced servers
    /// from that shard's decision log; returns the total resolved.
    pub fn resolve_in_doubt(&self) -> usize {
        self.shards.iter().map(Cluster::resolve_in_doubt).sum()
    }

    /// One shard's coordinator decision log, oldest record first. A
    /// cross-shard transaction's records appear in **every** participant
    /// shard's log.
    #[must_use]
    pub fn decision_log_records(&self, shard: usize) -> Vec<CoordinatorRecord> {
        self.shards[shard].decision_log_records()
    }

    /// Stale replies observed across every shard's drivers and every
    /// cross-shard coordinator.
    #[must_use]
    pub fn dropped_replies(&self) -> u64 {
        self.shards
            .iter()
            .map(Cluster::dropped_replies)
            .sum::<u64>()
            + self.cross_dropped.load(Ordering::Relaxed)
    }

    /// Fault and recovery counters merged over every shard, plus the
    /// cross-shard coordinators' reply-deadline aborts.
    #[must_use]
    pub fn fault_counters(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for shard in &self.shards {
            total.merge(&shard.fault_counters());
        }
        total.timeout_aborts += self.cross_timeout_aborts.load(Ordering::Relaxed);
        total
    }

    /// WAL accounting merged over every server of every shard. Meaningful
    /// on a quiesced deployment, like [`Cluster::wal_stats`].
    #[must_use]
    pub fn wal_stats(&self) -> WalStats {
        let mut total = WalStats::default();
        for shard in &self.shards {
            total.merge(&shard.wal_stats());
        }
        total
    }

    /// Single- vs cross-shard submission/commit/abort counters.
    #[must_use]
    pub fn route_counters(&self) -> RouteCounters {
        self.route.snapshot()
    }

    /// Wall-clock latency split: (single-shard, cross-shard) histograms in
    /// milliseconds, one sample per execution.
    ///
    /// # Panics
    ///
    /// Panics when a latency mutex is poisoned.
    #[must_use]
    pub fn route_latency_ms(&self) -> (Histogram, Histogram) {
        (
            self.single_latency_ms.lock().expect("latency lock").clone(),
            self.cross_latency_ms.lock().expect("latency lock").clone(),
        )
    }

    /// Server threads currently running, across every shard.
    #[must_use]
    pub fn live_servers(&self) -> usize {
        self.shards.iter().map(Cluster::live_servers).sum()
    }

    /// Stops every shard's server threads and waits for them.
    pub fn shutdown(self) {
        for shard in self.shards {
            shard.shutdown();
        }
    }
}

/// The cross-shard coordinator's effect routing: sends go to each server's
/// owning shard; decision records are replicated into every participant
/// shard's log (force-logged *before* participants are told, preserving
/// the recovery invariant per shard).
struct CrossShardRoute<'a> {
    owner: &'a ShardedCluster,
    participants: &'a [usize],
}

impl TmRoute for CrossShardRoute<'_> {
    fn send(&self, from: &crate::Addr, server: ServerId, msg: Msg) {
        self.owner.shards[self.owner.shard_of(server)].send_from(from, server, msg);
    }

    // The shared catalog IS the master for every shard.
    fn master_versions(&self) -> Arc<VersionMap> {
        self.owner.catalog.latest_snapshot().1
    }

    fn force_decision(&self, record: CoordinatorRecord) {
        for &shard in self.participants {
            self.owner.shards[shard].force_decision_record(record.clone());
        }
    }

    fn append_decision(&self, record: CoordinatorRecord) {
        for &shard in self.participants {
            self.owner.shards[shard].append_decision_record(record.clone());
        }
    }

    fn note_dropped(&self, count: u64) {
        self.owner.cross_dropped.fetch_add(count, Ordering::Relaxed);
    }

    fn note_timeout(&self) {
        self.owner
            .cross_timeout_aborts
            .fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_core::{AbortReason, ConsistencyLevel, ProofScheme};
    use safetx_policy::{Atom, Constant, PolicyBuilder};
    use safetx_txn::{CommitVariant, Operation, QuerySpec};
    use safetx_types::{AdminDomain, DataItemId, Timestamp, UserId};

    fn sharded(shards: usize, servers: usize) -> ShardedCluster {
        let cluster = ShardedCluster::new(ShardedConfig {
            shards,
            cluster: ClusterConfig {
                servers,
                scheme: ProofScheme::Deferred,
                consistency: ConsistencyLevel::View,
                variant: CommitVariant::Standard,
                ..ClusterConfig::default()
            },
        });
        let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text(
                "grant(read, records) :- role(U, member).\n\
                 grant(write, records) :- role(U, member).",
            )
            .unwrap()
            .build();
        cluster.publish_policy(policy);
        cluster
    }

    fn credential(cluster: &ShardedCluster) -> Credential {
        cluster.cas().with_mut(|registry| {
            registry.ca_mut(CaId::new(0)).unwrap().issue(
                UserId::new(1),
                Atom::fact(
                    "role",
                    vec![Constant::symbol("u1"), Constant::symbol("member")],
                ),
                Timestamp::ZERO,
                Timestamp::MAX,
            )
        })
    }

    fn write_spec(cluster: &ShardedCluster, servers: &[u64]) -> TransactionSpec {
        TransactionSpec::new(
            cluster.next_txn_id(),
            UserId::new(1),
            servers
                .iter()
                .map(|&s| {
                    QuerySpec::new(
                        ServerId::new(s),
                        "write",
                        "records",
                        vec![Operation::Add(DataItemId::new(s * 100), 1)],
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn routes_by_participant_shards() {
        let cluster = sharded(2, 2);
        assert_eq!(
            cluster.route_of(&write_spec(&cluster, &[0, 1])),
            TxnRoute::Single(0)
        );
        assert_eq!(
            cluster.route_of(&write_spec(&cluster, &[2, 3])),
            TxnRoute::Single(1)
        );
        assert_eq!(
            cluster.route_of(&write_spec(&cluster, &[1, 2])),
            TxnRoute::Cross(vec![0, 1])
        );
        cluster.shutdown();
    }

    #[test]
    fn single_shard_transactions_commit_in_their_shard() {
        let cluster = sharded(2, 2);
        let cred = credential(&cluster);
        let result = cluster.execute(&write_spec(&cluster, &[2, 3]), &[cred]);
        assert!(result.is_commit(), "{:?}", result.outcome);
        let counters = cluster.route_counters();
        assert_eq!(counters.single_shard_commits, 1);
        assert_eq!(counters.cross_shard_submitted, 0);
        // The decision was logged only in the owning shard.
        assert!(cluster.decision_log_records(0).is_empty());
        assert!(!cluster.decision_log_records(1).is_empty());
        cluster.shutdown();
    }

    #[test]
    fn cross_shard_transactions_commit_and_replicate_decisions() {
        let cluster = sharded(2, 2);
        let cred = credential(&cluster);
        let result = cluster.execute(&write_spec(&cluster, &[0, 2]), &[cred]);
        assert!(result.is_commit(), "{:?}", result.outcome);
        let counters = cluster.route_counters();
        assert_eq!(counters.cross_shard_commits, 1);
        assert!(counters.conserves());
        // Both participant shards hold the full decision record set.
        assert!(!cluster.decision_log_records(0).is_empty());
        assert_eq!(
            cluster.decision_log_records(0).len(),
            cluster.decision_log_records(1).len()
        );
        // The writes landed on both shards.
        for server in [0u64, 2] {
            let (tx, rx) = crossbeam::channel::unbounded();
            cluster.configure_server(ServerId::new(server), move |core| {
                let _ = tx.send(core.store().read_int(DataItemId::new(server * 100)));
            });
            assert_eq!(rx.recv().unwrap(), Some(1), "server {server}");
        }
        cluster.shutdown();
    }

    #[test]
    fn cross_shard_denial_aborts_without_credentials() {
        let cluster = sharded(2, 2);
        let result = cluster.execute(&write_spec(&cluster, &[1, 3]), &[]);
        assert_eq!(result.outcome.abort_reason(), Some(AbortReason::ProofFalse));
        let counters = cluster.route_counters();
        assert_eq!(counters.cross_shard_aborts, 1);
        assert!(counters.conserves());
        cluster.shutdown();
    }

    #[test]
    fn latency_split_records_per_route() {
        let cluster = sharded(2, 2);
        let cred = credential(&cluster);
        assert!(cluster
            .execute(&write_spec(&cluster, &[0]), std::slice::from_ref(&cred))
            .is_commit());
        assert!(cluster
            .execute(&write_spec(&cluster, &[0, 3]), &[cred])
            .is_commit());
        let (single, cross) = cluster.route_latency_ms();
        assert_eq!(single.count(), 1);
        assert_eq!(cross.count(), 1);
        cluster.shutdown();
    }
}
