//! Closed- and open-loop load drivers over a [`TxnService`].
//!
//! The closed loop models a fixed population of clients, each submitting
//! its next transaction only after the previous one completes — offered
//! load self-regulates to the service's capacity (Section 6 of the paper
//! measures under this regime). The open loop models Poisson arrivals that
//! do not wait for completions: offered load is external, so when it
//! exceeds capacity the admission queue fills and the service sheds with
//! [`AdmissionError::Overloaded`](crate::AdmissionError::Overloaded).

use crate::service::{Completion, TxnService};
use crate::AdmissionError;
use safetx_policy::Credential;
use safetx_txn::TransactionSpec;
use std::sync::Mutex;
use std::time::Instant;

/// What a driver run produced.
#[derive(Debug)]
pub struct DriverReport {
    /// Wall-clock time from first submission to last completion.
    pub wall: std::time::Duration,
    /// Per-transaction completions, in no particular order.
    pub completions: Vec<Completion>,
    /// Transactions this driver offered (admitted + rejected).
    pub offered: u64,
    /// Admission rejections this driver observed (open loop only).
    pub rejected: u64,
}

impl DriverReport {
    /// Completions that committed.
    #[must_use]
    pub fn commits(&self) -> usize {
        self.completions
            .iter()
            .filter(|c| c.outcome.is_commit())
            .count()
    }
}

/// Runs `clients` concurrent closed-loop clients, each submitting
/// `per_client` transactions back to back. `make(client, index)` builds
/// each submission. Uses blocking submission, so a full queue exerts
/// backpressure instead of shedding.
///
/// # Panics
///
/// Panics when the completions mutex is poisoned (a client panicked).
pub fn run_closed_loop<F>(
    service: &TxnService,
    clients: usize,
    per_client: usize,
    make: F,
) -> DriverReport
where
    F: Fn(usize, usize) -> (TransactionSpec, Vec<Credential>) + Sync,
{
    let started = Instant::now();
    let completions = Mutex::new(Vec::with_capacity(clients * per_client));
    std::thread::scope(|scope| {
        for client in 0..clients {
            let make = &make;
            let completions = &completions;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(per_client);
                for index in 0..per_client {
                    let (spec, credentials) = make(client, index);
                    match service.submit_blocking(spec, credentials) {
                        Ok(handle) => local.push(handle.wait()),
                        Err(AdmissionError::Closed) => break,
                        Err(AdmissionError::Overloaded) => {
                            unreachable!("blocking submission never sheds")
                        }
                    }
                }
                completions.lock().expect("client panicked").extend(local);
            });
        }
    });
    let completions = completions.into_inner().expect("client panicked");
    DriverReport {
        wall: started.elapsed(),
        offered: completions.len() as u64,
        rejected: 0,
        completions,
    }
}

/// Runs an open-loop driver: submits at the offsets yielded by `arrivals`
/// (e.g. `safetx_workload::PoissonArrivals`) without waiting for
/// completions, using non-blocking submission so overload is shed rather
/// than queued unboundedly. Consumes at most `count` arrivals, then waits
/// for every admitted transaction to complete.
///
/// # Panics
///
/// Panics when the service shuts down mid-run.
pub fn run_open_loop<A, F>(
    service: &TxnService,
    arrivals: A,
    count: usize,
    mut make: F,
) -> DriverReport
where
    A: Iterator<Item = safetx_types::Duration>,
    F: FnMut(usize) -> (TransactionSpec, Vec<Credential>),
{
    let started = Instant::now();
    let mut handles = Vec::new();
    let mut offered = 0u64;
    let mut rejected = 0u64;
    for (index, at) in arrivals.take(count).enumerate() {
        let target = std::time::Duration::from_micros(at.as_micros());
        if let Some(sleep) = target.checked_sub(started.elapsed()) {
            std::thread::sleep(sleep);
        }
        let (spec, credentials) = make(index);
        offered += 1;
        match service.try_submit(spec, credentials) {
            Ok(handle) => handles.push(handle),
            Err(AdmissionError::Overloaded) => rejected += 1,
            Err(AdmissionError::Closed) => panic!("service closed during open-loop run"),
        }
    }
    let completions: Vec<Completion> = handles.into_iter().map(|h| h.wait()).collect();
    DriverReport {
        wall: started.elapsed(),
        completions,
        offered,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceConfig, TxnService};
    use crate::testutil::{member_credential, seeded_cluster, spread_spec};
    use safetx_core::{ConsistencyLevel, ProofScheme};
    use safetx_workload::PoissonArrivals;

    fn service() -> TxnService {
        let cluster = seeded_cluster(3, ProofScheme::Deferred, ConsistencyLevel::View);
        TxnService::new(
            cluster,
            ServiceConfig {
                workers: 4,
                queue_depth: 32,
                ..Default::default()
            },
        )
    }

    #[test]
    fn closed_loop_completes_every_submission() {
        let service = service();
        let cred = member_credential(service.cluster());
        let report = run_closed_loop(&service, 4, 5, |client, index| {
            (
                spread_spec(service.cluster(), (client * 5 + index) as u64),
                vec![cred.clone()],
            )
        });
        assert_eq!(report.offered, 20);
        assert_eq!(report.completions.len(), 20);
        assert_eq!(report.commits(), 20);
        assert_eq!(report.rejected, 0);
        let stats = service.shutdown();
        assert_eq!(stats.commits, 20);
        assert!(stats.conserves(), "{stats:?}");
    }

    #[test]
    fn open_loop_accounts_for_every_arrival() {
        let service = service();
        let cred = member_credential(service.cluster());
        let arrivals = PoissonArrivals::new(safetx_types::Duration::from_micros(500), 17);
        let report = run_open_loop(&service, arrivals, 30, |index| {
            (
                spread_spec(service.cluster(), index as u64),
                vec![cred.clone()],
            )
        });
        assert_eq!(report.offered, 30);
        assert_eq!(
            report.completions.len() as u64 + report.rejected,
            report.offered,
            "every arrival is admitted or shed"
        );
        assert!(report.commits() > 0);
        let stats = service.shutdown();
        assert_eq!(stats.overload_rejections, report.rejected);
        assert!(stats.conserves(), "{stats:?}");
    }
}
