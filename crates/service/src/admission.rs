//! Bounded submission queue with admission control.
//!
//! The queue is the service's backpressure point: past a configurable
//! depth, non-blocking submissions are rejected with
//! [`AdmissionError::Overloaded`] instead of growing an unbounded backlog
//! (load shedding for open-loop traffic), while blocking submissions wait
//! for space (backpressure for closed-loop clients). Closing the queue
//! wakes every waiter; consumers drain whatever was already admitted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue is at its configured depth (load shed).
    Overloaded,
    /// The service is shutting down; no new work is accepted.
    Closed,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Overloaded => write!(f, "admission queue full"),
            AdmissionError::Closed => write!(f, "service closed"),
        }
    }
}

impl std::error::Error for AdmissionError {}

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue guarded by a mutex and two condvars.
pub struct AdmissionQueue<T> {
    depth: usize,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue admitting at most `depth` waiting items.
    ///
    /// # Panics
    ///
    /// Panics when `depth` is zero.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be at least 1");
        AdmissionQueue {
            depth,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The configured depth bound.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Items currently waiting (not yet claimed by a worker).
    ///
    /// # Panics
    ///
    /// Panics when the queue mutex is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").queue.len()
    }

    /// True when nothing is waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: rejects with [`AdmissionError::Overloaded`]
    /// when the queue is at depth, returning the item to the caller.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Overloaded`] at depth; [`AdmissionError::Closed`]
    /// after [`AdmissionQueue::close`].
    ///
    /// # Panics
    ///
    /// Panics when the queue mutex is poisoned.
    pub fn try_push(&self, item: T) -> Result<(), (AdmissionError, T)> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err((AdmissionError::Closed, item));
        }
        if inner.queue.len() >= self.depth {
            return Err((AdmissionError::Overloaded, item));
        }
        inner.queue.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking admission: waits for space instead of shedding
    /// (closed-loop backpressure).
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Closed`] when the queue closes before space opens.
    ///
    /// # Panics
    ///
    /// Panics when the queue mutex is poisoned.
    pub fn push_wait(&self, item: T) -> Result<(), (AdmissionError, T)> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return Err((AdmissionError::Closed, item));
            }
            if inner.queue.len() < self.depth {
                inner.queue.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue lock");
        }
    }

    /// Blocking removal. Returns `None` only when the queue is closed
    /// *and* drained — already-admitted work is always delivered.
    ///
    /// # Panics
    ///
    /// Panics when the queue mutex is poisoned.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.queue.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes fail, waiters wake, consumers drain
    /// the remainder and then observe `None`.
    ///
    /// # Panics
    ///
    /// Panics when the queue mutex is poisoned.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True once [`AdmissionQueue::close`] has been called.
    ///
    /// # Panics
    ///
    /// Panics when the queue mutex is poisoned.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_with_overloaded_past_depth() {
        let q = AdmissionQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let (err, item) = q.try_push(3).unwrap_err();
        assert_eq!(err, AdmissionError::Overloaded);
        assert_eq!(item, 3, "rejected item is returned");
        assert_eq!(q.len(), 2);
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_fails_pushes_but_drains_admitted_work() {
        let q = AdmissionQueue::new(4);
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert!(matches!(q.try_push(12), Err((AdmissionError::Closed, 12))));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn push_wait_blocks_until_space_then_succeeds() {
        let q = Arc::new(AdmissionQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = q.clone();
        let waiter = std::thread::spawn(move || q2.push_wait(2).is_ok());
        // Give the waiter time to block, then free a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert!(waiter.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn push_wait_wakes_with_closed_on_shutdown() {
        let q = Arc::new(AdmissionQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = q.clone();
        let waiter = std::thread::spawn(move || q2.push_wait(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(matches!(
            waiter.join().unwrap(),
            Err((AdmissionError::Closed, 2))
        ));
    }

    #[test]
    fn pop_blocks_until_item_arrives() {
        let q = Arc::new(AdmissionQueue::new(4));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_rejected() {
        let _ = AdmissionQueue::<u8>::new(0);
    }
}
