//! Shared fixtures for the service crate's tests: a seeded cluster with a
//! published member policy, credentials, and spec builders.

use safetx_core::{ConsistencyLevel, ProofScheme};
use safetx_policy::{Atom, Constant, Credential, PolicyBuilder};
use safetx_runtime::{Cluster, ClusterConfig};
use safetx_store::Value;
use safetx_txn::{Operation, QuerySpec, TransactionSpec};
use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, UserId};
use std::sync::Arc;

/// Items seeded per server (ids `server * 100 + 0..ITEMS_PER_SERVER`).
pub const ITEMS_PER_SERVER: u64 = 32;

/// A running cluster with a member policy published and data seeded.
pub fn seeded_cluster(
    servers: usize,
    scheme: ProofScheme,
    consistency: ConsistencyLevel,
) -> Arc<Cluster> {
    let cluster = Cluster::new(ClusterConfig {
        servers,
        scheme,
        consistency,
        ..Default::default()
    });
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .unwrap()
        .build();
    cluster.publish_policy(policy);
    for s in 0..servers as u64 {
        cluster.configure_server(ServerId::new(s), move |core| {
            for j in 0..ITEMS_PER_SERVER {
                core.store_mut().write(
                    DataItemId::new(s * 100 + j),
                    Value::Int(10),
                    Timestamp::ZERO,
                );
            }
        });
    }
    Arc::new(cluster)
}

/// A credential asserting the member role for user 1.
pub fn member_credential(cluster: &Cluster) -> Credential {
    cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).unwrap().issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    })
}

/// A multi-server transaction whose keys are spread by `i` so distinct
/// values of `i` never lock-conflict.
pub fn spread_spec(cluster: &Cluster, i: u64) -> TransactionSpec {
    let servers = cluster.config().servers as u64;
    let slot = i % ITEMS_PER_SERVER;
    let queries = (0..servers)
        .map(|s| {
            QuerySpec::new(
                ServerId::new(s),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(s * 100 + slot), 1)],
            )
        })
        .collect();
    TransactionSpec::new(cluster.next_txn_id(), UserId::new(1), queries)
}

/// A transaction that hammers one hot key on every server — guaranteed
/// lock contention between concurrent callers.
pub fn hot_key_spec(cluster: &Cluster) -> TransactionSpec {
    let servers = cluster.config().servers as u64;
    let queries = (0..servers)
        .map(|s| {
            QuerySpec::new(
                ServerId::new(s),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(s * 100), 1)],
            )
        })
        .collect();
    TransactionSpec::new(cluster.next_txn_id(), UserId::new(1), queries)
}

/// A write that will be policy-denied when submitted without credentials.
pub fn denied_spec(cluster: &Cluster) -> TransactionSpec {
    TransactionSpec::new(
        cluster.next_txn_id(),
        UserId::new(1),
        vec![QuerySpec::new(
            ServerId::new(0),
            "write",
            "records",
            vec![Operation::Add(DataItemId::new(0), 1)],
        )],
    )
}
