//! Abort classification and capped exponential backoff with jitter.
//!
//! Retrying is only sound for aborts caused by *transient* conditions —
//! lock conflicts with concurrent transactions and policy-version races
//! that a fresh attempt sees resolved. A proof of authorization that
//! evaluated FALSE under consistent policies is a *decision*, not an
//! accident: resubmitting a policy-denied transaction can never succeed
//! until an administrator changes the policy, so the service surfaces it
//! as terminal immediately.

use safetx_core::AbortReason;
use std::time::Duration;

/// Whether an abort is worth another attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Transient: caused by concurrency (lock conflict, stale version,
    /// timeout); a fresh attempt may commit.
    Retryable,
    /// Transient too, but expensive: a participant sat out the TM's reply
    /// deadline, so every attempt burns the full timeout. Retried on its
    /// own tightly capped budget ([`RetryPolicy::unavailable_max_retries`])
    /// so a dead server sheds load instead of multiplying it.
    Unavailable,
    /// Definitive: the system rejected the transaction on its merits
    /// (policy denial, integrity violation, unrecovered failure).
    Terminal,
}

/// Classifies an abort reason.
#[must_use]
pub fn classify(reason: AbortReason) -> Disposition {
    match reason {
        AbortReason::LockConflict
        | AbortReason::ValidationConflict
        | AbortReason::VersionInconsistency
        | AbortReason::Timeout => Disposition::Retryable,
        AbortReason::ServerUnavailable => Disposition::Unavailable,
        AbortReason::ProofFalse | AbortReason::IntegrityViolation | AbortReason::Failure => {
            Disposition::Terminal
        }
    }
}

/// Capped exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum *re*-submissions after the first attempt (0 = never retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
    /// Jitter width as a percentage (clamped to 100): each backoff is
    /// scaled by a deterministic factor in `[1 - j/200, 1 + j/200]` so
    /// retries from concurrently aborted transactions spread out instead
    /// of colliding again in lockstep.
    pub jitter_percent: u32,
    /// Separate, much smaller budget for [`Disposition::Unavailable`]
    /// aborts. Each such attempt already waited out the TM's full reply
    /// deadline, so the exponential lock-conflict budget would turn one
    /// dead server into minutes of blocked workers.
    pub unavailable_max_retries: u32,
    /// Flat (still jittered) backoff between unavailable retries — long
    /// enough for a crashed server to be restarted, short enough to keep
    /// the worker responsive.
    pub unavailable_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 24,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            jitter_percent: 50,
            unavailable_max_retries: 4,
            unavailable_backoff: Duration::from_millis(1),
        }
    }
}

/// SplitMix64: a tiny, high-quality 64-bit mixer for deterministic jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// A policy that never retries.
    #[must_use]
    pub fn never() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..Default::default()
        }
    }

    /// The sleep before retry number `retry` (0-based), jittered
    /// deterministically by `seed` — same `(policy, retry, seed)` always
    /// produces the same backoff.
    #[must_use]
    pub fn backoff(&self, retry: u32, seed: u64) -> Duration {
        let exp = retry.min(31);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp.min(20))
            .min(self.max_backoff);
        self.jittered(raw, retry, seed)
    }

    /// The sleep before *unavailable* retry number `retry` (0-based): flat
    /// [`RetryPolicy::unavailable_backoff`], jittered the same way.
    #[must_use]
    pub fn unavailable_backoff_for(&self, retry: u32, seed: u64) -> Duration {
        self.jittered(self.unavailable_backoff, retry, seed ^ 0xDEAD_BEEF)
    }

    fn jittered(&self, raw: Duration, retry: u32, seed: u64) -> Duration {
        let jitter = u64::from(self.jitter_percent.min(100));
        if jitter == 0 {
            return raw;
        }
        // Deterministic factor in [100 - j/2, 100 + j/2] percent.
        let roll = splitmix64(seed ^ (u64::from(retry) << 32)) % (jitter + 1);
        let percent = 100 - jitter / 2 + roll;
        Duration::from_nanos((raw.as_nanos() as u64).saturating_mul(percent) / 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_reasons_retry_and_decisions_do_not() {
        assert_eq!(classify(AbortReason::LockConflict), Disposition::Retryable);
        assert_eq!(
            classify(AbortReason::ValidationConflict),
            Disposition::Retryable
        );
        assert_eq!(
            classify(AbortReason::VersionInconsistency),
            Disposition::Retryable
        );
        assert_eq!(classify(AbortReason::Timeout), Disposition::Retryable);
        assert_eq!(
            classify(AbortReason::ServerUnavailable),
            Disposition::Unavailable
        );
        assert_eq!(classify(AbortReason::ProofFalse), Disposition::Terminal);
        assert_eq!(
            classify(AbortReason::IntegrityViolation),
            Disposition::Terminal
        );
        assert_eq!(classify(AbortReason::Failure), Disposition::Terminal);
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
            jitter_percent: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff(0, 1), Duration::from_micros(100));
        assert_eq!(policy.backoff(1, 1), Duration::from_micros(200));
        assert_eq!(policy.backoff(2, 1), Duration::from_micros(400));
        assert_eq!(policy.backoff(3, 1), Duration::from_micros(800));
        assert_eq!(policy.backoff(4, 1), Duration::from_millis(1), "capped");
        assert_eq!(policy.backoff(30, 1), Duration::from_millis(1), "capped");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            jitter_percent: 50,
            base_backoff: Duration::from_micros(1_000),
            max_backoff: Duration::from_micros(1_000),
            max_retries: 1,
            ..RetryPolicy::default()
        };
        let a = policy.backoff(0, 42);
        let b = policy.backoff(0, 42);
        assert_eq!(a, b, "same seed, same jitter");
        let lo = Duration::from_micros(750);
        let hi = Duration::from_micros(1_250);
        for seed in 0..256 {
            let d = policy.backoff(0, seed);
            assert!(
                (lo..=hi).contains(&d),
                "jittered backoff {d:?} outside [{lo:?}, {hi:?}]"
            );
        }
        // Different seeds actually spread.
        assert!((0..256).map(|s| policy.backoff(0, s)).any(|d| d != a));
    }

    #[test]
    fn never_policy_has_zero_retries() {
        assert_eq!(RetryPolicy::never().max_retries, 0);
    }
}
