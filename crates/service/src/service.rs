//! The transaction service: a pool of TM worker threads over a shared
//! [`Cluster`], fed by the admission queue.

use crate::admission::{AdmissionError, AdmissionQueue};
use crate::report::ServiceStats;
use crate::retry::{classify, Disposition, RetryPolicy};
use crossbeam::channel::{unbounded, Receiver, Sender};
use safetx_core::{AbortReason, SharedCas, SharedCatalog, TransactionView, TxnOutcome};
use safetx_metrics::{FaultCounters, RouteCounters, TransportCounters, WalStats};
use safetx_net::NetCluster;
use safetx_policy::Credential;
use safetx_runtime::{Cluster, ClusterConfig, ExecutionResult, ShardedCluster};
use safetx_txn::TransactionSpec;
use safetx_types::TxnId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The execution backend a service drives: the same protocol state
/// machines deployed either over in-process channels or over real byte
/// streams. Every method delegates to the matching cluster; the service
/// layer above is identical for both.
#[derive(Clone)]
pub enum RuntimeKind {
    /// The threaded runtime: messages move as in-memory objects over
    /// crossbeam channels.
    Threaded(Arc<Cluster>),
    /// The wire-protocol runtime: messages are encoded into
    /// length-prefixed frames and cross `UnixStream`s.
    Net(Arc<NetCluster>),
    /// The partitioned runtime: the key space is split across shards,
    /// each its own threaded server set; transactions are routed by
    /// participant footprint.
    Sharded(Arc<ShardedCluster>),
}

impl RuntimeKind {
    /// Executes one transaction synchronously on the backend.
    #[must_use]
    pub fn execute(&self, spec: &TransactionSpec, credentials: &[Credential]) -> ExecutionResult {
        match self {
            RuntimeKind::Threaded(c) => c.execute(spec, credentials),
            RuntimeKind::Net(c) => c.execute(spec, credentials),
            RuntimeKind::Sharded(c) => c.execute(spec, credentials),
        }
    }

    /// A fresh transaction id.
    #[must_use]
    pub fn next_txn_id(&self) -> TxnId {
        match self {
            RuntimeKind::Threaded(c) => c.next_txn_id(),
            RuntimeKind::Net(c) => c.next_txn_id(),
            RuntimeKind::Sharded(c) => c.next_txn_id(),
        }
    }

    /// The backend's cluster configuration (for the sharded backend: the
    /// per-shard template every shard was built from).
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        match self {
            RuntimeKind::Threaded(c) => c.config(),
            RuntimeKind::Net(c) => c.config(),
            RuntimeKind::Sharded(c) => c.config(),
        }
    }

    /// The shared policy catalog.
    #[must_use]
    pub fn catalog(&self) -> &SharedCatalog {
        match self {
            RuntimeKind::Threaded(c) => c.catalog(),
            RuntimeKind::Net(c) => c.catalog(),
            RuntimeKind::Sharded(c) => c.catalog(),
        }
    }

    /// The shared certificate authorities.
    #[must_use]
    pub fn cas(&self) -> &SharedCas {
        match self {
            RuntimeKind::Threaded(c) => c.cas(),
            RuntimeKind::Net(c) => c.cas(),
            RuntimeKind::Sharded(c) => c.cas(),
        }
    }

    /// Publishes a policy version and notifies every replica.
    pub fn publish_policy(&self, policy: safetx_policy::Policy) {
        match self {
            RuntimeKind::Threaded(c) => c.publish_policy(policy),
            RuntimeKind::Net(c) => c.publish_policy(policy),
            RuntimeKind::Sharded(c) => c.publish_policy(policy),
        }
    }

    /// Stale replies observed across every execution.
    #[must_use]
    pub fn dropped_replies(&self) -> u64 {
        match self {
            RuntimeKind::Threaded(c) => c.dropped_replies(),
            RuntimeKind::Net(c) => c.dropped_replies(),
            RuntimeKind::Sharded(c) => c.dropped_replies(),
        }
    }

    /// Failure counters from the backend's fabric.
    #[must_use]
    pub fn fault_counters(&self) -> FaultCounters {
        match self {
            RuntimeKind::Threaded(c) => c.fault_counters(),
            RuntimeKind::Net(c) => c.fault_counters(),
            RuntimeKind::Sharded(c) => c.fault_counters(),
        }
    }

    /// Aggregated WAL accounting across the backend's servers.
    #[must_use]
    pub fn wal_stats(&self) -> WalStats {
        match self {
            RuntimeKind::Threaded(c) => c.wal_stats(),
            RuntimeKind::Net(c) => c.wal_stats(),
            RuntimeKind::Sharded(c) => c.wal_stats(),
        }
    }

    /// Transport counters summed over every edge (all zero on the
    /// threaded and sharded backends — no bytes cross a wire there).
    #[must_use]
    pub fn transport_counters(&self) -> TransportCounters {
        match self {
            RuntimeKind::Threaded(_) | RuntimeKind::Sharded(_) => TransportCounters::default(),
            RuntimeKind::Net(c) => c.transport_counters(),
        }
    }

    /// Single- vs cross-shard routing counters (all zero on unsharded
    /// backends — every transaction is trivially single-"shard" there).
    #[must_use]
    pub fn route_counters(&self) -> RouteCounters {
        match self {
            RuntimeKind::Threaded(_) | RuntimeKind::Net(_) => RouteCounters::default(),
            RuntimeKind::Sharded(c) => c.route_counters(),
        }
    }
}

/// Serving-layer configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// TM worker threads executing transactions concurrently.
    pub workers: usize,
    /// Admission-queue depth; submissions past it are shed.
    pub queue_depth: usize,
    /// Retry behaviour on transient aborts.
    pub retry: RetryPolicy,
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_depth: 64,
            retry: RetryPolicy::default(),
            seed: 0,
        }
    }
}

/// How a served transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceOutcome {
    /// Committed (possibly after retries).
    Committed,
    /// Aborted for a terminal reason (policy denial, integrity violation);
    /// never resubmitted.
    TerminalAbort(AbortReason),
    /// Every retry hit a transient abort and the budget ran out.
    RetriesExhausted(AbortReason),
}

impl ServiceOutcome {
    /// True for commits.
    #[must_use]
    pub fn is_commit(&self) -> bool {
        matches!(self, ServiceOutcome::Committed)
    }
}

/// What a client gets back for one served transaction.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Final disposition.
    pub outcome: ServiceOutcome,
    /// Executions performed (1 = no retries).
    pub attempts: u32,
    /// Time spent in the admission queue before the first attempt.
    pub queue_wait: Duration,
    /// End-to-end latency: admission to final outcome, retries included.
    pub latency: Duration,
    /// The last attempt's recorded proof view, for post-hoc safety audits
    /// (Definition 4 via `safetx_core::trusted::is_trusted`).
    pub view: TransactionView,
}

/// A claim ticket for an in-flight submission.
#[derive(Debug)]
pub struct CompletionHandle {
    rx: Receiver<Completion>,
}

impl CompletionHandle {
    /// Blocks until the transaction completes.
    ///
    /// # Panics
    ///
    /// Panics when the service's workers died without delivering (worker
    /// panic — a bug, not an expected condition: shutdown drains the
    /// queue before workers exit).
    #[must_use]
    pub fn wait(self) -> Completion {
        self.rx.recv().expect("service delivers every admitted job")
    }
}

struct Job {
    seq: u64,
    spec: TransactionSpec,
    credentials: Vec<Credential>,
    accepted_at: Instant,
    done: Sender<Completion>,
}

/// A running transaction service over a shared [`Cluster`].
///
/// Dropping the service closes the queue, drains admitted work and joins
/// every worker ([`TxnService::shutdown`] does the same and returns the
/// final statistics).
pub struct TxnService {
    runtime: RuntimeKind,
    queue: Arc<AdmissionQueue<Job>>,
    stats: Arc<Mutex<ServiceStats>>,
    workers: Vec<JoinHandle<()>>,
    seq: AtomicU64,
}

impl TxnService {
    /// Spawns the worker pool over the threaded runtime (shorthand for
    /// [`TxnService::with_runtime`] with [`RuntimeKind::Threaded`]).
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` is zero.
    #[must_use]
    pub fn new(cluster: Arc<Cluster>, config: ServiceConfig) -> Self {
        Self::with_runtime(RuntimeKind::Threaded(cluster), config)
    }

    /// Spawns the worker pool over an explicit execution backend.
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` is zero.
    #[must_use]
    pub fn with_runtime(runtime: RuntimeKind, config: ServiceConfig) -> Self {
        assert!(config.workers > 0, "at least one worker required");
        let queue = Arc::new(AdmissionQueue::new(config.queue_depth));
        let stats = Arc::new(Mutex::new(ServiceStats::default()));
        let workers = (0..config.workers)
            .map(|_| {
                let runtime = runtime.clone();
                let queue = queue.clone();
                let stats = stats.clone();
                let retry = config.retry;
                let seed = config.seed;
                std::thread::spawn(move || worker_loop(&runtime, &queue, &stats, retry, seed))
            })
            .collect();
        TxnService {
            runtime,
            queue,
            stats,
            workers,
            seq: AtomicU64::new(0),
        }
    }

    /// The execution backend this service drives.
    #[must_use]
    pub fn runtime(&self) -> &RuntimeKind {
        &self.runtime
    }

    /// The threaded cluster this service drives.
    ///
    /// # Panics
    ///
    /// Panics on a net-backed service — match on [`TxnService::runtime`]
    /// instead when the backend can be either kind.
    #[must_use]
    pub fn cluster(&self) -> &Arc<Cluster> {
        match &self.runtime {
            RuntimeKind::Threaded(cluster) => cluster,
            RuntimeKind::Net(_) | RuntimeKind::Sharded(_) => {
                panic!("cluster() is threaded-only; use runtime() for other backends")
            }
        }
    }

    /// Items currently waiting in the admission queue.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Non-blocking submission (open-loop admission control): sheds with
    /// [`AdmissionError::Overloaded`] when the queue is at depth.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Overloaded`] on a full queue (counted);
    /// [`AdmissionError::Closed`] after shutdown began (not counted —
    /// the service is no longer offering).
    pub fn try_submit(
        &self,
        spec: TransactionSpec,
        credentials: Vec<Credential>,
    ) -> Result<CompletionHandle, AdmissionError> {
        let (job, handle) = self.make_job(spec, credentials);
        match self.queue.try_push(job) {
            Ok(()) => {
                let mut stats = self.stats.lock().expect("stats lock");
                stats.submissions += 1;
                stats.accepted += 1;
                Ok(handle)
            }
            Err((AdmissionError::Overloaded, _)) => {
                let mut stats = self.stats.lock().expect("stats lock");
                stats.submissions += 1;
                stats.overload_rejections += 1;
                Err(AdmissionError::Overloaded)
            }
            Err((err, _)) => Err(err),
        }
    }

    /// Blocking submission (closed-loop backpressure): waits for queue
    /// space instead of shedding.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Closed`] when the service shuts down first.
    pub fn submit_blocking(
        &self,
        spec: TransactionSpec,
        credentials: Vec<Credential>,
    ) -> Result<CompletionHandle, AdmissionError> {
        let (job, handle) = self.make_job(spec, credentials);
        match self.queue.push_wait(job) {
            Ok(()) => {
                let mut stats = self.stats.lock().expect("stats lock");
                stats.submissions += 1;
                stats.accepted += 1;
                Ok(handle)
            }
            Err((err, _)) => Err(err),
        }
    }

    fn make_job(
        &self,
        spec: TransactionSpec,
        credentials: Vec<Credential>,
    ) -> (Job, CompletionHandle) {
        let (done, rx) = unbounded();
        let job = Job {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            spec,
            credentials,
            accepted_at: Instant::now(),
            done,
        };
        (job, CompletionHandle { rx })
    }

    /// A snapshot of the statistics so far.
    ///
    /// # Panics
    ///
    /// Panics when the stats mutex is poisoned.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.stats.lock().expect("stats lock").clone();
        stats.dropped_replies = self.runtime.dropped_replies();
        stats.faults = self.runtime.fault_counters();
        stats.wal = self.runtime.wal_stats();
        stats.transport = self.runtime.transport_counters();
        stats.route = self.runtime.route_counters();
        stats
    }

    /// Stops admissions, drains already-admitted work, joins the workers
    /// and returns the final statistics.
    #[must_use]
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for TxnService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(
    runtime: &RuntimeKind,
    queue: &AdmissionQueue<Job>,
    stats: &Mutex<ServiceStats>,
    retry: RetryPolicy,
    seed: u64,
) {
    while let Some(job) = queue.pop() {
        let queue_wait = job.accepted_at.elapsed();
        let mut attempts: u32 = 0;
        // Transient aborts draw on two separate budgets: concurrency aborts
        // on the exponential one, unavailability aborts (each of which
        // already cost a full reply deadline) on a tightly capped one.
        let mut transient_retries: u32 = 0;
        let mut unavailable_retries: u32 = 0;
        let (outcome, result) = loop {
            attempts += 1;
            // Each attempt is a fresh transaction at the protocol layer:
            // servers key lock tables and WAL records by TxnId, so a retry
            // must never reuse the id of its aborted predecessor.
            let mut spec = job.spec.clone();
            spec.id = runtime.next_txn_id();
            let result = runtime.execute(&spec, &job.credentials);
            match result.outcome {
                TxnOutcome::Committed { .. } => break (ServiceOutcome::Committed, result),
                TxnOutcome::Aborted { reason, .. } => match classify(reason) {
                    Disposition::Terminal => {
                        break (ServiceOutcome::TerminalAbort(reason), result);
                    }
                    Disposition::Retryable => {
                        if transient_retries >= retry.max_retries {
                            break (ServiceOutcome::RetriesExhausted(reason), result);
                        }
                        transient_retries += 1;
                        {
                            let mut stats = stats.lock().expect("stats lock");
                            stats.retry_attempts += 1;
                            stats.record_retry_reason(reason);
                        }
                        std::thread::sleep(retry.backoff(transient_retries - 1, seed ^ job.seq));
                    }
                    Disposition::Unavailable => {
                        if unavailable_retries >= retry.unavailable_max_retries {
                            break (ServiceOutcome::RetriesExhausted(reason), result);
                        }
                        unavailable_retries += 1;
                        {
                            let mut stats = stats.lock().expect("stats lock");
                            stats.retry_attempts += 1;
                            stats.unavailable_retries += 1;
                        }
                        std::thread::sleep(
                            retry.unavailable_backoff_for(unavailable_retries - 1, seed ^ job.seq),
                        );
                    }
                },
            }
        };
        let latency = job.accepted_at.elapsed();
        {
            let mut stats = stats.lock().expect("stats lock");
            let ms = latency.as_secs_f64() * 1_000.0;
            stats
                .queue_wait_ms
                .record(queue_wait.as_secs_f64() * 1_000.0);
            match outcome {
                ServiceOutcome::Committed => {
                    stats.commits += 1;
                    stats.commit_latency_ms.record(ms);
                }
                ServiceOutcome::TerminalAbort(_) => {
                    stats.terminal_aborts += 1;
                    stats.failure_latency_ms.record(ms);
                }
                ServiceOutcome::RetriesExhausted(_) => {
                    stats.retries_exhausted += 1;
                    stats.failure_latency_ms.record(ms);
                }
            }
        }
        // A dropped handle just means the caller stopped caring.
        let _ = job.done.send(Completion {
            outcome,
            attempts,
            queue_wait,
            latency,
            view: result.view,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{denied_spec, member_credential, seeded_cluster, spread_spec};
    use safetx_core::{ConsistencyLevel, ProofScheme};

    fn service(workers: usize, depth: usize) -> TxnService {
        let cluster = seeded_cluster(3, ProofScheme::Deferred, ConsistencyLevel::View);
        TxnService::new(
            cluster,
            ServiceConfig {
                workers,
                queue_depth: depth,
                retry: RetryPolicy {
                    base_backoff: Duration::from_micros(200),
                    ..Default::default()
                },
                seed: 7,
            },
        )
    }

    #[test]
    fn commits_authorized_transactions_and_conserves() {
        let service = service(2, 16);
        let cred = member_credential(service.cluster());
        let handles: Vec<_> = (0..10)
            .map(|i| {
                service
                    .try_submit(spread_spec(service.cluster(), i), vec![cred.clone()])
                    .expect("queue has room")
            })
            .collect();
        for handle in handles {
            let done = handle.wait();
            assert!(done.outcome.is_commit(), "{:?}", done.outcome);
            assert!(done.attempts >= 1);
        }
        let stats = service.shutdown();
        assert_eq!(stats.commits, 10);
        assert_eq!(stats.accepted, 10);
        assert!(stats.conserves(), "{stats:?}");
        assert_eq!(stats.commit_latency_ms.count(), 10);
    }

    #[test]
    fn policy_denied_is_terminal_and_never_retried() {
        let service = service(2, 16);
        // No credentials: the proof evaluates FALSE — a decision, not a race.
        let done = service
            .try_submit(denied_spec(service.cluster()), vec![])
            .expect("queue has room")
            .wait();
        assert_eq!(
            done.outcome,
            ServiceOutcome::TerminalAbort(AbortReason::ProofFalse)
        );
        assert_eq!(done.attempts, 1, "terminal aborts must not be resubmitted");
        let stats = service.shutdown();
        assert_eq!(stats.terminal_aborts, 1);
        assert_eq!(stats.retry_attempts, 0);
        assert!(stats.conserves());
    }

    #[test]
    fn overload_sheds_deterministically_when_workers_are_stalled() {
        let service = service(1, 2);
        let cred = member_credential(service.cluster());
        // Deterministically stall server 0's thread: configuration
        // closures run on the server thread, so this recv blocks it (and
        // any transaction touching it) until the gate opens.
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let cluster = service.cluster().clone();
        let stall = std::thread::spawn(move || {
            cluster.configure_server(safetx_types::ServerId::new(0), move |_core| {
                let _ = gate_rx.recv();
            });
        });
        // Give the configure message time to reach the server thread.
        std::thread::sleep(Duration::from_millis(30));

        // The single worker grabs one job and blocks on server 0; two more
        // fill the queue; everything past that is shed.
        let mut handles = Vec::new();
        let mut rejected = 0;
        for i in 0..8 {
            match service.try_submit(spread_spec(service.cluster(), i), vec![cred.clone()]) {
                Ok(h) => handles.push(h),
                Err(AdmissionError::Overloaded) => rejected += 1,
                Err(AdmissionError::Closed) => unreachable!("service is open"),
            }
        }
        assert!(rejected >= 5, "expected ≥5 rejections, got {rejected}");
        gate_tx.send(()).unwrap();
        stall.join().unwrap();
        for handle in handles {
            assert!(handle.wait().outcome.is_commit());
        }
        let stats = service.shutdown();
        assert_eq!(stats.overload_rejections, rejected);
        assert!(stats.conserves(), "{stats:?}");
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let service = service(1, 16);
        let cred = member_credential(service.cluster());
        let handles: Vec<_> = (0..6)
            .map(|i| {
                service
                    .try_submit(spread_spec(service.cluster(), i), vec![cred.clone()])
                    .expect("queue has room")
            })
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completions(), 6, "shutdown drained the queue");
        for handle in handles {
            assert!(handle.wait().outcome.is_commit());
        }
    }

    #[test]
    fn zero_retry_budget_surfaces_transient_aborts() {
        let cluster = seeded_cluster(2, ProofScheme::Deferred, ConsistencyLevel::View);
        let service = TxnService::new(
            cluster,
            ServiceConfig {
                workers: 4,
                queue_depth: 64,
                retry: RetryPolicy::never(),
                seed: 0,
            },
        );
        let cred = member_credential(service.cluster());
        // Hammer one hot key so lock conflicts are certain.
        let handles: Vec<_> = (0..12)
            .map(|_| {
                service
                    .try_submit(
                        crate::testutil::hot_key_spec(service.cluster()),
                        vec![cred.clone()],
                    )
                    .expect("queue has room")
            })
            .collect();
        let mut exhausted = 0;
        for handle in handles {
            match handle.wait().outcome {
                ServiceOutcome::Committed => {}
                ServiceOutcome::RetriesExhausted(reason) => {
                    exhausted += 1;
                    assert_eq!(classify(reason), Disposition::Retryable);
                }
                ServiceOutcome::TerminalAbort(r) => panic!("unexpected terminal abort {r:?}"),
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.retry_attempts, 0, "never-retry policy");
        assert_eq!(stats.retries_exhausted, exhausted);
        assert!(stats.conserves());
    }
}
