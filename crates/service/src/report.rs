//! Service-level statistics: outcome counters and latency histograms.

use safetx_core::AbortReason;
use safetx_metrics::{FaultCounters, Histogram, Json, RouteCounters, TransportCounters, WalStats};

/// Everything the service measured, snapshot-able at any time and final
/// after shutdown.
///
/// Conservation invariant (checked by [`ServiceStats::conserves`]): every
/// offered submission is either rejected at admission or completes with
/// exactly one of commit / terminal abort / retries exhausted, so
/// `commits + terminal_aborts + retries_exhausted + overload_rejections
/// == submissions` once the service has drained.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Submissions offered (accepted + rejected).
    pub submissions: u64,
    /// Submissions admitted into the queue.
    pub accepted: u64,
    /// Submissions rejected by admission control (queue at depth).
    pub overload_rejections: u64,
    /// Transactions that committed (possibly after retries).
    pub commits: u64,
    /// Transactions that ended with a terminal abort (never retried).
    pub terminal_aborts: u64,
    /// Transactions whose retry budget ran out on transient aborts.
    pub retries_exhausted: u64,
    /// Total re-submissions across all transactions (attempts − 1 each).
    pub retry_attempts: u64,
    /// The subset of `retry_attempts` spent on [`Disposition::Unavailable`]
    /// aborts — each of those burned a full reply deadline first.
    ///
    /// [`Disposition::Unavailable`]: crate::Disposition::Unavailable
    pub unavailable_retries: u64,
    /// Retries caused by lock conflicts (`AbortReason::LockConflict`).
    /// Together with the next three this partitions the transient
    /// (non-unavailable) slice of `retry_attempts` by cause, so a run's
    /// contention profile is visible per concurrency mode: locking mode
    /// aborts here, OCC mode aborts as validation conflicts.
    pub retry_lock_conflicts: u64,
    /// Retries caused by optimistic validation failures at the 2PVC vote
    /// (`AbortReason::ValidationConflict`): a stale read stamp or a
    /// write-write pin collision detected when the transaction tried to
    /// certify its snapshot.
    pub retry_validation_conflicts: u64,
    /// Retries caused by policy-version races
    /// (`AbortReason::VersionInconsistency`).
    pub retry_stale_versions: u64,
    /// Retries caused by commit-phase timeouts (`AbortReason::Timeout`).
    pub retry_timeouts: u64,
    /// Coordinator-side protocol inputs received but matched by no pending
    /// round (stale replies after an abort). Sourced from
    /// [`safetx_runtime::Cluster::dropped_replies`]; timing-dependent, so
    /// excluded from the conservation invariant.
    pub dropped_replies: u64,
    /// Fault-injection and recovery counters from the cluster's message
    /// fabric (all zero when no fault plan was armed and nothing crashed).
    /// Sourced from [`safetx_runtime::Cluster::fault_counters`]; like
    /// `dropped_replies`, outside the conservation invariant.
    pub faults: FaultCounters,
    /// Aggregated WAL accounting across the cluster's servers: logical
    /// forced appends (the paper's Table I log metric) and the physical
    /// device syncs performed for them (fewer under group commit). Sourced
    /// from [`safetx_runtime::Cluster::wal_stats`]; like `faults`, outside
    /// the conservation invariant.
    pub wal: WalStats,
    /// Transport accounting summed over every edge of the backend: frames
    /// and bytes in both directions, reconnects and decode errors. All
    /// zero on the threaded backend (no wire). Sourced from
    /// `RuntimeKind::transport_counters`; like `faults`, outside the
    /// conservation invariant.
    pub transport: TransportCounters,
    /// Single- vs cross-shard routing outcomes from a sharded backend
    /// (all zero on unsharded backends). Sourced from
    /// `RuntimeKind::route_counters`; counted at the router, so routed
    /// submissions ≠ service submissions when retries re-execute — hence
    /// outside the conservation invariant here (the router has its own:
    /// [`RouteCounters::conserves`]).
    pub route: RouteCounters,
    /// End-to-end latency of committed transactions, in milliseconds
    /// (submission to commit, including queueing and retries).
    pub commit_latency_ms: Histogram,
    /// Time spent waiting in the admission queue, in milliseconds.
    pub queue_wait_ms: Histogram,
    /// End-to-end latency of non-committed completions, in milliseconds.
    pub failure_latency_ms: Histogram,
}

impl ServiceStats {
    /// Completed transactions (every admitted submission ends here).
    #[must_use]
    pub fn completions(&self) -> u64 {
        self.commits + self.terminal_aborts + self.retries_exhausted
    }

    /// True when every offered submission is accounted for: rejected at
    /// admission or completed exactly once.
    #[must_use]
    pub fn conserves(&self) -> bool {
        self.accepted + self.overload_rejections == self.submissions
            && self.completions() == self.accepted
    }

    /// Commits per wall-clock second over the given window.
    #[must_use]
    pub fn throughput_tps(&self, wall: std::time::Duration) -> f64 {
        let secs = wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.commits as f64 / secs
        }
    }

    /// Attributes one transient retry to its abort cause, so the retry
    /// total can be split into lock conflicts, validation conflicts, stale
    /// policy versions and timeouts. Reasons outside the transient set
    /// (terminal decisions, unavailability — tracked by
    /// `unavailable_retries`) leave the breakdown untouched.
    pub fn record_retry_reason(&mut self, reason: AbortReason) {
        match reason {
            AbortReason::LockConflict => self.retry_lock_conflicts += 1,
            AbortReason::ValidationConflict => self.retry_validation_conflicts += 1,
            AbortReason::VersionInconsistency => self.retry_stale_versions += 1,
            AbortReason::Timeout => self.retry_timeouts += 1,
            _ => {}
        }
    }

    /// Folds another service's statistics into this one, so per-shard (or
    /// per-service) reports aggregate into a single deployment-wide view.
    ///
    /// Scalar counters and the fault/WAL/transport/route groups add
    /// exactly. Latency histograms merge through
    /// [`Histogram::merge`], which is exact while both sides are within
    /// their retained-sample budget and degrades to log-linear buckets
    /// beyond it — counts, means and extremes stay exact, and every
    /// quantile carries a bounded relative error of at most ~1.1%
    /// (2^(1/64) − 1), a bound that merging does not compound.
    pub fn merge(&mut self, other: &ServiceStats) {
        self.submissions += other.submissions;
        self.accepted += other.accepted;
        self.overload_rejections += other.overload_rejections;
        self.commits += other.commits;
        self.terminal_aborts += other.terminal_aborts;
        self.retries_exhausted += other.retries_exhausted;
        self.retry_attempts += other.retry_attempts;
        self.unavailable_retries += other.unavailable_retries;
        self.retry_lock_conflicts += other.retry_lock_conflicts;
        self.retry_validation_conflicts += other.retry_validation_conflicts;
        self.retry_stale_versions += other.retry_stale_versions;
        self.retry_timeouts += other.retry_timeouts;
        self.dropped_replies += other.dropped_replies;
        self.faults.merge(&other.faults);
        self.wal.merge(&other.wal);
        self.transport.merge(&other.transport);
        self.route.merge(&other.route);
        self.commit_latency_ms.merge(&other.commit_latency_ms);
        self.queue_wait_ms.merge(&other.queue_wait_ms);
        self.failure_latency_ms.merge(&other.failure_latency_ms);
    }

    /// Machine-readable snapshot (sorts histograms in place for the
    /// quantiles).
    pub fn to_json(&mut self) -> Json {
        Json::object()
            .with("submissions", self.submissions)
            .with("accepted", self.accepted)
            .with("overload_rejections", self.overload_rejections)
            .with("commits", self.commits)
            .with("terminal_aborts", self.terminal_aborts)
            .with("retries_exhausted", self.retries_exhausted)
            .with("retry_attempts", self.retry_attempts)
            .with("unavailable_retries", self.unavailable_retries)
            .with("retry_lock_conflicts", self.retry_lock_conflicts)
            .with(
                "retry_validation_conflicts",
                self.retry_validation_conflicts,
            )
            .with("retry_stale_versions", self.retry_stale_versions)
            .with("retry_timeouts", self.retry_timeouts)
            .with("dropped_replies", self.dropped_replies)
            .with("faults_dropped", self.faults.faults_dropped)
            .with("faults_delayed", self.faults.faults_delayed)
            .with("faults_duplicated", self.faults.faults_duplicated)
            .with("faults_reordered", self.faults.faults_reordered)
            .with("faults_corrupted", self.faults.faults_corrupted)
            .with("faults_truncated", self.faults.faults_truncated)
            .with("disconnects", self.faults.disconnects)
            .with("reconnect_exhausted", self.faults.reconnect_exhausted)
            .with("server_crashes", self.faults.server_crashes)
            .with("recoveries", self.faults.recoveries)
            .with("timeout_aborts", self.faults.timeout_aborts)
            .with("forced_logs", self.wal.forced_logs)
            .with("physical_syncs", self.wal.physical_syncs)
            .with("frames_sent", self.transport.frames_sent)
            .with("frames_received", self.transport.frames_received)
            .with("bytes_sent", self.transport.bytes_sent)
            .with("bytes_received", self.transport.bytes_received)
            .with("reconnects", self.transport.reconnects)
            .with("decode_errors", self.transport.decode_errors)
            .with("single_shard_submitted", self.route.single_shard_submitted)
            .with("single_shard_commits", self.route.single_shard_commits)
            .with("single_shard_aborts", self.route.single_shard_aborts)
            .with("cross_shard_submitted", self.route.cross_shard_submitted)
            .with("cross_shard_commits", self.route.cross_shard_commits)
            .with("cross_shard_aborts", self.route.cross_shard_aborts)
            .with("commit_latency_ms", self.commit_latency_ms.to_json())
            .with("queue_wait_ms", self.queue_wait_ms.to_json())
            .with("failure_latency_ms", self.failure_latency_ms.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_accounting() {
        let mut stats = ServiceStats {
            submissions: 10,
            accepted: 8,
            overload_rejections: 2,
            commits: 6,
            terminal_aborts: 1,
            retries_exhausted: 1,
            ..Default::default()
        };
        assert!(stats.conserves());
        stats.commits -= 1;
        assert!(!stats.conserves(), "a lost completion must be caught");
    }

    #[test]
    fn throughput_is_commits_over_wall() {
        let stats = ServiceStats {
            commits: 50,
            ..Default::default()
        };
        let tps = stats.throughput_tps(std::time::Duration::from_secs(2));
        assert!((tps - 25.0).abs() < f64::EPSILON);
        assert_eq!(stats.throughput_tps(std::time::Duration::ZERO), 0.0);
    }

    #[test]
    fn merge_aggregates_counters_and_histograms() {
        let mut a = ServiceStats {
            submissions: 10,
            accepted: 9,
            overload_rejections: 1,
            commits: 8,
            terminal_aborts: 1,
            ..Default::default()
        };
        for ms in [1.0, 2.0, 3.0] {
            a.commit_latency_ms.record(ms);
        }
        a.route.single_shard_submitted = 9;
        a.route.single_shard_commits = 8;
        a.route.single_shard_aborts = 1;
        let mut b = ServiceStats {
            submissions: 5,
            accepted: 5,
            commits: 4,
            retries_exhausted: 1,
            ..Default::default()
        };
        for ms in [10.0, 20.0] {
            b.commit_latency_ms.record(ms);
        }
        b.route.cross_shard_submitted = 5;
        b.route.cross_shard_commits = 4;
        b.route.cross_shard_aborts = 1;
        a.merge(&b);
        assert_eq!(a.submissions, 15);
        assert_eq!(a.commits, 12);
        assert!(a.conserves(), "{a:?}");
        assert!(a.route.conserves());
        assert_eq!(a.commit_latency_ms.count(), 5);
        assert_eq!(a.commit_latency_ms.max(), Some(20.0));
        let p50 = a.commit_latency_ms.quantile(0.5).expect("non-empty");
        assert!((p50 - 3.0).abs() < f64::EPSILON, "exact below cap: {p50}");
    }

    #[test]
    fn retry_breakdown_partitions_by_reason_and_survives_merge_and_json() {
        let mut stats = ServiceStats::default();
        stats.record_retry_reason(AbortReason::LockConflict);
        stats.record_retry_reason(AbortReason::LockConflict);
        stats.record_retry_reason(AbortReason::ValidationConflict);
        stats.record_retry_reason(AbortReason::VersionInconsistency);
        stats.record_retry_reason(AbortReason::Timeout);
        stats.record_retry_reason(AbortReason::ProofFalse); // terminal: no-op
        assert_eq!(stats.retry_lock_conflicts, 2);
        assert_eq!(stats.retry_validation_conflicts, 1);
        assert_eq!(stats.retry_stale_versions, 1);
        assert_eq!(stats.retry_timeouts, 1);

        let mut other = ServiceStats::default();
        other.record_retry_reason(AbortReason::ValidationConflict);
        stats.merge(&other);
        assert_eq!(stats.retry_validation_conflicts, 2);

        let text = stats.to_json().render();
        let parsed = Json::parse(&text).expect("valid json");
        assert_eq!(
            parsed.get("retry_lock_conflicts").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            parsed
                .get("retry_validation_conflicts")
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            parsed.get("retry_stale_versions").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(parsed.get("retry_timeouts").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn json_snapshot_parses_and_carries_counters() {
        let mut stats = ServiceStats {
            submissions: 4,
            accepted: 4,
            commits: 4,
            ..Default::default()
        };
        stats.commit_latency_ms.record(1.5);
        stats.wal = WalStats {
            forced_logs: 12,
            physical_syncs: 5,
        };
        let text = stats.to_json().render();
        let parsed = Json::parse(&text).expect("valid json");
        assert_eq!(parsed.get("commits").and_then(Json::as_u64), Some(4));
        assert_eq!(parsed.get("forced_logs").and_then(Json::as_u64), Some(12));
        assert_eq!(parsed.get("physical_syncs").and_then(Json::as_u64), Some(5));
        assert_eq!(
            parsed
                .get("commit_latency_ms")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }
}
