//! Concurrent transaction serving layer over the threaded runtime.
//!
//! The protocol crates are sans-io state machines and the runtime executes
//! one transaction per calling thread. This crate adds the piece a real
//! deployment puts in front of that: a **service** that accepts
//! transaction submissions from many clients concurrently and is honest
//! about overload.
//!
//! * **Admission control** — a bounded queue ([`AdmissionQueue`]) feeds a
//!   pool of TM worker threads. Non-blocking submissions past the
//!   configured depth are shed with [`AdmissionError::Overloaded`]
//!   (open-loop load shedding); blocking submissions wait for space
//!   (closed-loop backpressure).
//! * **Abort-retry** — transient aborts (lock conflicts, stale policy
//!   versions, timeouts) are retried with capped exponential backoff and
//!   deterministic jitter ([`RetryPolicy`]); terminal aborts (a proof of
//!   authorization that evaluated FALSE, integrity violations) are
//!   surfaced immediately and **never resubmitted** — a policy denial is a
//!   decision, not a race.
//! * **Load drivers** — [`run_closed_loop`] (fixed client population) and
//!   [`run_open_loop`] (Poisson arrivals from `safetx-workload`) drive the
//!   service and collect per-transaction [`Completion`]s.
//! * **Accounting** — [`ServiceStats`] counts every offered submission
//!   into exactly one of commit / terminal abort / retries exhausted /
//!   overload rejection ([`ServiceStats::conserves`]) and records latency
//!   histograms, exportable as JSON via [`ServiceStats::to_json`].
//!
//! Every completion carries the transaction's recorded proof view, so
//! callers can audit Definition 4 (trusted transactions) post hoc with
//! `safetx_core::trusted::is_trusted`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod driver;
mod report;
mod retry;
mod service;
#[cfg(test)]
pub(crate) mod testutil;

pub use admission::{AdmissionError, AdmissionQueue};
pub use driver::{run_closed_loop, run_open_loop, DriverReport};
pub use report::ServiceStats;
pub use retry::{classify, Disposition, RetryPolicy};
pub use service::{
    Completion, CompletionHandle, RuntimeKind, ServiceConfig, ServiceOutcome, TxnService,
};
