//! Protocol cost counters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The cost metrics of one (or many aggregated) transaction executions,
/// matching Section VI's cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolMetrics {
    /// Protocol messages sent (prepares, votes, decisions, acks, updates,
    /// version queries, 2PV traffic).
    pub messages: u64,
    /// Proofs of authorization evaluated (including re-evaluations).
    pub proofs: u64,
    /// Voting/collection rounds executed (`r` in Table I).
    pub rounds: u64,
    /// Forced log writes (the paper's log complexity).
    pub forced_logs: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
}

impl ProtocolMetrics {
    /// All-zero metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &ProtocolMetrics) {
        self.messages += other.messages;
        self.proofs += other.proofs;
        self.rounds += other.rounds;
        self.forced_logs += other.forced_logs;
        self.commits += other.commits;
        self.aborts += other.aborts;
    }

    /// Total transactions observed.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.commits + self.aborts
    }

    /// Fraction of transactions that aborted (0 when none ran).
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let total = self.transactions();
        if total == 0 {
            0.0
        } else {
            self.aborts as f64 / total as f64
        }
    }
}

impl fmt::Display for ProtocolMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "msgs={} proofs={} rounds={} forced={} commits={} aborts={}",
            self.messages, self.proofs, self.rounds, self.forced_logs, self.commits, self.aborts
        )
    }
}

impl std::ops::Add for ProtocolMetrics {
    type Output = ProtocolMetrics;

    fn add(mut self, rhs: ProtocolMetrics) -> ProtocolMetrics {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for ProtocolMetrics {
    fn sum<I: Iterator<Item = ProtocolMetrics>>(iter: I) -> ProtocolMetrics {
        iter.fold(ProtocolMetrics::new(), |acc, m| acc + m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = ProtocolMetrics {
            messages: 1,
            proofs: 2,
            rounds: 3,
            forced_logs: 4,
            commits: 5,
            aborts: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.messages, 2);
        assert_eq!(a.aborts, 12);
        assert_eq!(a.transactions(), 22);
    }

    #[test]
    fn abort_rate_handles_zero() {
        assert_eq!(ProtocolMetrics::new().abort_rate(), 0.0);
        let m = ProtocolMetrics {
            commits: 3,
            aborts: 1,
            ..Default::default()
        };
        assert!((m.abort_rate() - 0.25).abs() < f64::EPSILON);
    }

    #[test]
    fn sum_over_iterator() {
        let total: ProtocolMetrics = (0..3)
            .map(|_| ProtocolMetrics {
                messages: 10,
                ..Default::default()
            })
            .sum();
        assert_eq!(total.messages, 30);
    }
}
