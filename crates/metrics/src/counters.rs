//! Protocol cost counters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The cost metrics of one (or many aggregated) transaction executions,
/// matching Section VI's cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolMetrics {
    /// Protocol messages sent (prepares, votes, decisions, acks, updates,
    /// version queries, 2PV traffic).
    pub messages: u64,
    /// Proofs of authorization evaluated (including re-evaluations).
    pub proofs: u64,
    /// Voting/collection rounds executed (`r` in Table I).
    pub rounds: u64,
    /// Forced log writes (the paper's log complexity).
    pub forced_logs: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
}

impl ProtocolMetrics {
    /// All-zero metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &ProtocolMetrics) {
        self.messages += other.messages;
        self.proofs += other.proofs;
        self.rounds += other.rounds;
        self.forced_logs += other.forced_logs;
        self.commits += other.commits;
        self.aborts += other.aborts;
    }

    /// Total transactions observed.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.commits + self.aborts
    }

    /// Fraction of transactions that aborted (0 when none ran).
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let total = self.transactions();
        if total == 0 {
            0.0
        } else {
            self.aborts as f64 / total as f64
        }
    }
}

impl ProtocolMetrics {
    /// Machine-readable form for `BENCH_*.json` emitters.
    #[must_use]
    pub fn to_json(&self) -> crate::Json {
        crate::Json::object()
            .with("messages", self.messages)
            .with("proofs", self.proofs)
            .with("rounds", self.rounds)
            .with("forced_logs", self.forced_logs)
            .with("commits", self.commits)
            .with("aborts", self.aborts)
    }

    /// Rebuilds metrics from [`ProtocolMetrics::to_json`] output.
    ///
    /// Returns `None` when a field is missing or non-numeric.
    #[must_use]
    pub fn from_json(json: &crate::Json) -> Option<Self> {
        let field = |name: &str| json.get(name).and_then(crate::Json::as_u64);
        Some(ProtocolMetrics {
            messages: field("messages")?,
            proofs: field("proofs")?,
            rounds: field("rounds")?,
            forced_logs: field("forced_logs")?,
            commits: field("commits")?,
            aborts: field("aborts")?,
        })
    }
}

impl fmt::Display for ProtocolMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "msgs={} proofs={} rounds={} forced={} commits={} aborts={}",
            self.messages, self.proofs, self.rounds, self.forced_logs, self.commits, self.aborts
        )
    }
}

impl std::ops::Add for ProtocolMetrics {
    type Output = ProtocolMetrics;

    fn add(mut self, rhs: ProtocolMetrics) -> ProtocolMetrics {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for ProtocolMetrics {
    fn sum<I: Iterator<Item = ProtocolMetrics>>(iter: I) -> ProtocolMetrics {
        iter.fold(ProtocolMetrics::new(), |acc, m| acc + m)
    }
}

/// Instrumentation for a server's proof-of-authorization cache.
///
/// These counters track *wall-clock* savings only: a cache hit still counts
/// as a proof evaluation in [`ProtocolMetrics::proofs`] (Table I's cost
/// model is unchanged by caching), so they live beside — never inside —
/// the paper-model metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProofCacheStats {
    /// Evaluations answered from cache (no engine run, no oracle call).
    pub hits: u64,
    /// Evaluations that ran the engine and populated the cache.
    pub misses: u64,
    /// Cached proofs dropped by an invalidation event (policy install,
    /// CA state change, ambient-fact or resource-map update).
    pub invalidations: u64,
}

impl ProofCacheStats {
    /// All-zero stats.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &ProofCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
    }

    /// Total cache lookups (hits + misses).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from cache (0 when none happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

impl ProofCacheStats {
    /// Machine-readable form for `BENCH_*.json` emitters.
    #[must_use]
    pub fn to_json(&self) -> crate::Json {
        crate::Json::object()
            .with("hits", self.hits)
            .with("misses", self.misses)
            .with("invalidations", self.invalidations)
    }

    /// Rebuilds stats from [`ProofCacheStats::to_json`] output.
    #[must_use]
    pub fn from_json(json: &crate::Json) -> Option<Self> {
        let field = |name: &str| json.get(name).and_then(crate::Json::as_u64);
        Some(ProofCacheStats {
            hits: field("hits")?,
            misses: field("misses")?,
            invalidations: field("invalidations")?,
        })
    }
}

impl fmt::Display for ProofCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache_hits={} cache_misses={} cache_invalidations={}",
            self.hits, self.misses, self.invalidations
        )
    }
}

impl std::ops::Add for ProofCacheStats {
    type Output = ProofCacheStats;

    fn add(mut self, rhs: ProofCacheStats) -> ProofCacheStats {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for ProofCacheStats {
    fn sum<I: Iterator<Item = ProofCacheStats>>(iter: I) -> ProofCacheStats {
        iter.fold(ProofCacheStats::new(), |acc, s| acc + s)
    }
}

/// Fault-injection and crash-recovery instrumentation for a live cluster.
///
/// These counters record what the fault layer *did* (messages dropped,
/// delayed, duplicated, reordered; servers crashed and recovered) and what
/// the TM *observed* (protocol phases that hit their reply deadline). They
/// sit beside the paper-model [`ProtocolMetrics`]: injected faults change
/// wall-clock behaviour and liveness, never the Table I cost accounting of
/// the transactions that do complete.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Protocol messages swallowed by a drop rule.
    pub faults_dropped: u64,
    /// Protocol messages delivered late by a delay rule.
    pub faults_delayed: u64,
    /// Protocol messages delivered twice by a duplicate rule.
    pub faults_duplicated: u64,
    /// Protocol messages pushed out of FIFO order by a reorder rule.
    pub faults_reordered: u64,
    /// Wire frames whose payload bytes were flipped by a corruption rule
    /// (always caught by the receiver's decoder; zero on channel fabrics).
    pub faults_corrupted: u64,
    /// Wire frames cut off mid-frame by a truncation rule, desyncing and
    /// killing the stream (zero on channel fabrics).
    pub faults_truncated: u64,
    /// Streams hard-closed by a disconnect rule (zero on channel fabrics).
    pub disconnects: u64,
    /// Reconnect loops that gave up after exhausting their bounded,
    /// backed-off attempt budget (the edge then presents as unavailable).
    pub reconnect_exhausted: u64,
    /// Server threads torn down by a scheduled crash.
    pub server_crashes: u64,
    /// Server threads rebuilt from their WAL after a crash.
    pub recoveries: u64,
    /// Protocol phases the TM abandoned at the reply deadline (aborted
    /// with `ServerUnavailable`).
    pub timeout_aborts: u64,
}

impl FaultCounters {
    /// All-zero counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.faults_dropped += other.faults_dropped;
        self.faults_delayed += other.faults_delayed;
        self.faults_duplicated += other.faults_duplicated;
        self.faults_reordered += other.faults_reordered;
        self.faults_corrupted += other.faults_corrupted;
        self.faults_truncated += other.faults_truncated;
        self.disconnects += other.disconnects;
        self.reconnect_exhausted += other.reconnect_exhausted;
        self.server_crashes += other.server_crashes;
        self.recoveries += other.recoveries;
        self.timeout_aborts += other.timeout_aborts;
    }

    /// Total messages the fault layer interfered with.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults_dropped
            + self.faults_delayed
            + self.faults_duplicated
            + self.faults_reordered
            + self.faults_corrupted
            + self.faults_truncated
            + self.disconnects
    }

    /// Machine-readable form for `BENCH_*.json` emitters.
    #[must_use]
    pub fn to_json(&self) -> crate::Json {
        crate::Json::object()
            .with("faults_dropped", self.faults_dropped)
            .with("faults_delayed", self.faults_delayed)
            .with("faults_duplicated", self.faults_duplicated)
            .with("faults_reordered", self.faults_reordered)
            .with("faults_corrupted", self.faults_corrupted)
            .with("faults_truncated", self.faults_truncated)
            .with("disconnects", self.disconnects)
            .with("reconnect_exhausted", self.reconnect_exhausted)
            .with("server_crashes", self.server_crashes)
            .with("recoveries", self.recoveries)
            .with("timeout_aborts", self.timeout_aborts)
    }

    /// Rebuilds counters from [`FaultCounters::to_json`] output.
    #[must_use]
    pub fn from_json(json: &crate::Json) -> Option<Self> {
        let field = |name: &str| json.get(name).and_then(crate::Json::as_u64);
        Some(FaultCounters {
            faults_dropped: field("faults_dropped")?,
            faults_delayed: field("faults_delayed")?,
            faults_duplicated: field("faults_duplicated")?,
            faults_reordered: field("faults_reordered")?,
            faults_corrupted: field("faults_corrupted")?,
            faults_truncated: field("faults_truncated")?,
            disconnects: field("disconnects")?,
            reconnect_exhausted: field("reconnect_exhausted")?,
            server_crashes: field("server_crashes")?,
            recoveries: field("recoveries")?,
            timeout_aborts: field("timeout_aborts")?,
        })
    }
}

impl fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dropped={} delayed={} duplicated={} reordered={} corrupted={} truncated={} \
             disconnects={} reconnect_exhausted={} crashes={} recoveries={} timeout_aborts={}",
            self.faults_dropped,
            self.faults_delayed,
            self.faults_duplicated,
            self.faults_reordered,
            self.faults_corrupted,
            self.faults_truncated,
            self.disconnects,
            self.reconnect_exhausted,
            self.server_crashes,
            self.recoveries,
            self.timeout_aborts
        )
    }
}

impl std::ops::Add for FaultCounters {
    type Output = FaultCounters;

    fn add(mut self, rhs: FaultCounters) -> FaultCounters {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for FaultCounters {
    fn sum<I: Iterator<Item = FaultCounters>>(iter: I) -> FaultCounters {
        iter.fold(FaultCounters::new(), |acc, c| acc + c)
    }
}

/// Shard-routing accounting for a partitioned deployment: how many
/// transactions stayed inside one shard (no cross-shard coordination) and
/// how many were driven through cross-shard 2PVC, split by final outcome.
///
/// Conservation: `single_shard_submitted + cross_shard_submitted` equals
/// the executions the router performed, and within each class
/// `submitted == commits + aborts` once the deployment has quiesced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteCounters {
    /// Transactions whose key set resolved to exactly one shard.
    pub single_shard_submitted: u64,
    /// Single-shard transactions that committed.
    pub single_shard_commits: u64,
    /// Single-shard transactions that aborted (any reason).
    pub single_shard_aborts: u64,
    /// Transactions spanning two or more shards (cross-shard 2PVC).
    pub cross_shard_submitted: u64,
    /// Cross-shard transactions that committed.
    pub cross_shard_commits: u64,
    /// Cross-shard transactions that aborted (any reason).
    pub cross_shard_aborts: u64,
}

impl RouteCounters {
    /// All-zero counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &RouteCounters) {
        self.single_shard_submitted += other.single_shard_submitted;
        self.single_shard_commits += other.single_shard_commits;
        self.single_shard_aborts += other.single_shard_aborts;
        self.cross_shard_submitted += other.cross_shard_submitted;
        self.cross_shard_commits += other.cross_shard_commits;
        self.cross_shard_aborts += other.cross_shard_aborts;
    }

    /// Executions routed, single- and cross-shard together.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.single_shard_submitted + self.cross_shard_submitted
    }

    /// True when every routed execution resolved to a commit or an abort
    /// in its own class.
    #[must_use]
    pub fn conserves(&self) -> bool {
        self.single_shard_submitted == self.single_shard_commits + self.single_shard_aborts
            && self.cross_shard_submitted == self.cross_shard_commits + self.cross_shard_aborts
    }

    /// Machine-readable form for `BENCH_*.json` emitters.
    #[must_use]
    pub fn to_json(&self) -> crate::Json {
        crate::Json::object()
            .with("single_shard_submitted", self.single_shard_submitted)
            .with("single_shard_commits", self.single_shard_commits)
            .with("single_shard_aborts", self.single_shard_aborts)
            .with("cross_shard_submitted", self.cross_shard_submitted)
            .with("cross_shard_commits", self.cross_shard_commits)
            .with("cross_shard_aborts", self.cross_shard_aborts)
    }

    /// Rebuilds counters from [`RouteCounters::to_json`] output.
    #[must_use]
    pub fn from_json(json: &crate::Json) -> Option<Self> {
        let field = |name: &str| json.get(name).and_then(crate::Json::as_u64);
        Some(RouteCounters {
            single_shard_submitted: field("single_shard_submitted")?,
            single_shard_commits: field("single_shard_commits")?,
            single_shard_aborts: field("single_shard_aborts")?,
            cross_shard_submitted: field("cross_shard_submitted")?,
            cross_shard_commits: field("cross_shard_commits")?,
            cross_shard_aborts: field("cross_shard_aborts")?,
        })
    }
}

impl fmt::Display for RouteCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "single={}/{}c cross={}/{}c",
            self.single_shard_submitted,
            self.single_shard_commits,
            self.cross_shard_submitted,
            self.cross_shard_commits
        )
    }
}

impl std::ops::Add for RouteCounters {
    type Output = RouteCounters;

    fn add(mut self, rhs: RouteCounters) -> RouteCounters {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for RouteCounters {
    fn sum<I: Iterator<Item = RouteCounters>>(iter: I) -> RouteCounters {
        iter.fold(RouteCounters::new(), |acc, c| acc + c)
    }
}

/// Write-ahead-log force accounting, split into the paper's logical metric
/// and the physical syncs group commit amortizes them into.
///
/// `forced_logs` is Table I's `2n + 1` log complexity and is byte-identical
/// whether or not group commit is active; `physical_syncs` is a wall-clock
/// counter (like [`ProofCacheStats`]) showing how many device syncs those
/// forces actually cost. `physical_syncs ≤ forced_logs` always; strictly
/// smaller when any server round coalesced two or more forces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalStats {
    /// Logical forced log writes (the paper's log-complexity metric).
    pub forced_logs: u64,
    /// Physical device syncs performed for those forces.
    pub physical_syncs: u64,
}

impl WalStats {
    /// All-zero stats.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &WalStats) {
        self.forced_logs += other.forced_logs;
        self.physical_syncs += other.physical_syncs;
    }

    /// Logical forces amortized away: `forced_logs − physical_syncs`.
    #[must_use]
    pub fn syncs_saved(&self) -> u64 {
        self.forced_logs.saturating_sub(self.physical_syncs)
    }

    /// Machine-readable form for `BENCH_*.json` emitters.
    #[must_use]
    pub fn to_json(&self) -> crate::Json {
        crate::Json::object()
            .with("forced_logs", self.forced_logs)
            .with("physical_syncs", self.physical_syncs)
    }

    /// Rebuilds stats from [`WalStats::to_json`] output.
    #[must_use]
    pub fn from_json(json: &crate::Json) -> Option<Self> {
        let field = |name: &str| json.get(name).and_then(crate::Json::as_u64);
        Some(WalStats {
            forced_logs: field("forced_logs")?,
            physical_syncs: field("physical_syncs")?,
        })
    }
}

impl fmt::Display for WalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "forced_logs={} physical_syncs={}",
            self.forced_logs, self.physical_syncs
        )
    }
}

impl std::ops::Add for WalStats {
    type Output = WalStats;

    fn add(mut self, rhs: WalStats) -> WalStats {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for WalStats {
    fn sum<I: Iterator<Item = WalStats>>(iter: I) -> WalStats {
        iter.fold(WalStats::new(), |acc, s| acc + s)
    }
}

/// Byte-stream transport accounting for one edge (or an aggregate over
/// edges) of the socket runtime: framed messages and payload bytes in each
/// direction, connection replacements, and frames whose payload failed to
/// decode.
///
/// On a clean quiesced run frames are conserved per edge: everything one
/// side sent, the other side received (`decode_errors == 0`,
/// `reconnects == 0`). The in-process runtimes move messages without a
/// codec, so their transport counters are all zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportCounters {
    /// Frames written to the stream.
    pub frames_sent: u64,
    /// Frames read off the stream.
    pub frames_received: u64,
    /// Bytes written, including each frame's length prefix.
    pub bytes_sent: u64,
    /// Bytes read, including each frame's length prefix.
    pub bytes_received: u64,
    /// Times this edge's connection was replaced after a disconnect.
    pub reconnects: u64,
    /// Received frames whose payload failed to decode (and were skipped).
    pub decode_errors: u64,
}

impl TransportCounters {
    /// All-zero counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &TransportCounters) {
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.reconnects += other.reconnects;
        self.decode_errors += other.decode_errors;
    }

    /// Machine-readable form for `BENCH_*.json` emitters.
    #[must_use]
    pub fn to_json(&self) -> crate::Json {
        crate::Json::object()
            .with("frames_sent", self.frames_sent)
            .with("frames_received", self.frames_received)
            .with("bytes_sent", self.bytes_sent)
            .with("bytes_received", self.bytes_received)
            .with("reconnects", self.reconnects)
            .with("decode_errors", self.decode_errors)
    }

    /// Rebuilds counters from [`TransportCounters::to_json`] output.
    #[must_use]
    pub fn from_json(json: &crate::Json) -> Option<Self> {
        let field = |name: &str| json.get(name).and_then(crate::Json::as_u64);
        Some(TransportCounters {
            frames_sent: field("frames_sent")?,
            frames_received: field("frames_received")?,
            bytes_sent: field("bytes_sent")?,
            bytes_received: field("bytes_received")?,
            reconnects: field("reconnects")?,
            decode_errors: field("decode_errors")?,
        })
    }
}

impl fmt::Display for TransportCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frames={}tx/{}rx bytes={}tx/{}rx reconnects={} decode_errors={}",
            self.frames_sent,
            self.frames_received,
            self.bytes_sent,
            self.bytes_received,
            self.reconnects,
            self.decode_errors
        )
    }
}

impl std::ops::Add for TransportCounters {
    type Output = TransportCounters;

    fn add(mut self, rhs: TransportCounters) -> TransportCounters {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for TransportCounters {
    fn sum<I: Iterator<Item = TransportCounters>>(iter: I) -> TransportCounters {
        iter.fold(TransportCounters::new(), |acc, c| acc + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = ProtocolMetrics {
            messages: 1,
            proofs: 2,
            rounds: 3,
            forced_logs: 4,
            commits: 5,
            aborts: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.messages, 2);
        assert_eq!(a.aborts, 12);
        assert_eq!(a.transactions(), 22);
    }

    #[test]
    fn abort_rate_handles_zero() {
        assert_eq!(ProtocolMetrics::new().abort_rate(), 0.0);
        let m = ProtocolMetrics {
            commits: 3,
            aborts: 1,
            ..Default::default()
        };
        assert!((m.abort_rate() - 0.25).abs() < f64::EPSILON);
    }

    #[test]
    fn sum_over_iterator() {
        let total: ProtocolMetrics = (0..3)
            .map(|_| ProtocolMetrics {
                messages: 10,
                ..Default::default()
            })
            .sum();
        assert_eq!(total.messages, 30);
    }

    #[test]
    fn transport_counters_round_trip_json_and_merge() {
        let a = TransportCounters {
            frames_sent: 5,
            frames_received: 4,
            bytes_sent: 512,
            bytes_received: 480,
            reconnects: 1,
            decode_errors: 2,
        };
        assert_eq!(TransportCounters::from_json(&a.to_json()), Some(a));
        let total: TransportCounters = [a, a].into_iter().sum();
        assert_eq!(total.frames_sent, 10);
        assert_eq!(total.bytes_received, 960);
        assert_eq!(total.decode_errors, 4);
        let shown = a.to_string();
        assert!(shown.contains("reconnects=1"));
    }

    #[test]
    fn cache_stats_merge_and_rate() {
        let mut stats = ProofCacheStats {
            hits: 3,
            misses: 1,
            invalidations: 2,
        };
        stats.merge(&ProofCacheStats {
            hits: 1,
            misses: 3,
            invalidations: 0,
        });
        assert_eq!(stats.lookups(), 8);
        assert!((stats.hit_rate() - 0.5).abs() < f64::EPSILON);
        assert_eq!(stats.invalidations, 2);
        assert_eq!(ProofCacheStats::new().hit_rate(), 0.0);
    }

    #[test]
    fn protocol_metrics_json_round_trip() {
        let m = ProtocolMetrics {
            messages: 17,
            proofs: 5,
            rounds: 2,
            forced_logs: 9,
            commits: 3,
            aborts: 1,
        };
        let text = m.to_json().render();
        let parsed = crate::Json::parse(&text).expect("valid json");
        assert_eq!(ProtocolMetrics::from_json(&parsed), Some(m));
        assert_eq!(ProtocolMetrics::from_json(&crate::Json::Null), None);
    }

    #[test]
    fn cache_stats_json_round_trip() {
        let s = ProofCacheStats {
            hits: 11,
            misses: 4,
            invalidations: 2,
        };
        let parsed = crate::Json::parse(&s.to_json().render()).expect("valid json");
        assert_eq!(ProofCacheStats::from_json(&parsed), Some(s));
    }

    #[test]
    fn fault_counters_merge_and_json_round_trip() {
        let mut c = FaultCounters {
            faults_dropped: 3,
            faults_delayed: 2,
            faults_duplicated: 1,
            faults_reordered: 4,
            faults_corrupted: 2,
            faults_truncated: 1,
            disconnects: 1,
            reconnect_exhausted: 1,
            server_crashes: 1,
            recoveries: 1,
            timeout_aborts: 2,
        };
        c.merge(&c.clone());
        assert_eq!(c.faults_dropped, 6);
        assert_eq!(c.faults_corrupted, 4);
        assert_eq!(c.faults_injected(), 28);
        let parsed = crate::Json::parse(&c.to_json().render()).expect("valid json");
        assert_eq!(FaultCounters::from_json(&parsed), Some(c));
        assert_eq!(FaultCounters::from_json(&crate::Json::Null), None);
    }

    #[test]
    fn cache_stats_sum() {
        let total: ProofCacheStats = (0..4)
            .map(|_| ProofCacheStats {
                hits: 2,
                misses: 1,
                invalidations: 1,
            })
            .sum();
        assert_eq!(total.hits, 8);
        assert_eq!(total.misses, 4);
        assert_eq!(total.invalidations, 4);
    }

    #[test]
    fn wal_stats_merge_json_and_savings() {
        let total: WalStats = (0..3)
            .map(|_| WalStats {
                forced_logs: 7,
                physical_syncs: 2,
            })
            .sum();
        assert_eq!(total.forced_logs, 21);
        assert_eq!(total.physical_syncs, 6);
        assert_eq!(total.syncs_saved(), 15);
        let parsed = crate::Json::parse(&total.to_json().render()).expect("valid json");
        assert_eq!(WalStats::from_json(&parsed), Some(total));
        assert_eq!(WalStats::from_json(&crate::Json::Null), None);
        assert_eq!(total.to_string(), "forced_logs=21 physical_syncs=6");
    }
}
