//! Sample-retaining histogram for latency summaries.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A histogram that retains raw samples (experiment scales here are small
/// enough that exact quantiles beat approximate sketches).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Non-finite samples are rejected.
    pub fn record(&mut self, sample: f64) {
        if sample.is_finite() {
            self.samples.push(sample);
            self.sorted = false;
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Smallest sample.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Quantile in `[0, 1]` by nearest-rank, or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Median (p50).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Machine-readable summary (count, mean, min/max, p50/p95/p99) for
    /// `BENCH_*.json` emitters. Empty histograms report `count: 0` and
    /// `null` statistics.
    pub fn to_json(&mut self) -> crate::Json {
        let opt = |v: Option<f64>| v.map_or(crate::Json::Null, crate::Json::Num);
        let mean = self.mean();
        let min = self.min();
        let max = self.max();
        crate::Json::object()
            .with("count", self.count())
            .with("mean", opt(mean))
            .with("min", opt(min))
            .with("max", opt(max))
            .with("p50", opt(self.quantile(0.5)))
            .with("p95", opt(self.quantile(0.95)))
            .with("p99", opt(self.quantile(0.99)))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(f, "n={} mean={:.3}", self.count(), mean),
            None => write!(f, "n=0"),
        }
    }
}

impl FromIterator<f64> for Histogram {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for s in iter {
            h.record(s);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_min_max() {
        let h: Histogram = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(h.mean(), Some(2.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(3.0));
    }

    #[test]
    fn quantiles_by_nearest_rank() {
        let mut h: Histogram = (1..=100).map(f64::from).collect();
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.95), Some(95.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.median(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn non_finite_samples_rejected() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a: Histogram = [1.0, 2.0].into_iter().collect();
        let b: Histogram = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean(), Some(2.5));
    }

    #[test]
    fn to_json_summarizes_and_round_trips() {
        let mut h: Histogram = (1..=100).map(f64::from).collect();
        let json = h.to_json();
        let parsed = crate::Json::parse(&json.render()).expect("valid json");
        assert_eq!(parsed.get("count").and_then(crate::Json::as_u64), Some(100));
        assert_eq!(parsed.get("p50").and_then(crate::Json::as_f64), Some(50.0));
        assert_eq!(parsed.get("p95").and_then(crate::Json::as_f64), Some(95.0));
        assert_eq!(parsed.get("p99").and_then(crate::Json::as_f64), Some(99.0));
        assert_eq!(parsed.get("min").and_then(crate::Json::as_f64), Some(1.0));
        assert_eq!(parsed.get("max").and_then(crate::Json::as_f64), Some(100.0));
    }

    #[test]
    fn empty_histogram_to_json_is_null_stats() {
        let json = Histogram::new().to_json();
        assert_eq!(json.get("count").and_then(crate::Json::as_u64), Some(0));
        assert_eq!(json.get("p99"), Some(&crate::Json::Null));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_quantile_panics() {
        let mut h: Histogram = [1.0].into_iter().collect();
        h.quantile(1.5);
    }
}
