//! Latency histogram: exact up to a retain cap, log-bucketed past it.
//!
//! Small experiments keep every raw sample, so quantiles are exact and
//! existing `BENCH_*.json` runs are byte-identical. Million-sample scale
//! sweeps (and merges of many per-shard histograms) would grow without
//! bound, so past [`RETAIN_CAP`] samples the histogram folds new samples
//! into log-linear buckets with a **bounded relative error**: each bucket
//! spans one `1/32` octave and reports its geometric midpoint, so any
//! quantile drawn from the folded region is within `2^(1/64) − 1 ≈ 1.1%`
//! of the true sample value. Counts, means, minima and maxima stay exact
//! in both regimes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Raw samples retained exactly before folding into buckets.
pub const RETAIN_CAP: usize = 8192;

/// Log-linear sub-buckets per octave (power of two). 32 gives a worst-case
/// relative quantile error of `2^(1/64) − 1 ≈ 1.1%` for folded samples.
const SUBDIV: f64 = 32.0;

/// Bucket key for non-positive samples (latencies are non-negative; a
/// folded zero reports exactly `0.0`).
const NONPOS_BUCKET: i64 = i64::MIN;

/// A histogram that retains raw samples up to [`RETAIN_CAP`] (exact
/// quantiles), then folds the overflow into log-linear buckets (quantiles
/// with ≤ ~1.1% relative error). [`Histogram::merge`] combines both
/// representations, so per-shard histograms aggregate into one report
/// without losing p95/p99 fidelity beyond that bound.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
    /// Folded samples by log-linear bucket (ascending key = ascending
    /// representative value, with [`NONPOS_BUCKET`] first).
    buckets: BTreeMap<i64, u64>,
    folded: u64,
    folded_sum: f64,
    folded_min: f64,
    folded_max: f64,
}

/// The log-linear bucket a positive sample falls into.
fn bucket_of(sample: f64) -> i64 {
    if sample <= 0.0 {
        NONPOS_BUCKET
    } else {
        (sample.log2() * SUBDIV).floor() as i64
    }
}

/// The representative value of a bucket: the geometric midpoint of its
/// bounds (exactly `0.0` for the non-positive bucket).
fn bucket_rep(bucket: i64) -> f64 {
    if bucket == NONPOS_BUCKET {
        0.0
    } else {
        ((bucket as f64 + 0.5) / SUBDIV).exp2()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Non-finite samples are rejected.
    pub fn record(&mut self, sample: f64) {
        if !sample.is_finite() {
            return;
        }
        if self.samples.len() < RETAIN_CAP {
            self.samples.push(sample);
            self.sorted = false;
        } else {
            self.fold(sample, 1);
        }
    }

    fn fold(&mut self, sample: f64, count: u64) {
        *self.buckets.entry(bucket_of(sample)).or_insert(0) += count;
        if self.folded == 0 {
            self.folded_min = sample;
            self.folded_max = sample;
        } else {
            self.folded_min = self.folded_min.min(sample);
            self.folded_max = self.folded_max.max(sample);
        }
        self.folded += count;
        self.folded_sum += sample * count as f64;
    }

    /// Number of samples (exact, folded or not).
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len() + self.folded as usize
    }

    /// True when no sample was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Arithmetic mean (exact in both regimes), or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            let sum = self.samples.iter().sum::<f64>() + self.folded_sum;
            Some(sum / self.count() as f64)
        }
    }

    /// Smallest sample (exact in both regimes).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        let retained = self.samples.iter().copied().reduce(f64::min);
        match (retained, self.folded > 0) {
            (Some(r), true) => Some(r.min(self.folded_min)),
            (None, true) => Some(self.folded_min),
            (r, false) => r,
        }
    }

    /// Largest sample (exact in both regimes).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        let retained = self.samples.iter().copied().reduce(f64::max);
        match (retained, self.folded > 0) {
            (Some(r), true) => Some(r.max(self.folded_max)),
            (None, true) => Some(self.folded_max),
            (r, false) => r,
        }
    }

    /// Quantile in `[0, 1]` by nearest-rank over the merged retained +
    /// folded distribution, or `None` when empty. Exact while everything
    /// is retained; folded samples answer with their bucket's
    /// representative (≤ ~1.1% relative error, see the module docs).
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let total = self.count();
        if total == 0 {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
        let rank = ((q * total as f64).ceil() as usize).clamp(1, total);
        // Merged ascending walk: sorted retained samples (weight 1 each)
        // interleaved with bucket representatives (bucket weight each).
        let mut cum = 0usize;
        let mut si = 0usize;
        let mut bi = self.buckets.iter().peekable();
        loop {
            let sample = self.samples.get(si).copied();
            let bucket = bi.peek().map(|(&b, &c)| (bucket_rep(b), c as usize));
            let take_sample = match (sample, bucket) {
                (Some(s), Some((rep, _))) => s <= rep,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("rank {rank} exceeds total {total}"),
            };
            if take_sample {
                cum += 1;
                si += 1;
                if cum >= rank {
                    return sample;
                }
            } else {
                let (rep, c) = bucket.expect("bucket branch");
                cum += c;
                bi.next();
                if cum >= rank {
                    return Some(rep);
                }
            }
        }
    }

    /// Median (p50).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Merges another histogram into this one: retained samples transfer
    /// exactly (folding only past [`RETAIN_CAP`]); folded buckets combine
    /// count-for-count, so the merged error bound is the same ~1.1% as
    /// each input's.
    pub fn merge(&mut self, other: &Histogram) {
        for &s in &other.samples {
            self.record(s);
        }
        for (&bucket, &count) in &other.buckets {
            self.fold(bucket_rep(bucket), count);
        }
        if other.folded > 0 {
            // fold() saw only representatives; restore the exact extremes
            // and sum the other side tracked.
            self.folded_min = self.folded_min.min(other.folded_min);
            self.folded_max = self.folded_max.max(other.folded_max);
            self.folded_sum += other.folded_sum
                - other
                    .buckets
                    .iter()
                    .map(|(&b, &c)| bucket_rep(b) * c as f64)
                    .sum::<f64>();
        }
    }

    /// Machine-readable summary (count, mean, min/max, p50/p95/p99) for
    /// `BENCH_*.json` emitters. Empty histograms report `count: 0` and
    /// `null` statistics.
    pub fn to_json(&mut self) -> crate::Json {
        let opt = |v: Option<f64>| v.map_or(crate::Json::Null, crate::Json::Num);
        let mean = self.mean();
        let min = self.min();
        let max = self.max();
        crate::Json::object()
            .with("count", self.count())
            .with("mean", opt(mean))
            .with("min", opt(min))
            .with("max", opt(max))
            .with("p50", opt(self.quantile(0.5)))
            .with("p95", opt(self.quantile(0.95)))
            .with("p99", opt(self.quantile(0.99)))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(f, "n={} mean={:.3}", self.count(), mean),
            None => write!(f, "n=0"),
        }
    }
}

impl FromIterator<f64> for Histogram {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for s in iter {
            h.record(s);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_min_max() {
        let h: Histogram = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(h.mean(), Some(2.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(3.0));
    }

    #[test]
    fn quantiles_by_nearest_rank() {
        let mut h: Histogram = (1..=100).map(f64::from).collect();
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.95), Some(95.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.median(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn non_finite_samples_rejected() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a: Histogram = [1.0, 2.0].into_iter().collect();
        let b: Histogram = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean(), Some(2.5));
    }

    #[test]
    fn to_json_summarizes_and_round_trips() {
        let mut h: Histogram = (1..=100).map(f64::from).collect();
        let json = h.to_json();
        let parsed = crate::Json::parse(&json.render()).expect("valid json");
        assert_eq!(parsed.get("count").and_then(crate::Json::as_u64), Some(100));
        assert_eq!(parsed.get("p50").and_then(crate::Json::as_f64), Some(50.0));
        assert_eq!(parsed.get("p95").and_then(crate::Json::as_f64), Some(95.0));
        assert_eq!(parsed.get("p99").and_then(crate::Json::as_f64), Some(99.0));
        assert_eq!(parsed.get("min").and_then(crate::Json::as_f64), Some(1.0));
        assert_eq!(parsed.get("max").and_then(crate::Json::as_f64), Some(100.0));
    }

    #[test]
    fn empty_histogram_to_json_is_null_stats() {
        let json = Histogram::new().to_json();
        assert_eq!(json.get("count").and_then(crate::Json::as_u64), Some(0));
        assert_eq!(json.get("p99"), Some(&crate::Json::Null));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_quantile_panics() {
        let mut h: Histogram = [1.0].into_iter().collect();
        h.quantile(1.5);
    }

    #[test]
    fn folding_keeps_counts_and_moments_exact() {
        let n = RETAIN_CAP + 10_000;
        let mut h = Histogram::new();
        let mut sum = 0.0;
        for i in 0..n {
            let v = (i % 1000) as f64 + 1.0;
            h.record(v);
            sum += v;
        }
        assert_eq!(h.count(), n);
        assert!((h.mean().unwrap() - sum / n as f64).abs() < 1e-9);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(1000.0));
    }

    #[test]
    fn folded_quantiles_stay_within_error_bound() {
        // Uniform 1..=1000, repeated far past the cap: every quantile of
        // the true distribution is known, and the folded answer must land
        // within the documented ~1.1% relative bound.
        let n = 4 * RETAIN_CAP;
        let mut h = Histogram::new();
        for i in 0..n {
            h.record((i % 1000) as f64 + 1.0);
        }
        let bound = (1.0f64 / 64.0).exp2() - 1.0 + 1e-12;
        for (q, truth) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q).unwrap();
            let rel = (got - truth).abs() / truth;
            // Nearest-rank granularity adds at most one bucket of slack on
            // top of the representative-value bound.
            assert!(
                rel <= 2.0 * bound + 2.0 / 1000.0,
                "q={q}: got {got}, truth {truth}, rel {rel}"
            );
        }
    }

    #[test]
    fn folded_memory_is_bounded() {
        let mut h = Histogram::new();
        for i in 0..(10 * RETAIN_CAP) {
            h.record((i as f64).max(0.5));
        }
        assert_eq!(h.samples.len(), RETAIN_CAP);
        // log2(10 * 8192) ≈ 16.3 octaves × 32 sub-buckets + slack.
        assert!(h.buckets.len() <= 17 * 32, "{} buckets", h.buckets.len());
        assert_eq!(h.count(), 10 * RETAIN_CAP);
    }

    #[test]
    fn merge_of_folded_histograms_preserves_count_mean_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..(2 * RETAIN_CAP) {
            a.record((i % 500) as f64 + 1.0);
            b.record((i % 500) as f64 + 501.0);
        }
        let (asum, bsum) = (
            a.mean().unwrap() * a.count() as f64,
            b.mean().unwrap() * b.count() as f64,
        );
        a.merge(&b);
        assert_eq!(a.count(), 4 * RETAIN_CAP);
        assert!((a.mean().unwrap() - (asum + bsum) / a.count() as f64).abs() < 1e-6);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(1000.0));
        let p99 = a.quantile(0.99).unwrap();
        assert!((960.0..=1005.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn zero_and_subnormal_samples_fold_to_zero_bucket() {
        let mut h = Histogram::new();
        for _ in 0..RETAIN_CAP {
            h.record(5.0);
        }
        h.record(0.0);
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.count(), RETAIN_CAP + 1);
        assert_eq!(h.quantile(0.0), Some(0.0));
    }
}
