//! Minimal ASCII table rendering for the reproduction binaries.

use std::fmt;

/// A column-aligned plain-text table.
///
/// # Examples
///
/// ```
/// use safetx_metrics::AsciiTable;
///
/// let mut t = AsciiTable::new(vec!["scheme", "messages"]);
/// t.row(vec!["Deferred".into(), "18".into()]);
/// let text = t.to_string();
/// assert!(text.contains("Deferred"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl AsciiTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        AsciiTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets an optional title line printed above the table.
    pub fn title(&mut self, title: impl Into<String>) -> &mut Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row. Short rows are padded with empty cells; long rows are
    /// truncated to the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data row exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        widths
    }
}

impl fmt::Display for AsciiTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        if let Some(title) = &self.title {
            writeln!(f, "{title}")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:<w$} |", w = w)?;
            }
            writeln!(f)
        };
        let rule = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        rule(f)?;
        write_row(f, &self.headers)?;
        rule(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        rule(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = AsciiTable::new(vec!["a", "long_header"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "rule, header, rule, row, rule");
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(text.contains("| xxxxx | 1           |"));
    }

    #[test]
    fn title_is_printed_first() {
        let mut t = AsciiTable::new(vec!["c"]);
        t.title("Table I");
        t.row(vec!["v".into()]);
        assert!(t.to_string().starts_with("Table I\n"));
    }

    #[test]
    fn short_rows_are_padded_and_long_rows_truncated() {
        let mut t = AsciiTable::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.len(), 2);
        let text = t.to_string();
        assert!(!text.contains('3'));
    }
}
