//! Minimal JSON tree, renderer and parser.
//!
//! The workspace builds offline: the vendored `serde` facade provides only
//! no-op derives, so machine-readable output is produced by this small
//! in-tree JSON implementation instead. It supports exactly what the bench
//! binaries need — objects (insertion-ordered), arrays, strings, finite
//! numbers, booleans and null — plus a strict parser so emitters can
//! round-trip-validate their own `BENCH_*.json` files.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite inputs render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a field on an object; no-op on other variants.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(fields) = &mut self {
            let value = value.into();
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                fields.push((key.to_string(), value));
            }
        }
        self
    }

    /// Looks up a field of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer count (rounds; `None` when negative
    /// or not a number).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(n.round() as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict: one value, nothing trailing).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing characters"));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A JSON syntax error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn at(offset: usize, message: &str) -> Self {
        ParseError {
            offset,
            message: message.to_string(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        // Integral values render without a fraction so counters stay exact.
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError::at(*pos, "unexpected token"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError::at(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(ParseError::at(*pos, "expected ':'"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(ParseError::at(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError::at(*pos, "expected '\"'"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| ParseError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| ParseError::at(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::at(*pos, "bad \\u escape"))?;
                        // Surrogates are unsupported (never emitted here).
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| ParseError::at(*pos, "bad \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(ParseError::at(*pos, "control char in string")),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so it's valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| ParseError::at(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at(start, "invalid number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| ParseError::at(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_nested_document() {
        let doc = Json::object()
            .with("name", "loadgen")
            .with("count", 42u64)
            .with("rate", 0.25)
            .with("ok", true)
            .with("nothing", Json::Null)
            .with(
                "cells",
                Json::Arr(vec![
                    Json::object().with("p50", 1.5),
                    Json::object().with("p50", 2.5),
                ]),
            );
        let text = doc.render();
        let back = Json::parse(&text).expect("round trip");
        assert_eq!(back, doc);
        assert_eq!(back.get("count").and_then(Json::as_u64), Some(42));
        assert_eq!(
            back.get("cells")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(-7.0).render(), "-7");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        let parsed = Json::parse(&original.render()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn with_replaces_existing_field() {
        let obj = Json::object().with("x", 1u64).with("x", 2u64);
        assert_eq!(obj.get("x").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nulL").is_err());
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let parsed = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        let a = parsed.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
    }
}
