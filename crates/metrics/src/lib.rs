//! Counters, histograms and ASCII table rendering for safetx experiments.
//!
//! The paper's evaluation (Section VI) measures protocols in **messages**,
//! **proof evaluations**, **voting rounds** and **forced log writes**;
//! [`ProtocolMetrics`] aggregates exactly those. [`Histogram`] summarizes
//! latency samples for the trade-off study, and [`AsciiTable`] renders the
//! reproduction tables printed by the bench binaries. [`Json`] is a small
//! in-tree JSON tree + parser (the vendored `serde` facade is derive-only)
//! so bench binaries can emit and validate machine-readable `BENCH_*.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod histogram;
mod json;
mod table;

pub use counters::{
    FaultCounters, ProofCacheStats, ProtocolMetrics, RouteCounters, TransportCounters, WalStats,
};
pub use histogram::Histogram;
pub use json::{Json, ParseError};
pub use table::AsciiTable;
