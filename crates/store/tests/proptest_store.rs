//! Property tests for the storage substrate: lock-manager exclusion
//! invariants and last-writer-wins replica convergence.

use proptest::prelude::*;
use safetx_store::{LocalStore, LockManager, LockMode, Value};
use safetx_types::{DataItemId, DataVersion, Timestamp, TxnId};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum LockOp {
    Acquire {
        txn: u64,
        item: u64,
        exclusive: bool,
    },
    ReleaseAll {
        txn: u64,
    },
}

fn lock_op() -> impl Strategy<Value = LockOp> {
    prop_oneof![
        (0u64..4, 0u64..3, any::<bool>()).prop_map(|(txn, item, exclusive)| LockOp::Acquire {
            txn,
            item,
            exclusive
        }),
        (0u64..4).prop_map(|txn| LockOp::ReleaseAll { txn }),
    ]
}

proptest! {
    /// Model-checked lock manager: after any operation sequence, no item
    /// has two exclusive holders or an exclusive holder alongside another
    /// sharer, and the manager's grants agree with an independent model.
    #[test]
    fn lock_manager_exclusion_invariants(ops in proptest::collection::vec(lock_op(), 0..60)) {
        let mut lm = LockManager::new();
        // Model: item -> (exclusive holder, sharers)
        let mut model: HashMap<u64, (Option<u64>, HashSet<u64>)> = HashMap::new();
        for op in ops {
            match op {
                LockOp::Acquire { txn, item, exclusive } => {
                    let granted = lm
                        .acquire(
                            TxnId::new(txn),
                            DataItemId::new(item),
                            if exclusive { LockMode::Exclusive } else { LockMode::Shared },
                        )
                        .is_granted();
                    let entry = model.entry(item).or_default();
                    let model_grants = if exclusive {
                        entry.0 == Some(txn)
                            || (entry.0.is_none()
                                && entry.1.iter().all(|&t| t == txn))
                    } else {
                        entry.0.is_none() || entry.0 == Some(txn)
                    };
                    prop_assert_eq!(granted, model_grants, "item {} txn {}", item, txn);
                    if granted {
                        if exclusive {
                            entry.0 = Some(txn);
                            entry.1.remove(&txn);
                        } else if entry.0 != Some(txn) {
                            entry.1.insert(txn);
                        }
                    }
                }
                LockOp::ReleaseAll { txn } => {
                    lm.release_all(TxnId::new(txn));
                    for entry in model.values_mut() {
                        if entry.0 == Some(txn) {
                            entry.0 = None;
                        }
                        entry.1.remove(&txn);
                    }
                }
            }
            // Invariant: `holds` agrees with the model everywhere.
            for (&item, (ex, sharers)) in &model {
                if let Some(holder) = ex {
                    prop_assert!(lm.holds(
                        TxnId::new(*holder),
                        DataItemId::new(item),
                        LockMode::Exclusive
                    ));
                    for other in 0..4u64 {
                        if other != *holder {
                            prop_assert!(!lm.holds(
                                TxnId::new(other),
                                DataItemId::new(item),
                                LockMode::Shared
                            ));
                        }
                    }
                }
                for &sharer in sharers {
                    prop_assert!(lm.holds(
                        TxnId::new(sharer),
                        DataItemId::new(item),
                        LockMode::Shared
                    ));
                }
            }
        }
    }

    /// LWW replication: replicas that receive the same updates in any
    /// orders converge to the same state.
    #[test]
    fn replicas_converge_under_any_delivery_order(
        updates in proptest::collection::vec((0u64..3, 0i64..100, 1u64..10), 1..20),
        perm in any::<u64>(),
    ) {
        let apply = |order: &[usize]| {
            let mut store = LocalStore::new();
            for &i in order {
                let (item, value, version) = updates[i];
                store.merge_remote(
                    DataItemId::new(item),
                    Value::Int(value),
                    DataVersion(version),
                    Timestamp::ZERO,
                );
            }
            store
        };
        let forward: Vec<usize> = (0..updates.len()).collect();
        // A deterministic shuffle derived from the seed.
        let mut shuffled = forward.clone();
        let mut state = perm;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let a = apply(&forward);
        let b = apply(&shuffled);
        // Same version sets must produce the same values wherever versions
        // are unique per item; ties keep the first writer, which differs by
        // order — so compare only items whose max version is unique.
        for item in 0..3u64 {
            let max_version = updates
                .iter()
                .filter(|(i, _, _)| *i == item)
                .map(|(_, _, v)| *v)
                .max();
            let Some(max_version) = max_version else { continue };
            let unique = updates
                .iter()
                .filter(|(i, _, v)| *i == item && *v == max_version)
                .count()
                == 1;
            if unique {
                prop_assert_eq!(
                    a.read_int(DataItemId::new(item)),
                    b.read_int(DataItemId::new(item)),
                    "item {} diverged",
                    item
                );
            }
        }
    }

    /// Write sets apply atomically: applying the same write set twice is
    /// idempotent on values (versions advance, values stay).
    #[test]
    fn write_set_apply_is_value_idempotent(
        writes in proptest::collection::vec((0u64..5, -50i64..50), 1..10),
    ) {
        let ws: safetx_store::WriteSet = writes
            .iter()
            .map(|&(i, v)| (DataItemId::new(i), Value::Int(v)))
            .collect();
        let mut store = LocalStore::new();
        store.apply(&ws, Timestamp::ZERO);
        let snapshot: Vec<Option<i64>> =
            (0..5).map(|i| store.read_int(DataItemId::new(i))).collect();
        store.apply(&ws, Timestamp::ZERO);
        let again: Vec<Option<i64>> =
            (0..5).map(|i| store.read_int(DataItemId::new(i))).collect();
        prop_assert_eq!(snapshot, again);
    }
}
