//! The per-server versioned key-value store.

use crate::value::Value;
use safetx_types::{DataItemId, DataVersion, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A data item with its replication version and last-update time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionedItem {
    /// Current value.
    pub value: Value,
    /// Replication version (last-writer-wins order).
    pub version: DataVersion,
    /// When the hosting replica last changed it.
    pub updated_at: Timestamp,
}

/// The buffered writes of one transaction at one server, applied atomically
/// on commit.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteSet {
    writes: BTreeMap<DataItemId, Value>,
}

impl WriteSet {
    /// Creates an empty write set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers a write (later writes to the same item win).
    pub fn put(&mut self, item: DataItemId, value: Value) {
        self.writes.insert(item, value);
    }

    /// The buffered value for `item`, if any.
    #[must_use]
    pub fn get(&self, item: DataItemId) -> Option<&Value> {
        self.writes.get(&item)
    }

    /// Iterates over buffered writes in item order.
    pub fn iter(&self) -> impl Iterator<Item = (DataItemId, &Value)> {
        self.writes.iter().map(|(&k, v)| (k, v))
    }

    /// Number of distinct items written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// True when no write is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }
}

impl FromIterator<(DataItemId, Value)> for WriteSet {
    fn from_iter<I: IntoIterator<Item = (DataItemId, Value)>>(iter: I) -> Self {
        let mut ws = WriteSet::new();
        for (k, v) in iter {
            ws.put(k, v);
        }
        ws
    }
}

/// A server-local versioned store.
///
/// # Examples
///
/// ```
/// use safetx_store::{LocalStore, Value};
/// use safetx_types::{DataItemId, Timestamp};
///
/// let mut store = LocalStore::new();
/// let x = DataItemId::new(0);
/// store.write(x, Value::Int(10), Timestamp::ZERO);
/// assert_eq!(store.read(x).unwrap().value, Value::Int(10));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalStore {
    items: BTreeMap<DataItemId, VersionedItem>,
}

impl LocalStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads an item.
    #[must_use]
    pub fn read(&self, item: DataItemId) -> Option<&VersionedItem> {
        self.items.get(&item)
    }

    /// Convenience: the integer value of an item, when present and numeric.
    #[must_use]
    pub fn read_int(&self, item: DataItemId) -> Option<i64> {
        self.read(item).and_then(|v| v.value.as_int())
    }

    /// Writes locally, bumping the replication version. Returns the new
    /// version.
    pub fn write(&mut self, item: DataItemId, value: Value, at: Timestamp) -> DataVersion {
        let next = self
            .items
            .get(&item)
            .map_or(DataVersion(1), |v| v.version.next());
        self.items.insert(
            item,
            VersionedItem {
                value,
                version: next,
                updated_at: at,
            },
        );
        next
    }

    /// Applies a whole write set atomically (the commit action of a
    /// participant). Returns the versions assigned, in item order.
    pub fn apply(&mut self, writes: &WriteSet, at: Timestamp) -> Vec<DataVersion> {
        writes
            .iter()
            .map(|(item, value)| self.write(item, value.clone(), at))
            .collect()
    }

    /// Merges a replicated update using last-writer-wins on the version
    /// (ties keep the local value, making merge idempotent). Returns `true`
    /// when the remote value was adopted.
    pub fn merge_remote(
        &mut self,
        item: DataItemId,
        value: Value,
        version: DataVersion,
        at: Timestamp,
    ) -> bool {
        match self.items.get(&item) {
            Some(local) if local.version >= version => false,
            _ => {
                self.items.insert(
                    item,
                    VersionedItem {
                        value,
                        version,
                        updated_at: at,
                    },
                );
                true
            }
        }
    }

    /// Iterates over all items in id order.
    pub fn iter(&self) -> impl Iterator<Item = (DataItemId, &VersionedItem)> {
        self.items.iter().map(|(&k, v)| (k, v))
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no item is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(n: u64) -> DataItemId {
        DataItemId::new(n)
    }

    #[test]
    fn write_bumps_version() {
        let mut s = LocalStore::new();
        let v1 = s.write(item(0), Value::Int(1), Timestamp::ZERO);
        let v2 = s.write(item(0), Value::Int(2), Timestamp::ZERO);
        assert!(v2 > v1);
        assert_eq!(s.read_int(item(0)), Some(2));
    }

    #[test]
    fn apply_write_set_is_atomic_and_ordered() {
        let mut s = LocalStore::new();
        let ws: WriteSet = [(item(2), Value::Int(2)), (item(1), Value::Int(1))]
            .into_iter()
            .collect();
        let versions = s.apply(&ws, Timestamp::from_millis(4));
        assert_eq!(versions.len(), 2);
        assert_eq!(s.read_int(item(1)), Some(1));
        assert_eq!(s.read_int(item(2)), Some(2));
        assert_eq!(
            s.read(item(1)).unwrap().updated_at,
            Timestamp::from_millis(4)
        );
    }

    #[test]
    fn write_set_last_write_wins_within_txn() {
        let mut ws = WriteSet::new();
        ws.put(item(0), Value::Int(1));
        ws.put(item(0), Value::Int(9));
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.get(item(0)), Some(&Value::Int(9)));
    }

    #[test]
    fn merge_remote_adopts_only_newer_versions() {
        let mut s = LocalStore::new();
        s.write(item(0), Value::Int(5), Timestamp::ZERO); // version 1
        assert!(!s.merge_remote(item(0), Value::Int(9), DataVersion(1), Timestamp::ZERO));
        assert_eq!(s.read_int(item(0)), Some(5), "tie keeps local");
        assert!(s.merge_remote(item(0), Value::Int(9), DataVersion(2), Timestamp::ZERO));
        assert_eq!(s.read_int(item(0)), Some(9));
        assert!(!s.merge_remote(item(0), Value::Int(1), DataVersion(1), Timestamp::ZERO));
        assert_eq!(s.read_int(item(0)), Some(9), "stale update ignored");
    }

    #[test]
    fn merge_remote_is_idempotent() {
        let mut a = LocalStore::new();
        a.merge_remote(item(3), Value::from("x"), DataVersion(4), Timestamp::ZERO);
        let snapshot = a.clone();
        a.merge_remote(item(3), Value::from("x"), DataVersion(4), Timestamp::ZERO);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn replicas_converge_regardless_of_delivery_order() {
        let updates = [
            (item(0), Value::Int(1), DataVersion(1)),
            (item(0), Value::Int(2), DataVersion(2)),
            (item(0), Value::Int(3), DataVersion(3)),
        ];
        let mut forward = LocalStore::new();
        for (i, v, ver) in updates.iter().cloned() {
            forward.merge_remote(i, v, ver, Timestamp::ZERO);
        }
        let mut backward = LocalStore::new();
        for (i, v, ver) in updates.iter().rev().cloned() {
            backward.merge_remote(i, v, ver, Timestamp::ZERO);
        }
        assert_eq!(forward.read_int(item(0)), backward.read_int(item(0)));
    }
}
