//! Stored values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The value of a data item.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit integer (account balances, stock counts, …).
    Int(i64),
    /// An opaque string (names, blobs, …).
    Str(String),
}

impl Value {
    /// The integer content, when this is an [`Value::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// The string content, when this is a [`Value::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_are_type_safe() {
        assert_eq!(Value::from(7).as_int(), Some(7));
        assert_eq!(Value::from(7).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from("x").as_int(), None);
    }

    #[test]
    fn display_quotes_strings_only() {
        assert_eq!(Value::from(3).to_string(), "3");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Value::default(), Value::Int(0));
    }
}
