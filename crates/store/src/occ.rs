//! Optimistic concurrency support: read-set stamps, snapshot-at-begin
//! multi-version reads, and the atomic validate-and-install primitive.
//!
//! Under `ConcurrencyMode::Occ` a transaction executes against a snapshot
//! of the store taken at its first query, records the version it observed
//! for every item it read, and defers all conflict detection to the 2PVC
//! voting phase: the participant votes YES only if every read stamp still
//! matches the live store (and short commit-scope pins can be taken). The
//! store-side pieces live here; the protocol-side fusion with the vote is
//! in `safetx-core`.

use crate::kv::{LocalStore, VersionedItem, WriteSet};
use safetx_types::{DataItemId, DataVersion, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The versions a transaction observed while reading, keyed by item.
///
/// `None` stamps an item that was absent when read — its continued absence
/// is part of validation (phantom-free for point reads). First read wins:
/// re-reading an item within the transaction keeps the original stamp, so
/// a snapshot read repeated after a foreign install still validates
/// against what the transaction actually saw.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadSet {
    stamps: BTreeMap<DataItemId, Option<DataVersion>>,
}

impl ReadSet {
    /// Creates an empty read set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the version observed for `item` (first read wins).
    pub fn record(&mut self, item: DataItemId, observed: Option<DataVersion>) {
        self.stamps.entry(item).or_insert(observed);
    }

    /// The recorded stamp for `item`: `None` if never read,
    /// `Some(None)` if read-as-absent.
    #[must_use]
    pub fn get(&self, item: DataItemId) -> Option<Option<DataVersion>> {
        self.stamps.get(&item).copied()
    }

    /// Iterates over stamps in item order.
    pub fn iter(&self) -> impl Iterator<Item = (DataItemId, Option<DataVersion>)> + '_ {
        self.stamps.iter().map(|(&k, &v)| (k, v))
    }

    /// Items read, in id order.
    pub fn items(&self) -> impl Iterator<Item = DataItemId> + '_ {
        self.stamps.keys().copied()
    }

    /// Number of distinct items read.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True when nothing was read.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }
}

impl FromIterator<(DataItemId, Option<DataVersion>)> for ReadSet {
    fn from_iter<I: IntoIterator<Item = (DataItemId, Option<DataVersion>)>>(iter: I) -> Self {
        let mut rs = ReadSet::new();
        for (k, v) in iter {
            rs.record(k, v);
        }
        rs
    }
}

impl LocalStore {
    /// The live version of `item`, `None` when absent.
    #[must_use]
    pub fn version_of(&self, item: DataItemId) -> Option<DataVersion> {
        self.read(item).map(|v| v.version)
    }

    /// OCC validation: every read stamp still matches the live store.
    ///
    /// An item stamped as absent must still be absent; an item stamped at
    /// version `v` must still be at exactly `v`.
    #[must_use]
    pub fn validate(&self, reads: &ReadSet) -> bool {
        reads
            .iter()
            .all(|(item, stamp)| self.version_of(item) == stamp)
    }

    /// The atomic OCC commit primitive: validate the read set against the
    /// live store and, only if every stamp holds, install the write set.
    /// Returns the versions assigned on success, `None` (store untouched)
    /// on a stale read set.
    ///
    /// Atomicity is by `&mut self` exclusion — callers on a shared store
    /// must serialize through whatever wraps it (the server protocol plane
    /// is single-threaded per server, which is what makes commit-scope
    /// pins plus this check sufficient for serializability).
    pub fn validate_and_install(
        &mut self,
        reads: &ReadSet,
        writes: &WriteSet,
        at: Timestamp,
    ) -> Option<Vec<DataVersion>> {
        if !self.validate(reads) {
            return None;
        }
        Some(self.apply(writes, at))
    }
}

/// A snapshot handle: all reads through it observe the store as of the
/// overlay epoch at which it was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotId(u64);

impl SnapshotId {
    /// The epoch this snapshot observes.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.0
    }
}

/// Before-image overlay giving snapshot (multi-version) reads over a
/// [`LocalStore`] without changing the store's own representation — the
/// locking mode never touches this, keeping its layout and behavior
/// byte-identical.
///
/// Installs advance an epoch counter; while snapshots are open, each
/// install records the prior state of every overwritten item tagged with
/// the epoch at which it was replaced. A snapshot taken at epoch `S`
/// reading item `i` scans `i`'s history for the earliest entry replaced
/// after `S` — that entry's before-image is the value as of `S`; with no
/// such entry the live value stands. History is garbage-collected as the
/// oldest open snapshot advances, and the whole overlay is dropped on a
/// server crash (volatile state, like the lock table).
#[derive(Debug, Clone, Default)]
pub struct MvccOverlay {
    epoch: u64,
    /// Open snapshots: epoch → refcount (several transactions may begin
    /// between two installs and share an epoch).
    active: BTreeMap<u64, usize>,
    /// item → [(replaced_at_epoch, before-image)] in ascending epoch
    /// order. `None` records the item as absent before the install.
    history: BTreeMap<DataItemId, Vec<(u64, Option<VersionedItem>)>>,
}

impl MvccOverlay {
    /// Creates an empty overlay at epoch 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a snapshot at the current epoch.
    pub fn begin_snapshot(&mut self) -> SnapshotId {
        *self.active.entry(self.epoch).or_insert(0) += 1;
        SnapshotId(self.epoch)
    }

    /// Closes a snapshot, releasing retained history no open snapshot can
    /// observe anymore. Tolerates snapshots orphaned by [`Self::clear`].
    pub fn release_snapshot(&mut self, snap: SnapshotId) {
        if let Some(count) = self.active.get_mut(&snap.0) {
            *count -= 1;
            if *count == 0 {
                self.active.remove(&snap.0);
            }
        }
        self.gc();
    }

    /// Reads `item` as of `snap`, falling back to the live store when no
    /// retained before-image is newer than the snapshot.
    #[must_use]
    pub fn read_at<'a>(
        &'a self,
        store: &'a LocalStore,
        snap: SnapshotId,
        item: DataItemId,
    ) -> Option<&'a VersionedItem> {
        if let Some(entries) = self.history.get(&item) {
            for (replaced_at, before) in entries {
                if *replaced_at > snap.0 {
                    return before.as_ref();
                }
            }
        }
        store.read(item)
    }

    /// Records the before-images an install is about to overwrite, then
    /// advances the epoch. Call immediately before `store.apply(writes)`.
    /// With no snapshot open, only the epoch advances (nothing to retain).
    pub fn record_install(&mut self, store: &LocalStore, writes: &WriteSet) {
        self.epoch += 1;
        if self.active.is_empty() {
            return;
        }
        for (item, _) in writes.iter() {
            self.history
                .entry(item)
                .or_default()
                .push((self.epoch, store.read(item).cloned()));
        }
    }

    /// Drops all overlay state (server crash: snapshots are volatile).
    pub fn clear(&mut self) {
        self.active.clear();
        self.history.clear();
    }

    /// True when no snapshot is open and no history is retained.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.active.is_empty() && self.history.is_empty()
    }

    fn gc(&mut self) {
        match self.active.keys().next().copied() {
            None => self.history.clear(),
            Some(oldest) => {
                // An entry replaced at epoch e serves only snapshots with
                // S < e; drop entries no open snapshot can reach.
                self.history.retain(|_, entries| {
                    entries.retain(|(e, _)| *e > oldest);
                    !entries.is_empty()
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn item(n: u64) -> DataItemId {
        DataItemId::new(n)
    }

    #[test]
    fn read_set_first_read_wins() {
        let mut rs = ReadSet::new();
        rs.record(item(0), Some(DataVersion(1)));
        rs.record(item(0), Some(DataVersion(9)));
        assert_eq!(rs.get(item(0)), Some(Some(DataVersion(1))));
        rs.record(item(1), None);
        assert_eq!(rs.get(item(1)), Some(None));
        assert_eq!(rs.get(item(2)), None);
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn validate_checks_exact_versions_and_absence() {
        let mut store = LocalStore::new();
        store.write(item(0), Value::Int(1), Timestamp::ZERO);
        let rs: ReadSet = [(item(0), Some(DataVersion(1))), (item(1), None)]
            .into_iter()
            .collect();
        assert!(store.validate(&rs));
        store.write(item(0), Value::Int(2), Timestamp::ZERO);
        assert!(!store.validate(&rs), "stale version must fail");
        let rs_absent: ReadSet = [(item(1), None)].into_iter().collect();
        assert!(store.validate(&rs_absent));
        store.write(item(1), Value::Int(7), Timestamp::ZERO);
        assert!(!store.validate(&rs_absent), "appeared item must fail");
    }

    #[test]
    fn validate_and_install_is_all_or_nothing() {
        let mut store = LocalStore::new();
        store.write(item(0), Value::Int(1), Timestamp::ZERO);
        let rs: ReadSet = [(item(0), Some(DataVersion(1)))].into_iter().collect();
        let ws: WriteSet = [(item(0), Value::Int(2)), (item(1), Value::Int(3))]
            .into_iter()
            .collect();
        let versions = store
            .validate_and_install(&rs, &ws, Timestamp::ZERO)
            .expect("fresh stamps install");
        assert_eq!(versions.len(), 2);
        assert_eq!(store.read_int(item(0)), Some(2));
        assert_eq!(store.read_int(item(1)), Some(3));

        // Now the stamp is stale; nothing may change.
        let ws2: WriteSet = [(item(1), Value::Int(99))].into_iter().collect();
        assert!(store
            .validate_and_install(&rs, &ws2, Timestamp::ZERO)
            .is_none());
        assert_eq!(
            store.read_int(item(1)),
            Some(3),
            "store untouched on failure"
        );
    }

    #[test]
    fn snapshot_reads_see_begin_state_across_installs() {
        let mut store = LocalStore::new();
        let mut mvcc = MvccOverlay::new();
        store.write(item(0), Value::Int(10), Timestamp::ZERO);

        let snap = mvcc.begin_snapshot();
        assert_eq!(
            mvcc.read_at(&store, snap, item(0)).map(|v| v.value.clone()),
            Some(Value::Int(10))
        );

        // A foreign commit installs over item 0 and creates item 1.
        let ws: WriteSet = [(item(0), Value::Int(20)), (item(1), Value::Int(1))]
            .into_iter()
            .collect();
        mvcc.record_install(&store, &ws);
        store.apply(&ws, Timestamp::ZERO);

        // The snapshot still sees begin-time state.
        assert_eq!(
            mvcc.read_at(&store, snap, item(0)).map(|v| v.value.clone()),
            Some(Value::Int(10))
        );
        assert!(mvcc.read_at(&store, snap, item(1)).is_none());

        // A fresh snapshot sees the new state.
        let snap2 = mvcc.begin_snapshot();
        assert_eq!(
            mvcc.read_at(&store, snap2, item(0))
                .map(|v| v.value.clone()),
            Some(Value::Int(20))
        );
        assert_eq!(
            mvcc.read_at(&store, snap2, item(1))
                .map(|v| v.value.clone()),
            Some(Value::Int(1))
        );

        mvcc.release_snapshot(snap);
        mvcc.release_snapshot(snap2);
        assert!(mvcc.is_quiescent(), "history gc'd when snapshots close");
    }

    #[test]
    fn snapshot_picks_earliest_before_image_after_its_epoch() {
        let mut store = LocalStore::new();
        let mut mvcc = MvccOverlay::new();
        store.write(item(0), Value::Int(1), Timestamp::ZERO);
        let snap = mvcc.begin_snapshot();
        for n in [2, 3, 4] {
            let ws: WriteSet = [(item(0), Value::Int(n))].into_iter().collect();
            mvcc.record_install(&store, &ws);
            store.apply(&ws, Timestamp::ZERO);
        }
        assert_eq!(
            mvcc.read_at(&store, snap, item(0)).map(|v| v.value.clone()),
            Some(Value::Int(1)),
            "oldest retained before-image wins, not the latest"
        );
        mvcc.release_snapshot(snap);
    }

    #[test]
    fn clear_orphans_snapshots_without_panicking() {
        let mut store = LocalStore::new();
        let mut mvcc = MvccOverlay::new();
        let snap = mvcc.begin_snapshot();
        let ws: WriteSet = [(item(0), Value::Int(1))].into_iter().collect();
        mvcc.record_install(&store, &ws);
        store.apply(&ws, Timestamp::ZERO);
        mvcc.clear();
        assert!(mvcc.is_quiescent());
        mvcc.release_snapshot(snap); // must be a no-op, not a panic
        assert!(mvcc.is_quiescent());
    }

    #[test]
    fn record_install_without_open_snapshots_retains_nothing() {
        let mut store = LocalStore::new();
        let mut mvcc = MvccOverlay::new();
        let ws: WriteSet = [(item(0), Value::Int(1))].into_iter().collect();
        mvcc.record_install(&store, &ws);
        store.apply(&ws, Timestamp::ZERO);
        assert!(mvcc.is_quiescent());
    }
}
