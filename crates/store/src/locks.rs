//! Strict two-phase locking.
//!
//! Participants take shared locks for reads and exclusive locks for writes
//! as queries execute, and hold them until the 2PC/2PVC decision arrives
//! (strictness); conflicts are reported to the caller, which may abort the
//! transaction (no-wait policy — simple and deadlock-free, appropriate for
//! the simulation's sequential query model).

use safetx_types::{DataItemId, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockMode {
    /// Shared (read) — compatible with other shared locks.
    Shared,
    /// Exclusive (write) — compatible with nothing.
    Exclusive,
}

/// Result of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockOutcome {
    /// The lock was granted (or was already held in a sufficient mode).
    Granted,
    /// Another transaction holds an incompatible lock.
    Conflict {
        /// One of the conflicting holders.
        holder: TxnId,
    },
}

impl LockOutcome {
    /// True when the request succeeded.
    #[must_use]
    pub fn is_granted(self) -> bool {
        matches!(self, LockOutcome::Granted)
    }
}

#[derive(Debug, Clone, Default)]
struct ItemLock {
    sharers: BTreeSet<TxnId>,
    exclusive: Option<TxnId>,
}

/// A no-wait lock manager for one server.
///
/// # Examples
///
/// ```
/// use safetx_store::{LockManager, LockMode};
/// use safetx_types::{DataItemId, TxnId};
///
/// let mut lm = LockManager::new();
/// let x = DataItemId::new(0);
/// assert!(lm.acquire(TxnId::new(1), x, LockMode::Shared).is_granted());
/// assert!(!lm.acquire(TxnId::new(2), x, LockMode::Exclusive).is_granted());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LockManager {
    locks: HashMap<DataItemId, ItemLock>,
}

impl LockManager {
    /// Creates an empty lock manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a lock, upgrading shared→exclusive when the requester is the
    /// sole sharer.
    pub fn acquire(&mut self, txn: TxnId, item: DataItemId, mode: LockMode) -> LockOutcome {
        let lock = self.locks.entry(item).or_default();
        match mode {
            LockMode::Shared => match lock.exclusive {
                Some(holder) if holder != txn => LockOutcome::Conflict { holder },
                Some(_) => LockOutcome::Granted, // own exclusive covers shared
                None => {
                    lock.sharers.insert(txn);
                    LockOutcome::Granted
                }
            },
            LockMode::Exclusive => {
                if let Some(holder) = lock.exclusive {
                    return if holder == txn {
                        LockOutcome::Granted
                    } else {
                        LockOutcome::Conflict { holder }
                    };
                }
                match lock.sharers.iter().find(|&&t| t != txn) {
                    Some(&holder) => LockOutcome::Conflict { holder },
                    None => {
                        lock.sharers.remove(&txn);
                        lock.exclusive = Some(txn);
                        LockOutcome::Granted
                    }
                }
            }
        }
    }

    /// Releases every lock held by `txn` (commit or abort). Returns the
    /// number of items released.
    pub fn release_all(&mut self, txn: TxnId) -> usize {
        let mut released = 0;
        self.locks.retain(|_, lock| {
            if lock.exclusive == Some(txn) {
                lock.exclusive = None;
                released += 1;
            }
            if lock.sharers.remove(&txn) {
                released += 1;
            }
            lock.exclusive.is_some() || !lock.sharers.is_empty()
        });
        released
    }

    /// True when `txn` holds a lock on `item` in at least `mode`.
    #[must_use]
    pub fn holds(&self, txn: TxnId, item: DataItemId, mode: LockMode) -> bool {
        let Some(lock) = self.locks.get(&item) else {
            return false;
        };
        match mode {
            LockMode::Shared => lock.sharers.contains(&txn) || lock.exclusive == Some(txn),
            LockMode::Exclusive => lock.exclusive == Some(txn),
        }
    }

    /// Number of items currently locked by anyone.
    #[must_use]
    pub fn locked_items(&self) -> usize {
        self.locks.len()
    }
}

/// Number of independent lock shards in a [`ShardedLockManager`].
///
/// Fixed (not configurable) so the item→shard mapping is stable; 16 shards
/// keep contention negligible for the worker-pool sizes the runtime spawns
/// (`SAFETX_SERVER_WORKERS` defaults to `min(4, cores)`).
pub const LOCK_SHARDS: usize = 16;

/// A sharded, internally-synchronized no-wait lock manager.
///
/// Same per-item semantics as [`LockManager`] (shared/exclusive modes,
/// sole-sharer upgrade, own-exclusive-covers-shared, no-wait conflicts), but
/// the item space is split across [`LOCK_SHARDS`] independently-locked maps
/// keyed by a hash of the [`DataItemId`]. Worker threads acquiring locks for
/// different items proceed in parallel instead of funneling through one map,
/// and all methods take `&self`, so the manager can be shared behind an
/// `Arc` without an outer mutex.
///
/// Since each item maps to exactly one shard, per-item mutual exclusion (the
/// only invariant the no-wait protocol needs) is preserved: two requests for
/// the same item always serialize on the same shard lock. `release_all`
/// visits every shard, which is exactly what the single-map `retain` did.
///
/// # Examples
///
/// ```
/// use safetx_store::{LockMode, ShardedLockManager};
/// use safetx_types::{DataItemId, TxnId};
///
/// let lm = ShardedLockManager::new();
/// let x = DataItemId::new(0);
/// assert!(lm.acquire(TxnId::new(1), x, LockMode::Shared).is_granted());
/// assert!(!lm.acquire(TxnId::new(2), x, LockMode::Exclusive).is_granted());
/// ```
#[derive(Debug, Default)]
pub struct ShardedLockManager {
    shards: [Mutex<LockManager>; LOCK_SHARDS],
}

impl ShardedLockManager {
    /// Creates an empty sharded lock manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, item: DataItemId) -> &Mutex<LockManager> {
        // Multiplicative (Fibonacci) mix so clustered item ids still spread
        // across shards; the map inside each shard re-hashes anyway.
        let mixed = item.index().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 60) as usize % LOCK_SHARDS]
    }

    /// Requests a lock, upgrading shared→exclusive when the requester is the
    /// sole sharer. See [`LockManager::acquire`].
    pub fn acquire(&self, txn: TxnId, item: DataItemId, mode: LockMode) -> LockOutcome {
        self.shard(item)
            .lock()
            .expect("lock shard poisoned")
            .acquire(txn, item, mode)
    }

    /// Releases every lock held by `txn` across all shards (commit or
    /// abort). Returns the number of items released.
    pub fn release_all(&self, txn: TxnId) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lock shard poisoned").release_all(txn))
            .sum()
    }

    /// True when `txn` holds a lock on `item` in at least `mode`.
    #[must_use]
    pub fn holds(&self, txn: TxnId, item: DataItemId, mode: LockMode) -> bool {
        self.shard(item)
            .lock()
            .expect("lock shard poisoned")
            .holds(txn, item, mode)
    }

    /// Number of items currently locked by anyone.
    #[must_use]
    pub fn locked_items(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lock shard poisoned").locked_items())
            .sum()
    }

    /// Drops every lock (server crash wipes volatile state).
    pub fn clear(&self) {
        for shard in &self.shards {
            *shard.lock().expect("lock shard poisoned") = LockManager::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (TxnId, TxnId, DataItemId) {
        (TxnId::new(1), TxnId::new(2), DataItemId::new(0))
    }

    #[test]
    fn shared_locks_coexist() {
        let (t1, t2, x) = ids();
        let mut lm = LockManager::new();
        assert!(lm.acquire(t1, x, LockMode::Shared).is_granted());
        assert!(lm.acquire(t2, x, LockMode::Shared).is_granted());
        assert!(lm.holds(t1, x, LockMode::Shared));
        assert!(lm.holds(t2, x, LockMode::Shared));
    }

    #[test]
    fn exclusive_excludes_everything() {
        let (t1, t2, x) = ids();
        let mut lm = LockManager::new();
        assert!(lm.acquire(t1, x, LockMode::Exclusive).is_granted());
        assert_eq!(
            lm.acquire(t2, x, LockMode::Shared),
            LockOutcome::Conflict { holder: t1 }
        );
        assert_eq!(
            lm.acquire(t2, x, LockMode::Exclusive),
            LockOutcome::Conflict { holder: t1 }
        );
    }

    #[test]
    fn reacquire_is_idempotent_and_own_exclusive_covers_shared() {
        let (t1, _, x) = ids();
        let mut lm = LockManager::new();
        assert!(lm.acquire(t1, x, LockMode::Exclusive).is_granted());
        assert!(lm.acquire(t1, x, LockMode::Exclusive).is_granted());
        assert!(lm.acquire(t1, x, LockMode::Shared).is_granted());
        assert!(lm.holds(t1, x, LockMode::Shared));
    }

    #[test]
    fn sole_sharer_upgrades() {
        let (t1, t2, x) = ids();
        let mut lm = LockManager::new();
        assert!(lm.acquire(t1, x, LockMode::Shared).is_granted());
        assert!(lm.acquire(t1, x, LockMode::Exclusive).is_granted());
        assert!(lm.holds(t1, x, LockMode::Exclusive));
        assert!(!lm.acquire(t2, x, LockMode::Shared).is_granted());
    }

    #[test]
    fn upgrade_blocked_by_other_sharer() {
        let (t1, t2, x) = ids();
        let mut lm = LockManager::new();
        assert!(lm.acquire(t1, x, LockMode::Shared).is_granted());
        assert!(lm.acquire(t2, x, LockMode::Shared).is_granted());
        assert_eq!(
            lm.acquire(t1, x, LockMode::Exclusive),
            LockOutcome::Conflict { holder: t2 }
        );
    }

    #[test]
    fn release_all_frees_items() {
        let (t1, t2, x) = ids();
        let y = DataItemId::new(1);
        let mut lm = LockManager::new();
        lm.acquire(t1, x, LockMode::Exclusive);
        lm.acquire(t1, y, LockMode::Shared);
        assert_eq!(lm.release_all(t1), 2);
        assert_eq!(lm.locked_items(), 0);
        assert!(lm.acquire(t2, x, LockMode::Exclusive).is_granted());
    }

    #[test]
    fn release_preserves_other_holders() {
        let (t1, t2, x) = ids();
        let mut lm = LockManager::new();
        lm.acquire(t1, x, LockMode::Shared);
        lm.acquire(t2, x, LockMode::Shared);
        lm.release_all(t1);
        assert!(lm.holds(t2, x, LockMode::Shared));
        assert!(!lm.holds(t1, x, LockMode::Shared));
    }

    #[test]
    fn sharded_matches_single_map_semantics() {
        let (t1, t2, x) = ids();
        let lm = ShardedLockManager::new();
        // Shared coexistence.
        assert!(lm.acquire(t1, x, LockMode::Shared).is_granted());
        assert!(lm.acquire(t2, x, LockMode::Shared).is_granted());
        // Upgrade blocked by the other sharer.
        assert_eq!(
            lm.acquire(t1, x, LockMode::Exclusive),
            LockOutcome::Conflict { holder: t2 }
        );
        lm.release_all(t2);
        // Sole-sharer upgrade; own exclusive covers shared.
        assert!(lm.acquire(t1, x, LockMode::Exclusive).is_granted());
        assert!(lm.acquire(t1, x, LockMode::Shared).is_granted());
        assert!(lm.holds(t1, x, LockMode::Exclusive));
        assert_eq!(
            lm.acquire(t2, x, LockMode::Shared),
            LockOutcome::Conflict { holder: t1 }
        );
    }

    #[test]
    fn sharded_release_all_spans_shards() {
        let t1 = TxnId::new(1);
        let lm = ShardedLockManager::new();
        // Enough distinct items to land in several shards.
        for i in 0..64 {
            assert!(lm
                .acquire(t1, DataItemId::new(i), LockMode::Exclusive)
                .is_granted());
        }
        assert_eq!(lm.locked_items(), 64);
        assert_eq!(lm.release_all(t1), 64);
        assert_eq!(lm.locked_items(), 0);
    }

    #[test]
    fn sharded_clear_wipes_everything() {
        let (t1, t2, x) = ids();
        let lm = ShardedLockManager::new();
        lm.acquire(t1, x, LockMode::Exclusive);
        lm.clear();
        assert_eq!(lm.locked_items(), 0);
        assert!(lm.acquire(t2, x, LockMode::Exclusive).is_granted());
    }

    #[test]
    fn sharded_is_consistent_under_concurrent_hammering() {
        use std::sync::Arc;
        let lm = Arc::new(ShardedLockManager::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let lm = Arc::clone(&lm);
                std::thread::spawn(move || {
                    let txn = TxnId::new(t);
                    let mut granted = Vec::new();
                    for i in 0..256 {
                        let item = DataItemId::new(i % 32);
                        if lm.acquire(txn, item, LockMode::Exclusive).is_granted() {
                            granted.push(item);
                            assert!(lm.holds(txn, item, LockMode::Exclusive));
                        }
                    }
                    granted.sort_unstable();
                    granted.dedup();
                    assert_eq!(lm.release_all(txn), granted.len());
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(lm.locked_items(), 0);
    }
}
