//! Write-ahead logging.
//!
//! 2PC's resilience "can be achieved … by recording the progress of the
//! protocol in the logs of the TM and participant"; 2PVC additionally
//! force-logs the `(vi, pi)` policy-version tuples with each vote. [`Wal`]
//! models a durable, append-only log with the forced/non-forced distinction
//! that the paper's log-complexity metric (`2n + 1` forced writes) counts.
//!
//! Durability model: everything appended before a crash survives it —
//! the simulator never loses log records, it only loses volatile actor
//! state. *Forced* records are counted separately because forcing is the
//! expensive operation in the metric.
//!
//! # Logical forces vs physical syncs
//!
//! The paper's `2n + 1` metric counts *logical* forces: how many times the
//! protocol demanded a record be durable before proceeding. A real log
//! device amortizes those demands with **group commit**: every force issued
//! inside a [`Wal::begin_group`]/[`Wal::end_group`] window is made durable
//! by a single physical sync at the end of the window. [`Wal::forced_count`]
//! keeps the paper's per-transaction accounting byte-identical whether or
//! not grouping is active; [`Wal::physical_sync_count`] counts the actual
//! device syncs the amortization saves. An optional per-sync cost
//! ([`Wal::set_sync_cost`]) models the device latency a sync pays, so
//! benchmarks can show the wall-clock effect of coalescing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One log record with its durability class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalEntry<R> {
    /// The application record.
    pub record: R,
    /// Whether the append was forced (synchronously durable before the
    /// protocol proceeded).
    pub forced: bool,
}

/// An append-only write-ahead log.
///
/// # Examples
///
/// ```
/// use safetx_store::Wal;
///
/// let mut wal: Wal<&str> = Wal::new();
/// wal.force("prepared");
/// wal.append("end");
/// assert_eq!(wal.forced_count(), 1);
/// assert_eq!(wal.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Wal<R> {
    entries: Vec<WalEntry<R>>,
    forced: u64,
    /// Physical device syncs performed (≤ `forced`; strictly fewer when
    /// group commit coalesced forces).
    physical: u64,
    /// Open `begin_group` windows (nesting supported; only the outermost
    /// `end_group` syncs).
    group_depth: u32,
    /// A force happened inside the current group window and its sync is
    /// still owed.
    pending_sync: bool,
    /// Modeled device latency of one physical sync, in nanoseconds.
    sync_cost_nanos: u64,
}

impl<R> Default for Wal<R> {
    fn default() -> Self {
        Wal {
            entries: Vec::new(),
            forced: 0,
            physical: 0,
            group_depth: 0,
            pending_sync: false,
            sync_cost_nanos: 0,
        }
    }
}

impl<R> Wal<R> {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a forced (synchronously durable) record. Outside a group
    /// window the sync happens immediately (one physical sync per force,
    /// the classic behaviour); inside a window the sync is deferred to
    /// [`Wal::end_group`]. Either way the logical force count — the
    /// paper's metric — advances by exactly one.
    pub fn force(&mut self, record: R) {
        self.entries.push(WalEntry {
            record,
            forced: true,
        });
        self.forced += 1;
        if self.group_depth > 0 {
            self.pending_sync = true;
        } else {
            self.physical_sync();
        }
    }

    /// Opens a group-commit window: forces issued until the matching
    /// [`Wal::end_group`] share one physical sync. Windows nest; only the
    /// outermost close syncs.
    pub fn begin_group(&mut self) {
        self.group_depth += 1;
    }

    /// Closes a group-commit window. Closing the outermost window performs
    /// one physical sync covering every force issued inside it (none if no
    /// force happened). Records forced in the window are durable once this
    /// returns — callers must not release replies that depend on those
    /// forces before calling it.
    pub fn end_group(&mut self) {
        debug_assert!(self.group_depth > 0, "end_group without begin_group");
        self.group_depth = self.group_depth.saturating_sub(1);
        if self.group_depth == 0 && self.pending_sync {
            self.pending_sync = false;
            self.physical_sync();
        }
    }

    /// Sets the modeled device latency of one physical sync. Zero (the
    /// default) makes syncs free, preserving pure-counter behaviour.
    pub fn set_sync_cost(&mut self, cost: std::time::Duration) {
        self.sync_cost_nanos = u64::try_from(cost.as_nanos()).unwrap_or(u64::MAX);
    }

    /// The modeled device latency of one physical sync.
    #[must_use]
    pub fn sync_cost(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.sync_cost_nanos)
    }

    /// One physical device sync: pays the modeled latency and counts it.
    fn physical_sync(&mut self) {
        self.physical += 1;
        if self.sync_cost_nanos > 0 {
            let deadline =
                std::time::Instant::now() + std::time::Duration::from_nanos(self.sync_cost_nanos);
            while std::time::Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
    }

    /// Appends a non-forced record (durable eventually; cheap).
    pub fn append(&mut self, record: R) {
        self.entries.push(WalEntry {
            record,
            forced: false,
        });
    }

    /// All entries, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[WalEntry<R>] {
        &self.entries
    }

    /// Iterates over the records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &R> {
        self.entries.iter().map(|e| &e.record)
    }

    /// The most recent record, if any.
    #[must_use]
    pub fn last(&self) -> Option<&R> {
        self.entries.last().map(|e| &e.record)
    }

    /// Number of forced appends so far (the paper's log-complexity metric).
    /// Unaffected by group commit: a coalesced force still counts.
    #[must_use]
    pub fn forced_count(&self) -> u64 {
        self.forced
    }

    /// Number of physical device syncs performed. Equals
    /// [`Wal::forced_count`] without group commit; strictly smaller when
    /// any group window coalesced two or more forces.
    #[must_use]
    pub fn physical_sync_count(&self) -> u64 {
        self.physical
    }

    /// Total entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<R: fmt::Display> fmt::Display for Wal<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(
                f,
                "{} {}",
                if e.forced { "FORCE" } else { "write" },
                e.record
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_preserved() {
        let mut wal = Wal::new();
        wal.force(1);
        wal.append(2);
        wal.force(3);
        let recs: Vec<i32> = wal.records().copied().collect();
        assert_eq!(recs, vec![1, 2, 3]);
        assert_eq!(wal.last(), Some(&3));
    }

    #[test]
    fn forced_count_tracks_only_forces() {
        let mut wal = Wal::new();
        for i in 0..5 {
            wal.append(i);
        }
        wal.force(99);
        assert_eq!(wal.forced_count(), 1);
        assert_eq!(wal.len(), 6);
    }

    #[test]
    fn display_marks_durability_class() {
        let mut wal = Wal::new();
        wal.force("prepared");
        wal.append("end");
        let text = wal.to_string();
        assert!(text.contains("FORCE prepared"));
        assert!(text.contains("write end"));
    }

    #[test]
    fn empty_log_reports_empty() {
        let wal: Wal<u8> = Wal::new();
        assert!(wal.is_empty());
        assert_eq!(wal.last(), None);
    }

    #[test]
    fn ungrouped_forces_sync_one_to_one() {
        let mut wal = Wal::new();
        for i in 0..4 {
            wal.force(i);
        }
        wal.append(99);
        assert_eq!(wal.forced_count(), 4);
        assert_eq!(wal.physical_sync_count(), 4, "no group: one sync per force");
    }

    #[test]
    fn group_commit_coalesces_physical_syncs_without_touching_logical_count() {
        let mut wal = Wal::new();
        wal.force(0); // classic force before the window
        wal.begin_group();
        wal.force(1);
        wal.append(2);
        wal.force(3);
        wal.force(4);
        // Nothing synced yet: the window is still open.
        assert_eq!(wal.physical_sync_count(), 1);
        wal.end_group();
        assert_eq!(
            wal.forced_count(),
            4,
            "logical metric unchanged by grouping"
        );
        assert_eq!(
            wal.physical_sync_count(),
            2,
            "three grouped forces, one sync"
        );
        // Entry durability classes are untouched.
        let forced: Vec<bool> = wal.entries().iter().map(|e| e.forced).collect();
        assert_eq!(forced, vec![true, true, false, true, true]);
    }

    #[test]
    fn empty_group_performs_no_sync() {
        let mut wal: Wal<u8> = Wal::new();
        wal.begin_group();
        wal.append(1);
        wal.end_group();
        assert_eq!(wal.forced_count(), 0);
        assert_eq!(wal.physical_sync_count(), 0);
    }

    #[test]
    fn nested_groups_sync_once_at_the_outermost_close() {
        let mut wal = Wal::new();
        wal.begin_group();
        wal.force(1);
        wal.begin_group();
        wal.force(2);
        wal.end_group();
        assert_eq!(wal.physical_sync_count(), 0, "inner close must not sync");
        wal.end_group();
        assert_eq!(wal.forced_count(), 2);
        assert_eq!(wal.physical_sync_count(), 1);
    }

    #[test]
    fn sync_cost_is_paid_per_physical_sync() {
        let mut wal = Wal::new();
        wal.set_sync_cost(std::time::Duration::from_micros(200));
        assert_eq!(wal.sync_cost(), std::time::Duration::from_micros(200));
        let start = std::time::Instant::now();
        wal.begin_group();
        for i in 0..8 {
            wal.force(i);
        }
        wal.end_group();
        let grouped = start.elapsed();
        assert_eq!(wal.physical_sync_count(), 1);
        // Eight coalesced forces paid one sync, not eight: well under the
        // 8 × 200µs an ungrouped log would spin.
        assert!(
            grouped < std::time::Duration::from_micros(8 * 200),
            "group window paid more than one sync: {grouped:?}"
        );
    }
}
