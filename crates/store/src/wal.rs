//! Write-ahead logging.
//!
//! 2PC's resilience "can be achieved … by recording the progress of the
//! protocol in the logs of the TM and participant"; 2PVC additionally
//! force-logs the `(vi, pi)` policy-version tuples with each vote. [`Wal`]
//! models a durable, append-only log with the forced/non-forced distinction
//! that the paper's log-complexity metric (`2n + 1` forced writes) counts.
//!
//! Durability model: everything appended before a crash survives it —
//! the simulator never loses log records, it only loses volatile actor
//! state. *Forced* records are counted separately because forcing is the
//! expensive operation in the metric.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One log record with its durability class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalEntry<R> {
    /// The application record.
    pub record: R,
    /// Whether the append was forced (synchronously durable before the
    /// protocol proceeded).
    pub forced: bool,
}

/// An append-only write-ahead log.
///
/// # Examples
///
/// ```
/// use safetx_store::Wal;
///
/// let mut wal: Wal<&str> = Wal::new();
/// wal.force("prepared");
/// wal.append("end");
/// assert_eq!(wal.forced_count(), 1);
/// assert_eq!(wal.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Wal<R> {
    entries: Vec<WalEntry<R>>,
    forced: u64,
}

impl<R> Default for Wal<R> {
    fn default() -> Self {
        Wal {
            entries: Vec::new(),
            forced: 0,
        }
    }
}

impl<R> Wal<R> {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a forced (synchronously durable) record.
    pub fn force(&mut self, record: R) {
        self.entries.push(WalEntry {
            record,
            forced: true,
        });
        self.forced += 1;
    }

    /// Appends a non-forced record (durable eventually; cheap).
    pub fn append(&mut self, record: R) {
        self.entries.push(WalEntry {
            record,
            forced: false,
        });
    }

    /// All entries, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[WalEntry<R>] {
        &self.entries
    }

    /// Iterates over the records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &R> {
        self.entries.iter().map(|e| &e.record)
    }

    /// The most recent record, if any.
    #[must_use]
    pub fn last(&self) -> Option<&R> {
        self.entries.last().map(|e| &e.record)
    }

    /// Number of forced appends so far (the paper's log-complexity metric).
    #[must_use]
    pub fn forced_count(&self) -> u64 {
        self.forced
    }

    /// Total entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<R: fmt::Display> fmt::Display for Wal<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(
                f,
                "{} {}",
                if e.forced { "FORCE" } else { "write" },
                e.record
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_preserved() {
        let mut wal = Wal::new();
        wal.force(1);
        wal.append(2);
        wal.force(3);
        let recs: Vec<i32> = wal.records().copied().collect();
        assert_eq!(recs, vec![1, 2, 3]);
        assert_eq!(wal.last(), Some(&3));
    }

    #[test]
    fn forced_count_tracks_only_forces() {
        let mut wal = Wal::new();
        for i in 0..5 {
            wal.append(i);
        }
        wal.force(99);
        assert_eq!(wal.forced_count(), 1);
        assert_eq!(wal.len(), 6);
    }

    #[test]
    fn display_marks_durability_class() {
        let mut wal = Wal::new();
        wal.force("prepared");
        wal.append("end");
        let text = wal.to_string();
        assert!(text.contains("FORCE prepared"));
        assert!(text.contains("write end"));
    }

    #[test]
    fn empty_log_reports_empty() {
        let wal: Wal<u8> = Wal::new();
        assert!(wal.is_empty());
        assert_eq!(wal.last(), None);
    }
}
