//! Integrity constraints.
//!
//! "A safe transaction is a transaction that is both trusted … and database
//! correct (i.e., satisfies the data integrity constraints)." A participant
//! evaluates its constraints against the post-image of the transaction's
//! writes; the result is its YES/NO vote in 2PC/2PVC.

use crate::kv::{LocalStore, WriteSet};
use crate::value::Value;
use safetx_types::DataItemId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A declarative constraint over data items.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntegrityConstraint {
    /// Item must be an integer `>= 0` (e.g. stock counts, balances).
    NonNegative(DataItemId),
    /// Item must be an integer in `[lo, hi]`.
    Range {
        /// Constrained item.
        item: DataItemId,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Sum of the items (integers, missing = 0) must not exceed `cap` —
    /// e.g. total allocations never exceed capacity.
    SumAtMost {
        /// Items summed.
        items: Vec<DataItemId>,
        /// Inclusive cap on the sum.
        cap: i64,
    },
    /// Item must be an integer (type constraint).
    IntTyped(DataItemId),
}

/// A constraint that failed, with the observed offending value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintViolation {
    /// The failed constraint.
    pub constraint: IntegrityConstraint,
    /// Human-readable account of the violation.
    pub detail: String,
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "integrity violation: {}", self.detail)
    }
}

impl std::error::Error for ConstraintViolation {}

/// The constraints one server enforces over its data partition.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintSet {
    constraints: Vec<IntegrityConstraint>,
}

impl ConstraintSet {
    /// Creates an empty set (every transaction satisfies it).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint.
    pub fn push(&mut self, constraint: IntegrityConstraint) {
        self.constraints.push(constraint);
    }

    /// Number of constraints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraint is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Checks all constraints against the store **as if** `writes` had been
    /// applied (the transaction's post-image). The store itself is not
    /// modified.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConstraintViolation`] encountered, in declaration
    /// order.
    pub fn check(&self, store: &LocalStore, writes: &WriteSet) -> Result<(), ConstraintViolation> {
        let lookup = |item: DataItemId| -> Option<Value> {
            writes
                .get(item)
                .cloned()
                .or_else(|| store.read(item).map(|v| v.value.clone()))
        };
        for c in &self.constraints {
            match c {
                IntegrityConstraint::NonNegative(item) => {
                    let v = lookup(*item);
                    match v.as_ref().and_then(Value::as_int) {
                        Some(i) if i >= 0 => {}
                        Some(i) => {
                            return Err(violation(c, format!("{item} = {i} is negative")));
                        }
                        None => {
                            return Err(violation(c, format!("{item} is missing or non-integer")));
                        }
                    }
                }
                IntegrityConstraint::Range { item, lo, hi } => {
                    match lookup(*item).as_ref().and_then(Value::as_int) {
                        Some(i) if (*lo..=*hi).contains(&i) => {}
                        Some(i) => {
                            return Err(violation(c, format!("{item} = {i} outside [{lo}, {hi}]")));
                        }
                        None => {
                            return Err(violation(c, format!("{item} is missing or non-integer")));
                        }
                    }
                }
                IntegrityConstraint::SumAtMost { items, cap } => {
                    let sum: i64 = items
                        .iter()
                        .filter_map(|&i| lookup(i).as_ref().and_then(Value::as_int))
                        .sum();
                    if sum > *cap {
                        return Err(violation(c, format!("sum {sum} exceeds cap {cap}")));
                    }
                }
                IntegrityConstraint::IntTyped(item) => {
                    if let Some(v) = lookup(*item) {
                        if v.as_int().is_none() {
                            return Err(violation(c, format!("{item} holds non-integer {v}")));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl FromIterator<IntegrityConstraint> for ConstraintSet {
    fn from_iter<I: IntoIterator<Item = IntegrityConstraint>>(iter: I) -> Self {
        ConstraintSet {
            constraints: iter.into_iter().collect(),
        }
    }
}

fn violation(constraint: &IntegrityConstraint, detail: String) -> ConstraintViolation {
    ConstraintViolation {
        constraint: constraint.clone(),
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_types::Timestamp;

    fn item(n: u64) -> DataItemId {
        DataItemId::new(n)
    }

    fn store_with(values: &[(u64, i64)]) -> LocalStore {
        let mut s = LocalStore::new();
        for &(i, v) in values {
            s.write(item(i), Value::Int(v), Timestamp::ZERO);
        }
        s
    }

    #[test]
    fn empty_set_accepts_anything() {
        let cs = ConstraintSet::new();
        assert!(cs.check(&LocalStore::new(), &WriteSet::new()).is_ok());
    }

    #[test]
    fn non_negative_checks_post_image() {
        let cs: ConstraintSet = [IntegrityConstraint::NonNegative(item(0))]
            .into_iter()
            .collect();
        let store = store_with(&[(0, 5)]);
        assert!(cs.check(&store, &WriteSet::new()).is_ok());

        // A write driving it negative fails even though the store is fine.
        let mut ws = WriteSet::new();
        ws.put(item(0), Value::Int(-1));
        let err = cs.check(&store, &ws).unwrap_err();
        assert!(err.detail.contains("negative"));

        // A write repairing a negative stored value passes.
        let bad_store = store_with(&[(0, -3)]);
        let mut fix = WriteSet::new();
        fix.put(item(0), Value::Int(0));
        assert!(cs.check(&bad_store, &fix).is_ok());
    }

    #[test]
    fn missing_item_violates_non_negative() {
        let cs: ConstraintSet = [IntegrityConstraint::NonNegative(item(9))]
            .into_iter()
            .collect();
        assert!(cs.check(&LocalStore::new(), &WriteSet::new()).is_err());
    }

    #[test]
    fn range_bounds_are_inclusive() {
        let cs: ConstraintSet = [IntegrityConstraint::Range {
            item: item(0),
            lo: 1,
            hi: 10,
        }]
        .into_iter()
        .collect();
        assert!(cs.check(&store_with(&[(0, 1)]), &WriteSet::new()).is_ok());
        assert!(cs.check(&store_with(&[(0, 10)]), &WriteSet::new()).is_ok());
        assert!(cs.check(&store_with(&[(0, 0)]), &WriteSet::new()).is_err());
        assert!(cs.check(&store_with(&[(0, 11)]), &WriteSet::new()).is_err());
    }

    #[test]
    fn sum_cap_mixes_store_and_writes() {
        let cs: ConstraintSet = [IntegrityConstraint::SumAtMost {
            items: vec![item(0), item(1)],
            cap: 10,
        }]
        .into_iter()
        .collect();
        let store = store_with(&[(0, 4), (1, 4)]);
        assert!(cs.check(&store, &WriteSet::new()).is_ok());
        let mut ws = WriteSet::new();
        ws.put(item(1), Value::Int(7));
        let err = cs.check(&store, &ws).unwrap_err();
        assert!(err.detail.contains("sum 11"));
    }

    #[test]
    fn type_constraint_ignores_missing_items() {
        let cs: ConstraintSet = [IntegrityConstraint::IntTyped(item(0))]
            .into_iter()
            .collect();
        assert!(cs.check(&LocalStore::new(), &WriteSet::new()).is_ok());
        let mut ws = WriteSet::new();
        ws.put(item(0), Value::from("oops"));
        assert!(cs.check(&LocalStore::new(), &ws).is_err());
    }

    #[test]
    fn first_violation_in_declaration_order_wins() {
        let cs: ConstraintSet = [
            IntegrityConstraint::NonNegative(item(0)),
            IntegrityConstraint::NonNegative(item(1)),
        ]
        .into_iter()
        .collect();
        let store = store_with(&[]);
        let err = cs.check(&store, &WriteSet::new()).unwrap_err();
        assert!(err.detail.contains("x0"));
    }
}
