//! Replicated storage substrate: versioned items, locks, write-ahead
//! logging, integrity constraints and last-writer-wins replication.
//!
//! Each cloud server in the paper "is responsible for hosting a subset D of
//! all data items" and enforces ACID locally; across servers, data (like
//! policies) propagates under eventual consistency. This crate provides the
//! per-server storage building blocks used by the transaction and protocol
//! crates:
//!
//! * [`LocalStore`] — a versioned key-value store with last-writer-wins
//!   update application (the eventual-consistency merge rule).
//! * [`LockManager`] — strict two-phase locking with shared/exclusive modes.
//! * [`Wal`] — a write-ahead log distinguishing forced and non-forced
//!   records, the durability primitive 2PC/2PVC recovery depends on.
//! * [`ConstraintSet`] — integrity constraints whose satisfaction is the
//!   YES/NO vote of the 2PC voting phase.
//! * [`ReadSet`] / [`MvccOverlay`] — optimistic-mode read stamps and
//!   snapshot-at-begin multi-version reads, validated at commit by
//!   [`LocalStore::validate_and_install`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraints;
mod kv;
mod locks;
mod occ;
mod value;
mod wal;

pub use constraints::{ConstraintSet, ConstraintViolation, IntegrityConstraint};
pub use kv::{LocalStore, VersionedItem, WriteSet};
pub use locks::{LockManager, LockMode, LockOutcome, ShardedLockManager, LOCK_SHARDS};
pub use occ::{MvccOverlay, ReadSet, SnapshotId};
pub use value::Value;
pub use wal::{Wal, WalEntry};
