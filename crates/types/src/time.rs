//! Simulated time.
//!
//! All protocol components run against a logical clock measured in integer
//! microseconds. The paper writes `α(T)` for a transaction's start time and
//! `ω(T)` for its commit-ready time; both are [`Timestamp`]s here.

use serde::{Deserialize, Serialize};

/// An instant on the simulated timeline, in microseconds since the epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The simulation epoch.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The largest representable instant.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from raw microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Creates a timestamp from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis.saturating_mul(1_000))
    }

    /// Microseconds since the epoch.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Time elapsed since `earlier`, saturating at zero.
    #[must_use]
    pub fn duration_since(self, earlier: Timestamp) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[must_use]
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }
}

impl std::ops::Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(
            self.0
                .checked_add(rhs.0)
                .expect("timestamp addition overflowed"),
        )
    }
}

impl std::ops::AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub<Timestamp> for Timestamp {
    type Output = Duration;

    fn sub(self, rhs: Timestamp) -> Duration {
        self.duration_since(rhs)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{:03}ms", self.0 / 1_000, self.0 % 1_000)
    }
}

/// A span of simulated time, in integer microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from raw microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis.saturating_mul(1_000))
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs.saturating_mul(1_000_000))
    }

    /// Microseconds in this span.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this span (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds in this span.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the span by an integer factor, saturating.
    #[must_use]
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// True when the span is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_add(rhs.0)
                .expect("duration addition overflowed"),
        )
    }
}

impl std::ops::AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl std::ops::Mul<u64> for Duration {
    type Output = Duration;

    fn mul(self, rhs: u64) -> Duration {
        Duration(
            self.0
                .checked_mul(rhs)
                .expect("duration multiplication overflowed"),
        )
    }
}

impl std::ops::Div<u64> for Duration {
    type Output = Duration;

    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{:03}ms", self.0 / 1_000, self.0 % 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_millis(2);
        let d = Duration::from_micros(500);
        assert_eq!((t + d).as_micros(), 2_500);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - (t + d), Duration::ZERO, "duration_since saturates");
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(Duration::from_secs(1).as_millis(), 1_000);
        assert_eq!(Duration::from_millis(3).as_micros(), 3_000);
        assert!((Duration::from_micros(1_500_000).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: Duration = [1u64, 2, 3]
            .iter()
            .map(|&ms| Duration::from_millis(ms))
            .sum();
        assert_eq!(total.as_millis(), 6);
        assert_eq!((total * 2).as_millis(), 12);
        assert_eq!((total / 3).as_millis(), 2);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(Timestamp::from_micros(1_234).to_string(), "1.234ms");
        assert_eq!(Duration::from_micros(42).to_string(), "0.042ms");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn timestamp_add_overflow_panics() {
        let _ = Timestamp::MAX + Duration::from_micros(1);
    }
}
