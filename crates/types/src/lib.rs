//! Shared identifier and time newtypes for the `safetx` workspace.
//!
//! The paper ("Enforcing Policy and Data Consistency of Cloud Transactions",
//! ICDCS 2011) models a cloud of servers `S`, data items `D`, transactions
//! `T = q1..qn`, authorization policies `P` versioned by natural numbers, and
//! credentials `C` issued by certificate authorities. This crate provides the
//! strongly-typed vocabulary used by every other crate so that, e.g., a
//! [`PolicyVersion`] can never be confused with a [`DataVersion`].
//!
//! # Examples
//!
//! ```
//! use safetx_types::{ServerId, Timestamp, Duration};
//!
//! let s = ServerId::new(3);
//! let t = Timestamp::ZERO + Duration::from_millis(5);
//! assert_eq!(s.index(), 3);
//! assert_eq!(t.as_micros(), 5_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ids;
mod time;

pub use ids::{
    AdminDomain, CaId, CredentialId, DataItemId, PolicyId, ServerId, TmId, TxnId, UserId,
};
pub use time::{Duration, Timestamp};

use serde::{Deserialize, Serialize};

/// Monotonically increasing version number of an authorization policy.
///
/// The paper defines `ver : P -> N`; a larger number always denotes a fresher
/// policy within one [`AdminDomain`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PolicyVersion(pub u64);

impl PolicyVersion {
    /// The initial version every policy starts from.
    pub const INITIAL: PolicyVersion = PolicyVersion(1);

    /// Returns the next (strictly newer) version.
    #[must_use]
    pub fn next(self) -> PolicyVersion {
        PolicyVersion(self.0 + 1)
    }

    /// Raw numeric value of the version.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PolicyVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Version of a data item inside the replicated store.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DataVersion(pub u64);

impl DataVersion {
    /// Returns the next (strictly newer) version.
    #[must_use]
    pub fn next(self) -> DataVersion {
        DataVersion(self.0 + 1)
    }
}

impl std::fmt::Display for DataVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_version_ordering_and_next() {
        let v = PolicyVersion::INITIAL;
        assert!(v.next() > v);
        assert_eq!(v.next().get(), 2);
        assert_eq!(format!("{}", v), "v1");
    }

    #[test]
    fn data_version_next_is_monotone() {
        let v = DataVersion::default();
        assert!(v.next() > v);
        assert_eq!(format!("{}", v.next()), "d1");
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PolicyVersion>();
        assert_send_sync::<DataVersion>();
        assert_send_sync::<ServerId>();
        assert_send_sync::<Timestamp>();
    }
}
