//! Identifier newtypes.
//!
//! Every entity in the model gets its own id type so the compiler rules out
//! category errors (passing a transaction id where a server id is expected).

use serde::{Deserialize, Serialize};

/// Declares a `u64`-backed identifier newtype with the shared id API.
macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from its raw index.
            #[must_use]
            pub const fn new(index: u64) -> Self {
                Self(index)
            }

            /// Raw index backing this identifier.
            #[must_use]
            pub const fn index(self) -> u64 {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(index: u64) -> Self {
                Self(index)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

id_type!(
    /// A cloud server hosting a subset of the data items and a policy replica.
    ServerId,
    "s"
);
id_type!(
    /// A transaction manager coordinating one or more transactions.
    TmId,
    "tm"
);
id_type!(
    /// A distributed transaction `T = q1, ..., qn`.
    TxnId,
    "T"
);
id_type!(
    /// An authorization policy (one per administrative domain and data scope).
    PolicyId,
    "P"
);
id_type!(
    /// A certified credential issued by a certificate authority.
    CredentialId,
    "c"
);
id_type!(
    /// A certificate authority trusted to issue and revoke credentials.
    CaId,
    "CA"
);
id_type!(
    /// A principal submitting transactions (the querier in a proof).
    UserId,
    "u"
);
id_type!(
    /// A data item in the application domain `D`.
    DataItemId,
    "x"
);

/// The administrative domain `A` that owns a policy.
///
/// The paper's consistency predicates (Definitions 2 and 3) only compare
/// versions of policies "belonging to the same administrator `A`".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AdminDomain(u64);

impl AdminDomain {
    /// Creates a domain from its raw index.
    #[must_use]
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Raw index backing this domain.
    #[must_use]
    pub fn index(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for AdminDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(ServerId::new(1).to_string(), "s1");
        assert_eq!(TxnId::new(7).to_string(), "T7");
        assert_eq!(PolicyId::new(2).to_string(), "P2");
        assert_eq!(CredentialId::new(9).to_string(), "c9");
        assert_eq!(AdminDomain::new(0).to_string(), "A0");
    }

    #[test]
    fn conversions_round_trip() {
        let id = DataItemId::from(42u64);
        assert_eq!(u64::from(id), 42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property: a function over ServerId cannot take TxnId.
        fn takes_server(s: ServerId) -> u64 {
            s.index()
        }
        assert_eq!(takes_server(ServerId::new(3)), 3);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CaId::new(1) < CaId::new(2));
        assert_eq!(UserId::new(5), UserId::new(5));
    }
}
