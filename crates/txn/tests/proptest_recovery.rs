//! Property tests for 2PC recovery: arbitrary log contents must recover to
//! consistent, safe protocol states under every commit variant.

use proptest::prelude::*;
use safetx_txn::{
    answer_inquiry, recover_participant, CommitVariant, CoordinatorRecord, Decision, InquiryAnswer,
    ParticipantRecord, ParticipantState, Vote,
};
use safetx_types::{PolicyId, PolicyVersion, TxnId};

fn variant() -> impl Strategy<Value = CommitVariant> {
    prop::sample::select(vec![
        CommitVariant::Standard,
        CommitVariant::PresumedAbort,
        CommitVariant::PresumedCommit,
    ])
}

fn participant_record() -> impl Strategy<Value = ParticipantRecord> {
    let txn = (0u64..3).prop_map(TxnId::new);
    prop_oneof![
        (txn.clone(), any::<bool>(), any::<bool>(), 1u64..4).prop_map(
            |(txn, yes, truth, version)| ParticipantRecord::Prepared {
                txn,
                vote: if yes { Vote::Yes } else { Vote::No },
                proofs_true: Some(truth),
                policy_versions: vec![(PolicyId::new(0), PolicyVersion(version))],
            }
        ),
        (txn, any::<bool>()).prop_map(|(txn, commit)| ParticipantRecord::Decision {
            txn,
            decision: if commit {
                Decision::Commit
            } else {
                Decision::Abort
            },
        }),
    ]
}

fn coordinator_record() -> impl Strategy<Value = CoordinatorRecord> {
    let txn = (0u64..3).prop_map(TxnId::new);
    prop_oneof![
        txn.clone().prop_map(|txn| CoordinatorRecord::Collecting {
            txn,
            participants: vec![]
        }),
        (txn.clone(), any::<bool>()).prop_map(|(txn, commit)| CoordinatorRecord::Decision {
            txn,
            decision: if commit {
                Decision::Commit
            } else {
                Decision::Abort
            },
        }),
        txn.prop_map(|txn| CoordinatorRecord::End { txn }),
    ]
}

proptest! {
    /// Participant recovery is deterministic, never leaves a participant
    /// both in-doubt and with a decision, and respects the log's facts:
    /// a logged decision always wins; a prepared-YES without a decision is
    /// in doubt; everything else aborts locally.
    #[test]
    fn participant_recovery_is_consistent(
        records in proptest::collection::vec(participant_record(), 0..12),
        v in variant(),
    ) {
        for txn_index in 0..3u64 {
            let txn = TxnId::new(txn_index);
            let recovered = recover_participant(txn, v, records.iter());
            // Never both in doubt and already decided.
            prop_assert!(!(recovered.needs_inquiry && recovered.apply.is_some()));
            let last_decision = records.iter().rev().find_map(|r| match r {
                ParticipantRecord::Decision { txn: t, decision } if *t == txn => Some(*decision),
                _ => None,
            });
            // The *last* prepared record reflects the final vote (re-votes
            // from 2PVC update rounds overwrite earlier ones).
            let prepared_yes = records.iter().rev().find_map(|r| match r {
                ParticipantRecord::Prepared { txn: t, vote, .. } if *t == txn => Some(*vote),
                _ => None,
            }) == Some(Vote::Yes);
            match last_decision {
                Some(d) => {
                    prop_assert_eq!(recovered.apply, Some(d), "logged decision wins");
                    prop_assert!(!recovered.needs_inquiry);
                }
                None if prepared_yes => {
                    prop_assert!(recovered.needs_inquiry, "prepared YES is in doubt");
                    prop_assert_eq!(
                        recovered.participant.state(),
                        ParticipantState::Prepared(Vote::Yes)
                    );
                }
                None => {
                    prop_assert_eq!(recovered.apply, Some(Decision::Abort));
                }
            }
        }
    }

    /// Inquiry answers never contradict a logged decision, and the
    /// no-record answer matches the variant's presumption.
    #[test]
    fn inquiry_answers_respect_log_and_presumption(
        records in proptest::collection::vec(coordinator_record(), 0..12),
        v in variant(),
    ) {
        for txn_index in 0..3u64 {
            let txn = TxnId::new(txn_index);
            let answer = answer_inquiry(txn, v, records.iter());
            let logged = records.iter().rev().find_map(|r| match r {
                CoordinatorRecord::Decision { txn: t, decision } if *t == txn => Some(*decision),
                _ => None,
            });
            let saw_collecting = records.iter().any(|r| matches!(
                r,
                CoordinatorRecord::Collecting { txn: t, .. } if *t == txn
            ));
            match (logged, saw_collecting) {
                (Some(d), _) => prop_assert_eq!(answer, InquiryAnswer::Decided(d)),
                (None, true) => prop_assert_eq!(
                    answer,
                    InquiryAnswer::Decided(Decision::Abort),
                    "collecting without a commit record proves abort"
                ),
                (None, false) => match v.presumption() {
                    Some(d) => prop_assert_eq!(answer, InquiryAnswer::Decided(d)),
                    None => prop_assert_eq!(answer, InquiryAnswer::Unknown),
                },
            }
        }
    }

    /// Cross-check: a participant in doubt after recovery always receives a
    /// *decided* answer when the coordinator logged anything, or the
    /// variant presumes — basic 2PC's Unknown is the only blocking case.
    #[test]
    fn in_doubt_participants_unblock_except_basic_2pc_no_record(
        coordinator_log in proptest::collection::vec(coordinator_record(), 0..8),
        v in variant(),
    ) {
        let txn = TxnId::new(0);
        let participant_log = [ParticipantRecord::Prepared {
            txn,
            vote: Vote::Yes,
            proofs_true: Some(true),
            policy_versions: vec![],
        }];
        let recovered = recover_participant(txn, v, participant_log.iter());
        prop_assert!(recovered.needs_inquiry);
        let answer = answer_inquiry(txn, v, coordinator_log.iter());
        // An Unknown answer (the blocking case) is possible only for basic
        // 2PC with neither a decision nor a collecting record — an orphan
        // End record carries no information.
        let has_informative_record = coordinator_log.iter().any(|r| {
            r.txn() == txn
                && matches!(
                    r,
                    CoordinatorRecord::Decision { .. } | CoordinatorRecord::Collecting { .. }
                )
        });
        if answer == InquiryAnswer::Unknown {
            prop_assert_eq!(v, CommitVariant::Standard);
            prop_assert!(!has_informative_record);
        }
    }
}
