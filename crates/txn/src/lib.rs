//! Classic Two-Phase Commit (2PC) as sans-io state machines, with
//! Presumed-Abort / Presumed-Commit variants and crash recovery.
//!
//! The paper's Section V-B builds Two-Phase Validation Commit on top of the
//! basic atomic 2PC of Figure 7: a voting phase (participants force a
//! *prepared* record and vote YES/NO) and a decision phase (the coordinator
//! forces the decision, participants force it too and acknowledge). This
//! crate implements that substrate exactly:
//!
//! * [`Coordinator`] and [`Participant`] are pure state machines — every
//!   transition consumes one event and returns the actions to perform
//!   (send, force-log, deliver decision). The same machines run under the
//!   discrete-event simulator, the threaded runtime and direct unit tests.
//! * [`CommitVariant`] selects Standard, Presumed-Abort (PrA) or
//!   Presumed-Commit (PrC) logging/acknowledgment rules, "any log-based
//!   optimizations of 2PC also apply to 2PVC".
//! * [`recover_participant`] / [`recover_coordinator`] rebuild protocol
//!   state from a [`Wal`](safetx_store::Wal) after a crash; in-doubt
//!   participants inquire and the coordinator answers by record or by
//!   presumption.
//!
//! Transactions themselves ([`TransactionSpec`]) are a sequence of queries,
//! each a set of read/write operations bound to one server, matching the
//! paper's model `T = q1, …, qn` with sequential query execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
mod log;
mod messages;
mod participant;
mod recovery;
mod transaction;

pub use coordinator::{Coordinator, CoordinatorOutput, CoordinatorState};
pub use log::{CoordinatorRecord, ParticipantRecord};
pub use messages::{CommitVariant, Decision, InquiryAnswer, Vote};
pub use participant::{Participant, ParticipantOutput, ParticipantState};
pub use recovery::{
    answer_inquiry, recover_coordinator, recover_participant, RecoveredParticipant,
};
pub use transaction::{Operation, QuerySpec, TransactionSpec};
