//! Transactions and queries.
//!
//! `T = q1, q2, …, qn` where each query `qi` executes at one server and the
//! queries run sequentially (paper Section III-A). The mapping `m(qi)` — the
//! data items a query touches — is derivable from the operations.

use safetx_store::Value;
use safetx_types::{DataItemId, ServerId, TxnId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One read or write against a data item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operation {
    /// Read the item.
    Read(DataItemId),
    /// Overwrite the item with a value.
    Write(DataItemId, Value),
    /// Add a signed delta to an integer item (read-modify-write).
    Add(DataItemId, i64),
}

impl Operation {
    /// The item this operation touches.
    #[must_use]
    pub fn item(&self) -> DataItemId {
        match self {
            Operation::Read(i) | Operation::Write(i, _) | Operation::Add(i, _) => *i,
        }
    }

    /// True when the operation mutates the item.
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, Operation::Read(_))
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Read(i) => write!(f, "r({i})"),
            Operation::Write(i, v) => write!(f, "w({i}={v})"),
            Operation::Add(i, d) => write!(f, "w({i}+={d})"),
        }
    }
}

/// One query `qi`: a batch of operations at one server, under one access
/// request (`action` on `resource`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// The server that executes this query.
    pub server: ServerId,
    /// The policy action the query needs (e.g. `read`, `write`).
    pub action: String,
    /// The policy resource the query touches (e.g. `customers`).
    pub resource: String,
    /// The data operations.
    pub ops: Vec<Operation>,
}

impl QuerySpec {
    /// Creates a query.
    #[must_use]
    pub fn new(
        server: ServerId,
        action: impl Into<String>,
        resource: impl Into<String>,
        ops: Vec<Operation>,
    ) -> Self {
        QuerySpec {
            server,
            action: action.into(),
            resource: resource.into(),
            ops,
        }
    }

    /// The items the query touches — the paper's `m(qi)`.
    #[must_use]
    pub fn touched_items(&self) -> BTreeSet<DataItemId> {
        self.ops.iter().map(Operation::item).collect()
    }

    /// True when any operation writes.
    #[must_use]
    pub fn has_writes(&self) -> bool {
        self.ops.iter().any(Operation::is_write)
    }
}

impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}[", self.action, self.server)?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, "]")
    }
}

/// A whole transaction: an id, the submitting user and the query sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransactionSpec {
    /// Transaction identifier.
    pub id: TxnId,
    /// Submitting principal.
    pub user: UserId,
    /// Queries, executed in order.
    pub queries: Vec<QuerySpec>,
}

impl TransactionSpec {
    /// Creates a transaction.
    #[must_use]
    pub fn new(id: TxnId, user: UserId, queries: Vec<QuerySpec>) -> Self {
        TransactionSpec { id, user, queries }
    }

    /// The distinct participating servers, in id order.
    #[must_use]
    pub fn participants(&self) -> BTreeSet<ServerId> {
        self.queries.iter().map(|q| q.server).collect()
    }

    /// Number of queries `u`.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }
}

impl fmt::Display for TransactionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} by {}: ", self.id, self.user)?;
        for (i, q) in self.queries.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TransactionSpec {
        TransactionSpec::new(
            TxnId::new(1),
            UserId::new(2),
            vec![
                QuerySpec::new(
                    ServerId::new(0),
                    "read",
                    "customers",
                    vec![Operation::Read(DataItemId::new(10))],
                ),
                QuerySpec::new(
                    ServerId::new(1),
                    "write",
                    "inventory",
                    vec![
                        Operation::Add(DataItemId::new(20), -1),
                        Operation::Read(DataItemId::new(21)),
                    ],
                ),
                QuerySpec::new(
                    ServerId::new(0),
                    "write",
                    "customers",
                    vec![Operation::Write(DataItemId::new(10), Value::Int(5))],
                ),
            ],
        )
    }

    #[test]
    fn participants_deduplicate_servers() {
        let t = spec();
        assert_eq!(t.query_count(), 3);
        let p: Vec<ServerId> = t.participants().into_iter().collect();
        assert_eq!(p, vec![ServerId::new(0), ServerId::new(1)]);
    }

    #[test]
    fn touched_items_is_m_of_q() {
        let t = spec();
        let items = t.queries[1].touched_items();
        assert!(items.contains(&DataItemId::new(20)));
        assert!(items.contains(&DataItemId::new(21)));
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn write_detection() {
        let t = spec();
        assert!(!t.queries[0].has_writes());
        assert!(t.queries[1].has_writes());
        assert!(Operation::Add(DataItemId::new(0), 1).is_write());
        assert!(!Operation::Read(DataItemId::new(0)).is_write());
    }

    #[test]
    fn display_is_compact() {
        let t = spec();
        let text = t.to_string();
        assert!(text.contains("T1 by u2"));
        assert!(text.contains("r(x10)"));
        assert!(text.contains("w(x20+=-1)"));
    }
}
