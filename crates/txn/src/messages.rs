//! Shared protocol vocabulary: votes, decisions, variants.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A participant's vote in the voting phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vote {
    /// Integrity constraints hold; ready to commit.
    Yes,
    /// Integrity violation or local failure; must abort.
    No,
}

impl Vote {
    /// True for [`Vote::Yes`].
    #[must_use]
    pub fn is_yes(self) -> bool {
        self == Vote::Yes
    }
}

impl fmt::Display for Vote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vote::Yes => write!(f, "YES"),
            Vote::No => write!(f, "NO"),
        }
    }
}

/// The coordinator's global decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Commit everywhere.
    Commit,
    /// Roll back everywhere.
    Abort,
}

impl Decision {
    /// True for [`Decision::Commit`].
    #[must_use]
    pub fn is_commit(self) -> bool {
        self == Decision::Commit
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Commit => write!(f, "COMMIT"),
            Decision::Abort => write!(f, "ABORT"),
        }
    }
}

/// Log-optimization variant of the commit protocol (Chrysanthis et al.;
/// the paper notes "any log-based optimizations of 2PC also apply to 2PVC").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CommitVariant {
    /// Basic 2PC: all decisions forced everywhere, all decisions
    /// acknowledged.
    #[default]
    Standard,
    /// Presumed-Abort: no-information inquiries answer ABORT, so abort
    /// decisions are not forced and not acknowledged.
    PresumedAbort,
    /// Presumed-Commit: the coordinator forces a *collecting* record before
    /// voting; commit decisions are presumed, so they are not forced at
    /// participants and not acknowledged.
    PresumedCommit,
}

impl CommitVariant {
    /// Does the coordinator force-log this decision?
    #[must_use]
    pub fn coordinator_forces(self, decision: Decision) -> bool {
        match self {
            CommitVariant::Standard => true,
            // PrA may answer "abort" from no information, so only commits
            // must be durable before telling anyone.
            CommitVariant::PresumedAbort => decision.is_commit(),
            // PrC presumes commit; aborts are the exceptional, forced case.
            // (Commit is still forced at the coordinator to close out the
            // collecting record.)
            CommitVariant::PresumedCommit => true,
        }
    }

    /// Does a participant force-log this decision?
    #[must_use]
    pub fn participant_forces(self, decision: Decision) -> bool {
        match self {
            CommitVariant::Standard => true,
            CommitVariant::PresumedAbort => decision.is_commit(),
            CommitVariant::PresumedCommit => !decision.is_commit(),
        }
    }

    /// Does a participant acknowledge this decision?
    #[must_use]
    pub fn participant_acks(self, decision: Decision) -> bool {
        self.participant_forces(decision)
    }

    /// Does the coordinator force a collecting record before voting?
    #[must_use]
    pub fn forces_collecting(self) -> bool {
        self == CommitVariant::PresumedCommit
    }

    /// The decision presumed when the coordinator has no record of the
    /// transaction.
    #[must_use]
    pub fn presumption(self) -> Option<Decision> {
        match self {
            CommitVariant::Standard => None,
            CommitVariant::PresumedAbort => Some(Decision::Abort),
            CommitVariant::PresumedCommit => Some(Decision::Commit),
        }
    }
}

/// How a coordinator answers a recovering participant's inquiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InquiryAnswer {
    /// The decision, from a log record or the variant's presumption.
    Decided(Decision),
    /// No record and no presumption: the participant must keep waiting
    /// (blocking case of basic 2PC).
    Unknown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_forces_and_acks_everything() {
        let v = CommitVariant::Standard;
        for d in [Decision::Commit, Decision::Abort] {
            assert!(v.coordinator_forces(d));
            assert!(v.participant_forces(d));
            assert!(v.participant_acks(d));
        }
        assert!(!v.forces_collecting());
        assert_eq!(v.presumption(), None);
    }

    #[test]
    fn presumed_abort_skips_abort_logging() {
        let v = CommitVariant::PresumedAbort;
        assert!(v.coordinator_forces(Decision::Commit));
        assert!(!v.coordinator_forces(Decision::Abort));
        assert!(!v.participant_forces(Decision::Abort));
        assert!(!v.participant_acks(Decision::Abort));
        assert_eq!(v.presumption(), Some(Decision::Abort));
    }

    #[test]
    fn presumed_commit_skips_commit_logging_at_participants() {
        let v = CommitVariant::PresumedCommit;
        assert!(v.forces_collecting());
        assert!(!v.participant_forces(Decision::Commit));
        assert!(v.participant_forces(Decision::Abort));
        assert_eq!(v.presumption(), Some(Decision::Commit));
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(Vote::Yes.to_string(), "YES");
        assert_eq!(Decision::Abort.to_string(), "ABORT");
    }
}
