//! The 2PC coordinator state machine.

use crate::log::CoordinatorRecord;
use crate::messages::{CommitVariant, Decision, Vote};
use safetx_types::{ServerId, TxnId};
use std::collections::{BTreeMap, BTreeSet};

/// Coordinator lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinatorState {
    /// Created, voting not yet started.
    Idle,
    /// Prepare sent, collecting votes.
    Voting,
    /// Decision made, collecting acknowledgments.
    Deciding(Decision),
    /// Protocol complete.
    Ended(Decision),
}

/// Actions the driver must perform after a transition.
///
/// Log actions must be applied to durable storage *before* any send in the
/// same batch is released — the machine emits them in the correct order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordinatorOutput {
    /// Send a Prepare(-to-Commit) message.
    SendPrepare(ServerId),
    /// Send the decision to a participant.
    SendDecision(ServerId, Decision),
    /// Force-write a log record (synchronous durability).
    ForceLog(CoordinatorRecord),
    /// Write a log record lazily.
    Log(CoordinatorRecord),
    /// The global decision is fixed (deliver to the client/observer).
    Decided(Decision),
    /// All protocol obligations done; the transaction can be forgotten.
    Completed,
}

/// The coordinator for one transaction.
///
/// A pure state machine: each event handler returns the outputs to perform.
/// Duplicated events are tolerated idempotently (message retries).
///
/// # Examples
///
/// ```
/// use safetx_txn::{CommitVariant, Coordinator, CoordinatorOutput, Decision, Vote};
/// use safetx_types::{ServerId, TxnId};
///
/// let mut c = Coordinator::new(
///     TxnId::new(1),
///     [ServerId::new(0), ServerId::new(1)].into(),
///     CommitVariant::Standard,
/// );
/// c.start();
/// c.on_vote(ServerId::new(0), Vote::Yes);
/// let outputs = c.on_vote(ServerId::new(1), Vote::Yes);
/// assert!(outputs.contains(&CoordinatorOutput::Decided(Decision::Commit)));
/// ```
#[derive(Debug, Clone)]
pub struct Coordinator {
    txn: TxnId,
    participants: BTreeSet<ServerId>,
    variant: CommitVariant,
    votes: BTreeMap<ServerId, Vote>,
    acks: BTreeSet<ServerId>,
    acks_expected: BTreeSet<ServerId>,
    state: CoordinatorState,
}

impl Coordinator {
    /// Creates a coordinator for `txn` over the given participants.
    ///
    /// # Panics
    ///
    /// Panics when `participants` is empty — a distributed commit needs at
    /// least one participant.
    #[must_use]
    pub fn new(txn: TxnId, participants: BTreeSet<ServerId>, variant: CommitVariant) -> Self {
        assert!(!participants.is_empty(), "no participants for {txn}");
        Coordinator {
            txn,
            participants,
            variant,
            votes: BTreeMap::new(),
            acks: BTreeSet::new(),
            acks_expected: BTreeSet::new(),
            state: CoordinatorState::Idle,
        }
    }

    /// The transaction being coordinated.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> CoordinatorState {
        self.state
    }

    /// The decision, once one exists.
    #[must_use]
    pub fn decision(&self) -> Option<Decision> {
        match self.state {
            CoordinatorState::Deciding(d) | CoordinatorState::Ended(d) => Some(d),
            _ => None,
        }
    }

    /// The participant set.
    #[must_use]
    pub fn participants(&self) -> &BTreeSet<ServerId> {
        &self.participants
    }

    /// Begins the voting phase.
    ///
    /// # Panics
    ///
    /// Panics when called twice.
    pub fn start(&mut self) -> Vec<CoordinatorOutput> {
        assert_eq!(self.state, CoordinatorState::Idle, "start called twice");
        self.state = CoordinatorState::Voting;
        let mut out = Vec::new();
        if self.variant.forces_collecting() {
            out.push(CoordinatorOutput::ForceLog(CoordinatorRecord::Collecting {
                txn: self.txn,
                participants: self.participants.iter().copied().collect(),
            }));
        }
        out.extend(
            self.participants
                .iter()
                .map(|&p| CoordinatorOutput::SendPrepare(p)),
        );
        out
    }

    /// Handles a vote. A NO vote decides Abort immediately; the final YES
    /// decides Commit.
    pub fn on_vote(&mut self, from: ServerId, vote: Vote) -> Vec<CoordinatorOutput> {
        if !self.participants.contains(&from) {
            return Vec::new();
        }
        match self.state {
            CoordinatorState::Voting => {}
            // A straggling vote after the decision: re-send the decision so
            // a retransmitting participant converges.
            CoordinatorState::Deciding(d) => {
                return vec![CoordinatorOutput::SendDecision(from, d)];
            }
            _ => return Vec::new(),
        }
        self.votes.insert(from, vote);
        if vote == Vote::No {
            return self.decide(Decision::Abort);
        }
        if self.votes.len() == self.participants.len() && self.votes.values().all(|v| v.is_yes()) {
            return self.decide(Decision::Commit);
        }
        Vec::new()
    }

    /// Voting-phase timeout: missing votes are treated as NO.
    pub fn on_timeout(&mut self) -> Vec<CoordinatorOutput> {
        match self.state {
            CoordinatorState::Voting => self.decide(Decision::Abort),
            _ => Vec::new(),
        }
    }

    /// Fixes the decision and emits decision-phase outputs.
    ///
    /// Exposed for protocol embeddings (2PVC overrides the decision rule
    /// with policy validation); application code should rely on votes and
    /// timeouts.
    pub fn decide(&mut self, decision: Decision) -> Vec<CoordinatorOutput> {
        debug_assert_eq!(self.state, CoordinatorState::Voting);
        let mut out = Vec::new();
        let record = CoordinatorRecord::Decision {
            txn: self.txn,
            decision,
        };
        if self.variant.coordinator_forces(decision) {
            out.push(CoordinatorOutput::ForceLog(record));
        } else {
            out.push(CoordinatorOutput::Log(record));
        }
        out.push(CoordinatorOutput::Decided(decision));

        // Who must hear the decision: everyone for commit; for abort, the
        // yes-voters (a no-voter aborted unilaterally) plus silent
        // participants (they may still be prepared under a lost message).
        let recipients: Vec<ServerId> = self
            .participants
            .iter()
            .copied()
            .filter(|p| decision.is_commit() || self.votes.get(p) != Some(&Vote::No))
            .collect();
        let expects_acks = self.variant.participant_acks(decision);
        for p in &recipients {
            out.push(CoordinatorOutput::SendDecision(*p, decision));
        }
        if expects_acks && !recipients.is_empty() {
            self.acks_expected = recipients.into_iter().collect();
            self.state = CoordinatorState::Deciding(decision);
        } else {
            self.state = CoordinatorState::Ended(decision);
            out.push(CoordinatorOutput::Log(CoordinatorRecord::End {
                txn: self.txn,
            }));
            out.push(CoordinatorOutput::Completed);
        }
        out
    }

    /// Handles a decision acknowledgment.
    pub fn on_ack(&mut self, from: ServerId) -> Vec<CoordinatorOutput> {
        let CoordinatorState::Deciding(decision) = self.state else {
            return Vec::new();
        };
        if !self.acks_expected.contains(&from) {
            return Vec::new();
        }
        self.acks.insert(from);
        if self.acks == self.acks_expected {
            self.state = CoordinatorState::Ended(decision);
            return vec![
                CoordinatorOutput::Log(CoordinatorRecord::End { txn: self.txn }),
                CoordinatorOutput::Completed,
            ];
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(n: u64) -> BTreeSet<ServerId> {
        (0..n).map(ServerId::new).collect()
    }

    fn coordinator(n: u64, variant: CommitVariant) -> Coordinator {
        Coordinator::new(TxnId::new(1), servers(n), variant)
    }

    fn prepares(out: &[CoordinatorOutput]) -> usize {
        out.iter()
            .filter(|o| matches!(o, CoordinatorOutput::SendPrepare(_)))
            .count()
    }

    fn decisions(out: &[CoordinatorOutput]) -> Vec<(ServerId, Decision)> {
        out.iter()
            .filter_map(|o| match o {
                CoordinatorOutput::SendDecision(s, d) => Some((*s, *d)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn unanimous_yes_commits() {
        let mut c = coordinator(3, CommitVariant::Standard);
        let out = c.start();
        assert_eq!(prepares(&out), 3);
        assert!(c.on_vote(ServerId::new(0), Vote::Yes).is_empty());
        assert!(c.on_vote(ServerId::new(1), Vote::Yes).is_empty());
        let out = c.on_vote(ServerId::new(2), Vote::Yes);
        assert!(
            out.contains(&CoordinatorOutput::ForceLog(CoordinatorRecord::Decision {
                txn: TxnId::new(1),
                decision: Decision::Commit
            }))
        );
        assert!(out.contains(&CoordinatorOutput::Decided(Decision::Commit)));
        assert_eq!(decisions(&out).len(), 3);
        assert_eq!(c.state(), CoordinatorState::Deciding(Decision::Commit));
    }

    #[test]
    fn single_no_aborts_immediately() {
        let mut c = coordinator(3, CommitVariant::Standard);
        c.start();
        c.on_vote(ServerId::new(0), Vote::Yes);
        let out = c.on_vote(ServerId::new(1), Vote::No);
        assert!(out.contains(&CoordinatorOutput::Decided(Decision::Abort)));
        // Abort goes to the yes-voter and the silent participant, not the
        // no-voter.
        let d = decisions(&out);
        assert_eq!(d.len(), 2);
        assert!(!d.iter().any(|(s, _)| *s == ServerId::new(1)));
    }

    #[test]
    fn acks_complete_the_protocol() {
        let mut c = coordinator(2, CommitVariant::Standard);
        c.start();
        c.on_vote(ServerId::new(0), Vote::Yes);
        c.on_vote(ServerId::new(1), Vote::Yes);
        assert!(c.on_ack(ServerId::new(0)).is_empty());
        let out = c.on_ack(ServerId::new(1));
        assert!(out.contains(&CoordinatorOutput::Completed));
        assert!(matches!(
            out[0],
            CoordinatorOutput::Log(CoordinatorRecord::End { .. })
        ));
        assert_eq!(c.state(), CoordinatorState::Ended(Decision::Commit));
    }

    #[test]
    fn duplicate_votes_and_acks_are_idempotent() {
        let mut c = coordinator(2, CommitVariant::Standard);
        c.start();
        c.on_vote(ServerId::new(0), Vote::Yes);
        assert!(
            c.on_vote(ServerId::new(0), Vote::Yes).is_empty(),
            "duplicate vote ignored in voting phase"
        );
        c.on_vote(ServerId::new(1), Vote::Yes);
        c.on_ack(ServerId::new(0));
        assert!(c.on_ack(ServerId::new(0)).is_empty());
        assert_eq!(c.state(), CoordinatorState::Deciding(Decision::Commit));
    }

    #[test]
    fn straggler_vote_after_decision_gets_decision_resent() {
        let mut c = coordinator(2, CommitVariant::Standard);
        c.start();
        c.on_vote(ServerId::new(0), Vote::No);
        let out = c.on_vote(ServerId::new(1), Vote::Yes);
        assert_eq!(
            out,
            vec![CoordinatorOutput::SendDecision(
                ServerId::new(1),
                Decision::Abort
            )]
        );
    }

    #[test]
    fn timeout_aborts_when_votes_missing() {
        let mut c = coordinator(3, CommitVariant::Standard);
        c.start();
        c.on_vote(ServerId::new(0), Vote::Yes);
        let out = c.on_timeout();
        assert!(out.contains(&CoordinatorOutput::Decided(Decision::Abort)));
        assert!(c.on_timeout().is_empty(), "second timeout is a no-op");
    }

    #[test]
    fn presumed_abort_does_not_force_or_await_acks_on_abort() {
        let mut c = coordinator(2, CommitVariant::PresumedAbort);
        c.start();
        let out = c.on_vote(ServerId::new(0), Vote::No);
        assert!(out.iter().any(|o| matches!(
            o,
            CoordinatorOutput::Log(CoordinatorRecord::Decision {
                decision: Decision::Abort,
                ..
            })
        )));
        assert!(!out
            .iter()
            .any(|o| matches!(o, CoordinatorOutput::ForceLog(_))));
        assert!(out.contains(&CoordinatorOutput::Completed));
        assert_eq!(c.state(), CoordinatorState::Ended(Decision::Abort));
    }

    #[test]
    fn presumed_commit_forces_collecting_and_skips_commit_acks() {
        let mut c = coordinator(2, CommitVariant::PresumedCommit);
        let out = c.start();
        assert!(matches!(
            out[0],
            CoordinatorOutput::ForceLog(CoordinatorRecord::Collecting { .. })
        ));
        c.on_vote(ServerId::new(0), Vote::Yes);
        let out = c.on_vote(ServerId::new(1), Vote::Yes);
        assert!(out.contains(&CoordinatorOutput::Completed));
        assert_eq!(c.state(), CoordinatorState::Ended(Decision::Commit));
    }

    #[test]
    fn unknown_participant_votes_are_ignored() {
        let mut c = coordinator(2, CommitVariant::Standard);
        c.start();
        assert!(c.on_vote(ServerId::new(9), Vote::No).is_empty());
        assert_eq!(c.state(), CoordinatorState::Voting);
    }

    #[test]
    #[should_panic(expected = "no participants")]
    fn empty_participant_set_panics() {
        let _ = Coordinator::new(TxnId::new(1), BTreeSet::new(), CommitVariant::Standard);
    }

    #[test]
    #[should_panic(expected = "start called twice")]
    fn double_start_panics() {
        let mut c = coordinator(1, CommitVariant::Standard);
        c.start();
        c.start();
    }
}
