//! Crash recovery from write-ahead logs.
//!
//! "The resilience of 2PVC to system and communication failures can be
//! achieved in the same manner as 2PC by recording the progress of the
//! protocol in the logs of the TM and participant." Recovery scans a node's
//! [`Wal`](safetx_store::Wal) and rebuilds the protocol state:
//!
//! * a participant with a forced *prepared YES* record but no decision is
//!   **in doubt** and must inquire;
//! * a coordinator answers inquiries from its decision record, or — when no
//!   record exists — from the variant's presumption (PrA ⇒ abort,
//!   PrC ⇒ commit, basic 2PC ⇒ blocked).

use crate::coordinator::Coordinator;
use crate::log::{CoordinatorRecord, ParticipantRecord};
use crate::messages::{CommitVariant, Decision, InquiryAnswer, Vote};
use crate::participant::{Participant, ParticipantState};
use safetx_types::TxnId;

/// Result of participant recovery.
#[derive(Debug, Clone)]
pub struct RecoveredParticipant {
    /// The rebuilt state machine.
    pub participant: Participant,
    /// True when the participant is in doubt and must send an inquiry to
    /// the coordinator.
    pub needs_inquiry: bool,
    /// A decision that can be applied immediately (either recorded before
    /// the crash, or presumed for an unprepared transaction).
    pub apply: Option<Decision>,
}

/// Rebuilds a participant for `txn` from its log records.
///
/// Rules, scanning the whole log for records of `txn`:
/// * decision record present → decided; re-apply it idempotently (the crash
///   may have interrupted application).
/// * prepared YES but no decision → in doubt: needs an inquiry.
/// * prepared NO but no decision → unilaterally aborted; apply abort.
/// * no records → the transaction never voted; it is safe to abort locally
///   (the coordinator cannot have committed without this vote).
pub fn recover_participant<'a, I>(
    txn: TxnId,
    variant: CommitVariant,
    records: I,
) -> RecoveredParticipant
where
    I: IntoIterator<Item = &'a ParticipantRecord>,
{
    let mut prepared_vote: Option<Vote> = None;
    let mut decision: Option<Decision> = None;
    for record in records {
        if record.txn() != txn {
            continue;
        }
        match record {
            ParticipantRecord::Prepared { vote, .. } => prepared_vote = Some(*vote),
            ParticipantRecord::Decision { decision: d, .. } => decision = Some(*d),
        }
    }
    match (prepared_vote, decision) {
        (_, Some(d)) => RecoveredParticipant {
            participant: Participant::with_state(txn, variant, ParticipantState::Decided(d)),
            needs_inquiry: false,
            apply: Some(d),
        },
        (Some(Vote::Yes), None) => RecoveredParticipant {
            participant: Participant::with_state(
                txn,
                variant,
                ParticipantState::Prepared(Vote::Yes),
            ),
            needs_inquiry: true,
            apply: None,
        },
        (Some(Vote::No), None) | (None, None) => RecoveredParticipant {
            participant: Participant::with_state(
                txn,
                variant,
                ParticipantState::Decided(Decision::Abort),
            ),
            needs_inquiry: false,
            apply: Some(Decision::Abort),
        },
    }
}

/// Answers a recovering participant's inquiry from the coordinator's log.
///
/// * decision record → that decision.
/// * PrC collecting record without a decision → the coordinator crashed
///   mid-voting; commit was never forced, so the answer is ABORT.
/// * no record → the variant's presumption, or [`InquiryAnswer::Unknown`]
///   for basic 2PC (the blocking case).
pub fn answer_inquiry<'a, I>(txn: TxnId, variant: CommitVariant, records: I) -> InquiryAnswer
where
    I: IntoIterator<Item = &'a CoordinatorRecord>,
{
    let mut saw_collecting = false;
    let mut decision: Option<Decision> = None;
    for record in records {
        if record.txn() != txn {
            continue;
        }
        match record {
            CoordinatorRecord::Collecting { .. } => saw_collecting = true,
            CoordinatorRecord::Decision { decision: d, .. } => decision = Some(*d),
            CoordinatorRecord::End { .. } => {}
        }
    }
    if let Some(d) = decision {
        return InquiryAnswer::Decided(d);
    }
    if saw_collecting {
        // PrC: a commit would have been forced before any participant
        // learned it; absence of the record proves abort.
        return InquiryAnswer::Decided(Decision::Abort);
    }
    match variant.presumption() {
        Some(d) => InquiryAnswer::Decided(d),
        None => InquiryAnswer::Unknown,
    }
}

/// Rebuilds a coordinator after a TM crash.
///
/// When a decision had been logged, the coordinator resumes the decision
/// phase (the caller should re-send the decision to participants that might
/// not have acknowledged — acks are not logged, so all of them). When no
/// decision had been logged, the safe move is to decide ABORT: no
/// participant can have learned a commit.
///
/// Returns the rebuilt coordinator and the decision it will (re-)distribute.
pub fn recover_coordinator<'a, I>(
    txn: TxnId,
    participants: std::collections::BTreeSet<safetx_types::ServerId>,
    variant: CommitVariant,
    records: I,
) -> (Coordinator, Decision)
where
    I: IntoIterator<Item = &'a CoordinatorRecord>,
{
    let mut decision: Option<Decision> = None;
    for record in records {
        if record.txn() != txn {
            continue;
        }
        if let CoordinatorRecord::Decision { decision: d, .. } = record {
            decision = Some(*d);
        }
    }
    let d = decision.unwrap_or(Decision::Abort);
    let coordinator = Coordinator::new(txn, participants, variant);
    (coordinator, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::CoordinatorState;
    use safetx_types::{PolicyId, PolicyVersion, ServerId};
    use std::collections::BTreeSet;

    fn txn() -> TxnId {
        TxnId::new(3)
    }

    fn prepared(vote: Vote) -> ParticipantRecord {
        ParticipantRecord::Prepared {
            txn: txn(),
            vote,
            proofs_true: Some(true),
            policy_versions: vec![(PolicyId::new(0), PolicyVersion(1))],
        }
    }

    fn decided(decision: Decision) -> ParticipantRecord {
        ParticipantRecord::Decision {
            txn: txn(),
            decision,
        }
    }

    #[test]
    fn prepared_yes_without_decision_is_in_doubt() {
        let records = [prepared(Vote::Yes)];
        let r = recover_participant(txn(), CommitVariant::Standard, &records);
        assert!(r.needs_inquiry);
        assert_eq!(r.apply, None);
        assert_eq!(r.participant.state(), ParticipantState::Prepared(Vote::Yes));
    }

    #[test]
    fn recorded_decision_is_reapplied() {
        let records = [prepared(Vote::Yes), decided(Decision::Commit)];
        let r = recover_participant(txn(), CommitVariant::Standard, &records);
        assert!(!r.needs_inquiry);
        assert_eq!(r.apply, Some(Decision::Commit));
    }

    #[test]
    fn unprepared_or_no_voter_aborts_locally() {
        let r = recover_participant(txn(), CommitVariant::Standard, &[]);
        assert!(!r.needs_inquiry);
        assert_eq!(r.apply, Some(Decision::Abort));

        let records = [prepared(Vote::No)];
        let r = recover_participant(txn(), CommitVariant::Standard, &records);
        assert!(!r.needs_inquiry);
        assert_eq!(r.apply, Some(Decision::Abort));
    }

    #[test]
    fn records_of_other_transactions_are_ignored() {
        let other = ParticipantRecord::Decision {
            txn: TxnId::new(99),
            decision: Decision::Commit,
        };
        let records = [other, prepared(Vote::Yes)];
        let r = recover_participant(txn(), CommitVariant::Standard, &records);
        assert!(r.needs_inquiry);
    }

    #[test]
    fn inquiry_answered_from_decision_record() {
        let records = [CoordinatorRecord::Decision {
            txn: txn(),
            decision: Decision::Commit,
        }];
        assert_eq!(
            answer_inquiry(txn(), CommitVariant::Standard, &records),
            InquiryAnswer::Decided(Decision::Commit)
        );
    }

    #[test]
    fn inquiry_with_no_record_follows_presumption() {
        assert_eq!(
            answer_inquiry(txn(), CommitVariant::Standard, &[]),
            InquiryAnswer::Unknown,
            "basic 2PC blocks"
        );
        assert_eq!(
            answer_inquiry(txn(), CommitVariant::PresumedAbort, &[]),
            InquiryAnswer::Decided(Decision::Abort)
        );
        assert_eq!(
            answer_inquiry(txn(), CommitVariant::PresumedCommit, &[]),
            InquiryAnswer::Decided(Decision::Commit)
        );
    }

    #[test]
    fn collecting_without_decision_proves_abort_under_prc() {
        let records = [CoordinatorRecord::Collecting {
            txn: txn(),
            participants: vec![ServerId::new(0)],
        }];
        assert_eq!(
            answer_inquiry(txn(), CommitVariant::PresumedCommit, &records),
            InquiryAnswer::Decided(Decision::Abort)
        );
    }

    #[test]
    fn coordinator_recovery_resumes_logged_decision_or_aborts() {
        let participants: BTreeSet<ServerId> = [ServerId::new(0), ServerId::new(1)].into();
        let records = [CoordinatorRecord::Decision {
            txn: txn(),
            decision: Decision::Commit,
        }];
        let (c, d) = recover_coordinator(
            txn(),
            participants.clone(),
            CommitVariant::Standard,
            &records,
        );
        assert_eq!(d, Decision::Commit);
        assert_eq!(c.state(), CoordinatorState::Idle);

        let (_, d) = recover_coordinator(txn(), participants, CommitVariant::Standard, &[]);
        assert_eq!(d, Decision::Abort, "no decision record means abort");
    }
}
