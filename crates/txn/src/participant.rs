//! The 2PC participant state machine.

use crate::log::ParticipantRecord;
use crate::messages::{CommitVariant, Decision, Vote};
use safetx_types::{PolicyId, PolicyVersion, TxnId};

/// Participant lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParticipantState {
    /// Executing queries; not yet polled.
    Working,
    /// Voted and waiting for the decision (in doubt when the vote was YES).
    Prepared(Vote),
    /// Learned (or unilaterally made) the decision.
    Decided(Decision),
}

/// Actions the driver must perform after a transition.
///
/// Ordering matters: log actions precede the sends they justify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParticipantOutput {
    /// Force-write a log record before releasing the following sends.
    ForceLog(ParticipantRecord),
    /// Write a log record lazily.
    Log(ParticipantRecord),
    /// Send the vote to the coordinator.
    SendVote(Vote),
    /// Acknowledge the decision to the coordinator.
    SendAck,
    /// Apply the decision locally: install the write set and release locks
    /// (commit), or discard and release (abort).
    Apply(Decision),
}

/// The participant side of one transaction at one server.
///
/// # Examples
///
/// ```
/// use safetx_txn::{CommitVariant, Decision, Participant, ParticipantOutput, Vote};
/// use safetx_types::TxnId;
///
/// let mut p = Participant::new(TxnId::new(1), CommitVariant::Standard);
/// let outputs = p.on_prepare(Vote::Yes, Some(true), vec![]);
/// assert!(matches!(outputs[0], ParticipantOutput::ForceLog(_)));
/// let outputs = p.on_decision(Decision::Commit);
/// assert!(outputs.contains(&ParticipantOutput::Apply(Decision::Commit)));
/// ```
#[derive(Debug, Clone)]
pub struct Participant {
    txn: TxnId,
    variant: CommitVariant,
    state: ParticipantState,
}

impl Participant {
    /// Creates a participant in the working state.
    #[must_use]
    pub fn new(txn: TxnId, variant: CommitVariant) -> Self {
        Participant {
            txn,
            variant,
            state: ParticipantState::Working,
        }
    }

    /// Reconstructs a participant directly in a given state (recovery).
    #[must_use]
    pub fn with_state(txn: TxnId, variant: CommitVariant, state: ParticipantState) -> Self {
        Participant {
            txn,
            variant,
            state,
        }
    }

    /// The transaction.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> ParticipantState {
        self.state
    }

    /// Handles Prepare(-to-Commit). The caller evaluates the integrity vote
    /// (and, for 2PVC, the proof truth value and policy versions) before
    /// calling; the machine handles logging and reply ordering.
    ///
    /// A YES vote force-logs *prepared* first — after this the participant
    /// is in doubt and must await the decision. A NO vote aborts
    /// unilaterally.
    pub fn on_prepare(
        &mut self,
        vote: Vote,
        proofs_true: Option<bool>,
        policy_versions: Vec<(PolicyId, PolicyVersion)>,
    ) -> Vec<ParticipantOutput> {
        match self.state {
            ParticipantState::Working => {}
            // Retransmitted prepare: repeat the recorded vote.
            ParticipantState::Prepared(v) => return vec![ParticipantOutput::SendVote(v)],
            ParticipantState::Decided(_) => return Vec::new(),
        }
        let record = ParticipantRecord::Prepared {
            txn: self.txn,
            vote,
            proofs_true,
            policy_versions,
        };
        match vote {
            Vote::Yes => {
                self.state = ParticipantState::Prepared(Vote::Yes);
                vec![
                    ParticipantOutput::ForceLog(record),
                    ParticipantOutput::SendVote(Vote::Yes),
                ]
            }
            Vote::No => {
                // Unilateral abort: no forced record needed — with no
                // prepared-yes record, recovery presumes abort locally.
                self.state = ParticipantState::Decided(Decision::Abort);
                vec![
                    ParticipantOutput::Log(record),
                    ParticipantOutput::SendVote(Vote::No),
                    ParticipantOutput::Apply(Decision::Abort),
                ]
            }
        }
    }

    /// Re-votes in a later 2PVC round (after an Update message) without
    /// leaving the prepared state. Force-logs the refreshed `(vi, pi)`
    /// tuples and truth value, as Section V-C's recovery rules require.
    ///
    /// No-op unless the participant is prepared with a YES integrity vote.
    pub fn on_revalidate(
        &mut self,
        proofs_true: bool,
        policy_versions: Vec<(PolicyId, PolicyVersion)>,
    ) -> Vec<ParticipantOutput> {
        match self.state {
            ParticipantState::Prepared(Vote::Yes) => vec![
                ParticipantOutput::ForceLog(ParticipantRecord::Prepared {
                    txn: self.txn,
                    vote: Vote::Yes,
                    proofs_true: Some(proofs_true),
                    policy_versions,
                }),
                ParticipantOutput::SendVote(Vote::Yes),
            ],
            _ => Vec::new(),
        }
    }

    /// Handles the coordinator's decision.
    pub fn on_decision(&mut self, decision: Decision) -> Vec<ParticipantOutput> {
        match self.state {
            ParticipantState::Prepared(_) | ParticipantState::Working => {
                self.state = ParticipantState::Decided(decision);
                let record = ParticipantRecord::Decision {
                    txn: self.txn,
                    decision,
                };
                let mut out = Vec::new();
                if self.variant.participant_forces(decision) {
                    out.push(ParticipantOutput::ForceLog(record));
                } else {
                    out.push(ParticipantOutput::Log(record));
                }
                out.push(ParticipantOutput::Apply(decision));
                if self.variant.participant_acks(decision) {
                    out.push(ParticipantOutput::SendAck);
                }
                out
            }
            ParticipantState::Decided(previous) => {
                debug_assert_eq!(previous, decision, "conflicting decisions for {}", self.txn);
                // Retransmitted decision: the ack may have been lost.
                if self.variant.participant_acks(decision) {
                    vec![ParticipantOutput::SendAck]
                } else {
                    Vec::new()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn participant(variant: CommitVariant) -> Participant {
        Participant::new(TxnId::new(7), variant)
    }

    #[test]
    fn yes_vote_forces_prepared_before_sending() {
        let mut p = participant(CommitVariant::Standard);
        let out = p.on_prepare(
            Vote::Yes,
            Some(true),
            vec![(PolicyId::new(0), PolicyVersion(2))],
        );
        assert!(matches!(
            out[0],
            ParticipantOutput::ForceLog(ParticipantRecord::Prepared {
                vote: Vote::Yes,
                ..
            })
        ));
        assert_eq!(out[1], ParticipantOutput::SendVote(Vote::Yes));
        assert_eq!(p.state(), ParticipantState::Prepared(Vote::Yes));
    }

    #[test]
    fn no_vote_aborts_unilaterally_without_forcing() {
        let mut p = participant(CommitVariant::Standard);
        let out = p.on_prepare(Vote::No, None, vec![]);
        assert!(matches!(out[0], ParticipantOutput::Log(_)));
        assert!(out.contains(&ParticipantOutput::SendVote(Vote::No)));
        assert!(out.contains(&ParticipantOutput::Apply(Decision::Abort)));
        assert_eq!(p.state(), ParticipantState::Decided(Decision::Abort));
    }

    #[test]
    fn commit_decision_forces_applies_and_acks() {
        let mut p = participant(CommitVariant::Standard);
        p.on_prepare(Vote::Yes, None, vec![]);
        let out = p.on_decision(Decision::Commit);
        assert!(matches!(
            out[0],
            ParticipantOutput::ForceLog(ParticipantRecord::Decision {
                decision: Decision::Commit,
                ..
            })
        ));
        assert!(out.contains(&ParticipantOutput::Apply(Decision::Commit)));
        assert!(out.contains(&ParticipantOutput::SendAck));
    }

    #[test]
    fn duplicate_prepare_repeats_the_vote() {
        let mut p = participant(CommitVariant::Standard);
        p.on_prepare(Vote::Yes, None, vec![]);
        let out = p.on_prepare(Vote::Yes, None, vec![]);
        assert_eq!(out, vec![ParticipantOutput::SendVote(Vote::Yes)]);
    }

    #[test]
    fn duplicate_decision_reacks_without_reapplying() {
        let mut p = participant(CommitVariant::Standard);
        p.on_prepare(Vote::Yes, None, vec![]);
        p.on_decision(Decision::Commit);
        let out = p.on_decision(Decision::Commit);
        assert_eq!(out, vec![ParticipantOutput::SendAck]);
    }

    #[test]
    fn presumed_abort_skips_abort_force_and_ack() {
        let mut p = participant(CommitVariant::PresumedAbort);
        p.on_prepare(Vote::Yes, None, vec![]);
        let out = p.on_decision(Decision::Abort);
        assert!(matches!(out[0], ParticipantOutput::Log(_)));
        assert!(!out.contains(&ParticipantOutput::SendAck));
        assert!(out.contains(&ParticipantOutput::Apply(Decision::Abort)));
    }

    #[test]
    fn presumed_commit_skips_commit_force_and_ack() {
        let mut p = participant(CommitVariant::PresumedCommit);
        p.on_prepare(Vote::Yes, None, vec![]);
        let out = p.on_decision(Decision::Commit);
        assert!(matches!(out[0], ParticipantOutput::Log(_)));
        assert!(!out.contains(&ParticipantOutput::SendAck));
        let mut p = participant(CommitVariant::PresumedCommit);
        p.on_prepare(Vote::Yes, None, vec![]);
        let out = p.on_decision(Decision::Abort);
        assert!(matches!(out[0], ParticipantOutput::ForceLog(_)));
        assert!(out.contains(&ParticipantOutput::SendAck));
    }

    #[test]
    fn revalidation_reforces_versions_and_revotes() {
        let mut p = participant(CommitVariant::Standard);
        p.on_prepare(
            Vote::Yes,
            Some(true),
            vec![(PolicyId::new(0), PolicyVersion(1))],
        );
        let out = p.on_revalidate(false, vec![(PolicyId::new(0), PolicyVersion(2))]);
        assert!(matches!(
            out[0],
            ParticipantOutput::ForceLog(ParticipantRecord::Prepared {
                proofs_true: Some(false),
                ..
            })
        ));
        assert_eq!(out[1], ParticipantOutput::SendVote(Vote::Yes));
        assert_eq!(p.state(), ParticipantState::Prepared(Vote::Yes));
    }

    #[test]
    fn revalidation_is_noop_when_not_prepared() {
        let mut p = participant(CommitVariant::Standard);
        assert!(p.on_revalidate(true, vec![]).is_empty());
        p.on_prepare(Vote::No, None, vec![]);
        assert!(p.on_revalidate(true, vec![]).is_empty());
    }

    #[test]
    fn decision_without_prepare_applies_abort() {
        // The coordinator timed out and broadcast abort before our prepare
        // arrived.
        let mut p = participant(CommitVariant::Standard);
        let out = p.on_decision(Decision::Abort);
        assert!(out.contains(&ParticipantOutput::Apply(Decision::Abort)));
        assert_eq!(p.state(), ParticipantState::Decided(Decision::Abort));
    }
}
