//! Protocol log records.

use crate::messages::{Decision, Vote};
use safetx_types::{PolicyId, PolicyVersion, ServerId, TxnId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Records written by the coordinator's log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoordinatorRecord {
    /// Presumed-Commit only: voting is starting for these participants.
    Collecting {
        /// The transaction.
        txn: TxnId,
        /// Participants polled.
        participants: Vec<ServerId>,
    },
    /// The global decision (forced per variant rules).
    Decision {
        /// The transaction.
        txn: TxnId,
        /// The decision.
        decision: Decision,
    },
    /// All required acknowledgments received (never forced).
    End {
        /// The transaction.
        txn: TxnId,
    },
}

impl CoordinatorRecord {
    /// The transaction this record belongs to.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        match self {
            CoordinatorRecord::Collecting { txn, .. }
            | CoordinatorRecord::Decision { txn, .. }
            | CoordinatorRecord::End { txn } => *txn,
        }
    }
}

impl fmt::Display for CoordinatorRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinatorRecord::Collecting { txn, participants } => {
                write!(f, "{txn} collecting ({} participants)", participants.len())
            }
            CoordinatorRecord::Decision { txn, decision } => write!(f, "{txn} {decision}"),
            CoordinatorRecord::End { txn } => write!(f, "{txn} end"),
        }
    }
}

/// Records written by a participant's log.
///
/// For 2PVC the prepared record must also carry the `(vi, pi)` policy
/// version tuples and the proof truth value: "a participant must forcibly
/// log the set of (vi, pi) tuples along with its vote and truth value"
/// (Section V-C, Recovery).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParticipantRecord {
    /// Forced before voting YES.
    Prepared {
        /// The transaction.
        txn: TxnId,
        /// The integrity vote recorded with the prepare.
        vote: Vote,
        /// Truth value of the proofs of authorization (2PVC; `None` for
        /// plain 2PC).
        proofs_true: Option<bool>,
        /// The `(vi, pi)` tuples used in the proofs (2PVC; empty for 2PC).
        policy_versions: Vec<(PolicyId, PolicyVersion)>,
    },
    /// The decision as learned from the coordinator (forced per variant).
    Decision {
        /// The transaction.
        txn: TxnId,
        /// The decision.
        decision: Decision,
    },
}

impl ParticipantRecord {
    /// The transaction this record belongs to.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        match self {
            ParticipantRecord::Prepared { txn, .. } | ParticipantRecord::Decision { txn, .. } => {
                *txn
            }
        }
    }
}

impl fmt::Display for ParticipantRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParticipantRecord::Prepared {
                txn,
                vote,
                proofs_true,
                policy_versions,
            } => {
                write!(f, "{txn} prepared {vote}")?;
                if let Some(t) = proofs_true {
                    write!(f, " proofs={}", if *t { "TRUE" } else { "FALSE" })?;
                }
                if !policy_versions.is_empty() {
                    write!(f, " versions=[")?;
                    for (i, (p, v)) in policy_versions.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}:{v}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            ParticipantRecord::Decision { txn, decision } => write!(f, "{txn} {decision}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_know_their_transaction() {
        let txn = TxnId::new(5);
        assert_eq!(CoordinatorRecord::End { txn }.txn(), txn);
        assert_eq!(
            ParticipantRecord::Decision {
                txn,
                decision: Decision::Abort
            }
            .txn(),
            txn
        );
    }

    #[test]
    fn prepared_record_displays_policy_tuples() {
        let rec = ParticipantRecord::Prepared {
            txn: TxnId::new(1),
            vote: Vote::Yes,
            proofs_true: Some(true),
            policy_versions: vec![(PolicyId::new(0), PolicyVersion(3))],
        };
        let text = rec.to_string();
        assert!(text.contains("prepared YES"));
        assert!(text.contains("proofs=TRUE"));
        assert!(text.contains("P0:v3"));
    }

    #[test]
    fn plain_2pc_prepared_record_omits_policy_fields() {
        let rec = ParticipantRecord::Prepared {
            txn: TxnId::new(1),
            vote: Vote::No,
            proofs_true: None,
            policy_versions: vec![],
        };
        let text = rec.to_string();
        assert!(!text.contains("proofs"));
        assert!(!text.contains("versions"));
    }
}
