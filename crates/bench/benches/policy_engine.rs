//! Criterion micro-benchmarks for the authorization substrate: parsing,
//! fixpoint saturation (indexed vs. a flat-scan reference), full proof
//! evaluation, and the server-side versioned proof cache on the Continuous
//! revalidation path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safetx_core::{Msg, ResourcePolicyMap, ServerCore, SharedCas, SharedCatalog, VersionMap};
use safetx_policy::{
    evaluate_proof, AccessRequest, Atom, Bindings, CaRegistry, CertificateAuthority, Constant,
    Engine, FactBase, PolicyBuilder, ProofContext, Rule,
};
use safetx_store::Value;
use safetx_txn::{CommitVariant, Operation, QuerySpec};
use safetx_types::{
    AdminDomain, CaId, DataItemId, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let source = "grant(read, customers) :- role(U, sales_rep), region(U, R), located(U, R).\n\
                  grant(write, inventory) :- role(U, manager), clearance(U, 3).\n\
                  reach(X, Y) :- edge(X, Y).\n\
                  reach(X, Z) :- reach(X, Y), edge(Y, Z).";
    c.bench_function("policy/parse_rules", |b| {
        b.iter(|| black_box(source).parse::<safetx_policy::RuleSet>().unwrap())
    });
}

fn bench_saturate(c: &mut Criterion) {
    let rules: safetx_policy::RuleSet = "reach(X, Y) :- edge(X, Y).\n\
                                         reach(X, Z) :- reach(X, Y), edge(Y, Z)."
        .parse()
        .unwrap();
    let engine = Engine::new();
    let mut group = c.benchmark_group("policy/saturate_chain");
    for &n in &[8usize, 16, 32] {
        let mut facts = FactBase::new();
        for i in 0..n {
            facts
                .insert(Atom::fact(
                    "edge",
                    vec![
                        Constant::symbol(format!("n{i}")),
                        Constant::symbol(format!("n{}", i + 1)),
                    ],
                ))
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &facts, |b, facts| {
            b.iter(|| engine.saturate(rules.as_slice(), black_box(facts)).unwrap())
        });
    }
    group.finish();
}

/// Reference saturation with the same semi-naive delta discipline as
/// `Engine::saturate` but **no predicate/arity index**: every join level
/// probes the entire database. This is the pre-index engine the grouped
/// `FactBase` replaced, kept here only as the A/B baseline.
fn flat_saturate(rules: &[Rule], base: &FactBase) -> BTreeSet<Atom> {
    let mut all: BTreeSet<Atom> = base.iter().cloned().collect();
    for rule in rules.iter().filter(|r| r.is_fact()) {
        all.insert(rule.head().clone());
    }
    let mut delta = all.clone();
    while !delta.is_empty() {
        let mut derived: BTreeSet<Atom> = BTreeSet::new();
        for rule in rules.iter().filter(|r| !r.is_fact()) {
            for delta_pos in 0..rule.body().len() {
                flat_join(
                    rule,
                    0,
                    delta_pos,
                    &all,
                    &delta,
                    &Bindings::new(),
                    &mut derived,
                );
            }
        }
        delta = derived.difference(&all).cloned().collect();
        all.extend(delta.iter().cloned());
    }
    all
}

#[allow(clippy::too_many_arguments)]
fn flat_join(
    rule: &Rule,
    index: usize,
    delta_pos: usize,
    all: &BTreeSet<Atom>,
    delta: &BTreeSet<Atom>,
    bindings: &Bindings,
    out: &mut BTreeSet<Atom>,
) {
    let body = rule.body();
    if index == body.len() {
        out.insert(rule.head().substitute(bindings));
        return;
    }
    let pattern = body[index].substitute(bindings);
    let source = if index == delta_pos { delta } else { all };
    // The flat probe: every stored fact is a candidate regardless of
    // predicate or arity; mismatches are rejected one by one.
    for fact in source.iter() {
        if let Some(next) = pattern.match_ground(fact, bindings) {
            flat_join(rule, index + 1, delta_pos, all, delta, &next, out);
        }
    }
}

/// An `edge` chain of length `n` plus 24 distractor predicates of `n`
/// facts each that the closure rules never touch (a server's ambient base
/// describes many aspects of its world; any one rule joins over few). The
/// flat scan pays for every distractor on every probe, the index never
/// sees them.
fn chain_with_noise(n: usize) -> FactBase {
    let mut facts = FactBase::new();
    for i in 0..n {
        facts
            .insert(Atom::fact(
                "edge",
                vec![
                    Constant::symbol(format!("n{i}")),
                    Constant::symbol(format!("n{}", i + 1)),
                ],
            ))
            .unwrap();
    }
    for p in 0..24 {
        for i in 0..n {
            facts
                .insert(Atom::fact(
                    format!("aux{p}"),
                    vec![
                        Constant::symbol(format!("m{i}")),
                        Constant::symbol(format!("m{}", i + 1)),
                    ],
                ))
                .unwrap();
        }
    }
    facts
}

fn bench_saturate_indexed_vs_flat(c: &mut Criterion) {
    let rules: safetx_policy::RuleSet = "reach(X, Y) :- edge(X, Y).\n\
                                         reach(X, Z) :- reach(X, Y), edge(Y, Z)."
        .parse()
        .unwrap();
    let engine = Engine::new();
    let mut group = c.benchmark_group("policy/saturate_indexed_vs_flat");
    for &n in &[8usize, 16, 32] {
        let facts = chain_with_noise(n);
        let indexed = engine.saturate(rules.as_slice(), &facts).unwrap();
        assert_eq!(
            flat_saturate(rules.as_slice(), &facts).len(),
            indexed.len(),
            "flat reference must derive the same fixpoint"
        );
        group.bench_with_input(BenchmarkId::new("indexed", n), &facts, |b, facts| {
            b.iter(|| engine.saturate(rules.as_slice(), black_box(facts)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("flat", n), &facts, |b, facts| {
            b.iter(|| flat_saturate(rules.as_slice(), black_box(facts)))
        });
    }
    group.finish();
}

fn bench_proof_evaluation(c: &mut Criterion) {
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text("grant(read, customers) :- role(U, sales_rep), region(U, R), located(U, R).")
        .unwrap()
        .build();
    let mut ca = CertificateAuthority::new(CaId::new(0), 7);
    let credential = ca.issue(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("bob"), Constant::symbol("sales_rep")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    let mut registry = CaRegistry::new();
    registry.register(ca);
    let engine = Engine::new();
    let mut ambient = FactBase::new();
    ambient.insert_text("region(bob, east)").unwrap();
    ambient.insert_text("located(bob, east)").unwrap();
    let request = AccessRequest::new(UserId::new(1), "read", "customers");

    c.bench_function("policy/evaluate_proof", |b| {
        b.iter(|| {
            let ctx = ProofContext {
                policy: &policy,
                oracle: &registry,
                engine: &engine,
                ambient_facts: &ambient,
            };
            evaluate_proof(
                &ctx,
                safetx_types::ServerId::new(0),
                black_box(&request),
                std::slice::from_ref(&credential),
                Timestamp::from_millis(1),
            )
            .unwrap()
        })
    });
}

const TM: u8 = 42;
const REVALIDATED_QUERIES: usize = 6;

/// A `ServerCore` holding one transaction with [`REVALIDATED_QUERIES`]
/// already-executed queries — the state a Continuous participant is in
/// when each later query's 2PV round asks it to revalidate everything.
fn server_fixture(cache_enabled: bool) -> (ServerCore<u8>, TxnId) {
    let catalog = SharedCatalog::new();
    catalog.publish(
        PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text("grant(read, T) :- role(U, member), region(U, R), located(U, R), table(T).")
            .unwrap()
            .build(),
    );
    let mut registry = CaRegistry::new();
    let mut ca = CertificateAuthority::new(CaId::new(0), 11);
    let role = ca.issue(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    let region = ca.issue(
        UserId::new(1),
        Atom::fact(
            "region",
            vec![Constant::symbol("u1"), Constant::symbol("east")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    registry.register(ca);
    let mut core: ServerCore<u8> = ServerCore::new(
        ServerId::new(0),
        catalog,
        ResourcePolicyMap::single(PolicyId::new(0)),
        SharedCas::new(registry),
        CommitVariant::Standard,
    );
    core.set_proof_cache(cache_enabled);
    core.install_policy(PolicyId::new(0), PolicyVersion::INITIAL);
    // Ambient server knowledge: the user's observed location, one `table`
    // fact per resource, and bystander facts about other sites — the base
    // a cold evaluation clones and saturates every time.
    core.with_ambient(|ambient| {
        ambient
            .insert(Atom::fact(
                "located",
                vec![Constant::symbol("u1"), Constant::symbol("east")],
            ))
            .unwrap();
        for i in 0..REVALIDATED_QUERIES {
            ambient
                .insert(Atom::fact("table", vec![Constant::symbol(format!("r{i}"))]))
                .unwrap();
        }
        for s in 0..16 {
            ambient
                .insert(Atom::fact(
                    "site",
                    vec![Constant::symbol(format!("s{s}")), Constant::symbol("east")],
                ))
                .unwrap();
        }
    });
    let txn = TxnId::new(1);
    for i in 0..REVALIDATED_QUERIES {
        core.store_mut()
            .write(DataItemId::new(i as u64), Value::Int(1), Timestamp::ZERO);
        let out = core.handle(
            Timestamp::from_millis(1),
            TM,
            Msg::ExecQuery {
                txn,
                query_index: i,
                query: std::sync::Arc::new(QuerySpec::new(
                    ServerId::new(0),
                    "read",
                    format!("r{i}"),
                    vec![Operation::Read(DataItemId::new(i as u64))],
                )),
                user: UserId::new(1),
                credentials: std::sync::Arc::from([role.clone(), region.clone()]),
                evaluate_proof: false,
                pin_versions: VersionMap::new(),
                capabilities: vec![],
            },
        );
        assert!(
            matches!(&out[0].1, Msg::QueryDone { ok: true, .. }),
            "setup query must execute"
        );
    }
    (core, txn)
}

/// One Continuous 2PV collection round: revalidate every registered query.
fn revalidate(core: &mut ServerCore<u8>, txn: TxnId) -> Vec<(u8, Msg)> {
    core.handle(
        Timestamp::from_millis(2),
        TM,
        Msg::PrepareToValidate {
            txn,
            new_query: None,
            user: UserId::new(1),
            credentials: std::sync::Arc::from([]),
        },
    )
}

fn bench_continuous_revalidation(c: &mut Criterion) {
    let mut group = c.benchmark_group("server/continuous_revalidation");

    let (mut warm, txn) = server_fixture(true);
    // Prime: the first round misses once per query and fills the cache.
    black_box(revalidate(&mut warm, txn));
    group.bench_function("warm_cache", |b| {
        b.iter(|| black_box(revalidate(&mut warm, txn)))
    });
    let stats = warm.counters().proof_cache;
    assert!(stats.hits > 0, "warm benchmark must actually hit the cache");

    let (mut cold, txn) = server_fixture(false);
    group.bench_function("cold_cache", |b| {
        b.iter(|| black_box(revalidate(&mut cold, txn)))
    });
    assert_eq!(
        cold.counters().proof_cache.lookups(),
        0,
        "cold benchmark must bypass the cache entirely"
    );

    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_saturate,
    bench_saturate_indexed_vs_flat,
    bench_proof_evaluation,
    bench_continuous_revalidation
);
criterion_main!(benches);
