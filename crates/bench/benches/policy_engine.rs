//! Criterion micro-benchmarks for the authorization substrate: parsing,
//! fixpoint saturation and full proof evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safetx_policy::{
    evaluate_proof, AccessRequest, Atom, CaRegistry, CertificateAuthority, Constant, Engine,
    FactBase, PolicyBuilder, ProofContext,
};
use safetx_types::{AdminDomain, CaId, PolicyId, Timestamp, UserId};
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let source = "grant(read, customers) :- role(U, sales_rep), region(U, R), located(U, R).\n\
                  grant(write, inventory) :- role(U, manager), clearance(U, 3).\n\
                  reach(X, Y) :- edge(X, Y).\n\
                  reach(X, Z) :- reach(X, Y), edge(Y, Z).";
    c.bench_function("policy/parse_rules", |b| {
        b.iter(|| black_box(source).parse::<safetx_policy::RuleSet>().unwrap())
    });
}

fn bench_saturate(c: &mut Criterion) {
    let rules: safetx_policy::RuleSet = "reach(X, Y) :- edge(X, Y).\n\
                                         reach(X, Z) :- reach(X, Y), edge(Y, Z)."
        .parse()
        .unwrap();
    let engine = Engine::new();
    let mut group = c.benchmark_group("policy/saturate_chain");
    for &n in &[8usize, 16, 32] {
        let mut facts = FactBase::new();
        for i in 0..n {
            facts
                .insert(Atom::fact(
                    "edge",
                    vec![
                        Constant::symbol(format!("n{i}")),
                        Constant::symbol(format!("n{}", i + 1)),
                    ],
                ))
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &facts, |b, facts| {
            b.iter(|| engine.saturate(rules.as_slice(), black_box(facts)).unwrap())
        });
    }
    group.finish();
}

fn bench_proof_evaluation(c: &mut Criterion) {
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text("grant(read, customers) :- role(U, sales_rep), region(U, R), located(U, R).")
        .unwrap()
        .build();
    let mut ca = CertificateAuthority::new(CaId::new(0), 7);
    let credential = ca.issue(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("bob"), Constant::symbol("sales_rep")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    let mut registry = CaRegistry::new();
    registry.register(ca);
    let engine = Engine::new();
    let mut ambient = FactBase::new();
    ambient.insert_text("region(bob, east)").unwrap();
    ambient.insert_text("located(bob, east)").unwrap();
    let request = AccessRequest::new(UserId::new(1), "read", "customers");

    c.bench_function("policy/evaluate_proof", |b| {
        b.iter(|| {
            let ctx = ProofContext {
                policy: &policy,
                oracle: &registry,
                engine: &engine,
                ambient_facts: &ambient,
            };
            evaluate_proof(
                &ctx,
                safetx_types::ServerId::new(0),
                black_box(&request),
                std::slice::from_ref(&credential),
                Timestamp::from_millis(1),
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_parse, bench_saturate, bench_proof_evaluation);
criterion_main!(benches);
