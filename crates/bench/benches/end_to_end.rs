//! Criterion benchmarks for complete simulated transactions: one
//! worst-case transaction per scheme on the discrete-event world, plus the
//! Continuous scheme with the server proof cache on vs. off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safetx_bench::{run_single, worst_case_txn, Staleness};
use safetx_core::{ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme};
use safetx_policy::{Atom, Constant, PolicyBuilder};
use safetx_store::Value;
use safetx_types::{
    AdminDomain, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, UserId,
};
use std::hint::black_box;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end/one_txn_n4");
    for scheme in ProofScheme::ALL {
        for level in ConsistencyLevel::ALL {
            group.bench_function(
                BenchmarkId::new(scheme.to_string(), level.to_string()),
                |b| b.iter(|| black_box(run_single(scheme, level, 4, Staleness::None))),
            );
        }
    }
    group.finish();
}

fn bench_update_round(c: &mut Criterion) {
    c.bench_function("end_to_end/deferred_view_update_round", |b| {
        b.iter(|| {
            black_box(run_single(
                ProofScheme::Deferred,
                ConsistencyLevel::View,
                4,
                Staleness::OneAhead,
            ))
        })
    });
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end/continuous_scaling");
    group.sample_size(20);
    for &n in &[2usize, 4, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                black_box(run_single(
                    ProofScheme::Continuous,
                    ConsistencyLevel::View,
                    n,
                    Staleness::None,
                ))
            })
        });
    }
    group.finish();
}

/// One clean Continuous/view transaction of `n` queries with the server
/// proof cache enabled or disabled. Continuous revalidates every prior
/// query on each 2PV round — `u(u+1)/2` evaluations over `u` distinct
/// requests — so the cache collapses all repeats to lookups.
fn run_continuous(n: usize, proof_cache: bool) -> bool {
    let mut exp = Experiment::new(ExperimentConfig {
        servers: n,
        scheme: ProofScheme::Continuous,
        consistency: ConsistencyLevel::View,
        gossip: false,
        proof_cache,
        ..Default::default()
    });
    exp.catalog().publish(
        PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text(
                "grant(read, records) :- role(U, member).\n\
                 grant(write, records) :- role(U, member).",
            )
            .expect("static rules parse")
            .build(),
    );
    exp.install_everywhere(PolicyId::new(0), PolicyVersion(1));
    for i in 0..n {
        exp.seed_item(
            ServerId::new(i as u64),
            DataItemId::new(i as u64),
            Value::Int(1),
        );
    }
    let credential = exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    exp.submit(worst_case_txn(n), vec![credential], Duration::ZERO);
    exp.run();
    let report = exp.report();
    assert_eq!(
        report.proof_cache.lookups() > 0,
        proof_cache,
        "cache instrumentation must match the configuration"
    );
    report.records[0].outcome.is_commit()
}

fn bench_continuous_proof_cache(c: &mut Criterion) {
    let n = 6;
    let mut group = c.benchmark_group("end_to_end/continuous_proof_cache_n6");
    group.bench_function("cache_on", |b| {
        b.iter(|| assert!(black_box(run_continuous(n, true))))
    });
    group.bench_function("cache_off", |b| {
        b.iter(|| assert!(black_box(run_continuous(n, false))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_schemes,
    bench_update_round,
    bench_scaling,
    bench_continuous_proof_cache
);
criterion_main!(benches);
