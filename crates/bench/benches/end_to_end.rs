//! Criterion benchmarks for complete simulated transactions: one
//! worst-case transaction per scheme on the discrete-event world.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safetx_bench::{run_single, Staleness};
use safetx_core::{ConsistencyLevel, ProofScheme};
use std::hint::black_box;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end/one_txn_n4");
    for scheme in ProofScheme::ALL {
        for level in ConsistencyLevel::ALL {
            group.bench_function(
                BenchmarkId::new(scheme.to_string(), level.to_string()),
                |b| b.iter(|| black_box(run_single(scheme, level, 4, Staleness::None))),
            );
        }
    }
    group.finish();
}

fn bench_update_round(c: &mut Criterion) {
    c.bench_function("end_to_end/deferred_view_update_round", |b| {
        b.iter(|| {
            black_box(run_single(
                ProofScheme::Deferred,
                ConsistencyLevel::View,
                4,
                Staleness::OneAhead,
            ))
        })
    });
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end/continuous_scaling");
    group.sample_size(20);
    for &n in &[2usize, 4, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                black_box(run_single(
                    ProofScheme::Continuous,
                    ConsistencyLevel::View,
                    n,
                    Staleness::None,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_update_round, bench_scaling);
criterion_main!(benches);
