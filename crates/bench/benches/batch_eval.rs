//! Criterion micro-benchmarks for batched proof evaluation: one server
//! round's worth of requests through `DataPlane::begin_batch` against the
//! same requests through per-request `evaluate_one` calls.
//!
//! The proof cache is disabled so both paths do real work: the looped path
//! re-fetches the policy, re-checks the credential wallet and re-runs the
//! rule saturation per request, while the batch shares one fetch and one
//! saturation per (policy, version, wallet) and dedups identical requests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safetx_core::{DataPlane, ResourcePolicyMap, ServerCore, SharedCas, SharedCatalog};
use safetx_policy::{Atom, CaRegistry, CertificateAuthority, Constant, Credential, PolicyBuilder};
use safetx_txn::{CommitVariant, Operation, QuerySpec};
use safetx_types::{
    AdminDomain, CaId, DataItemId, PolicyId, PolicyVersion, ServerId, Timestamp, UserId,
};
use std::hint::black_box;
use std::sync::Arc;

/// A data plane with one installed policy, a registered CA and the proof
/// cache off (so every request is a genuine evaluation in both paths).
fn data_plane() -> (Arc<DataPlane>, Vec<Credential>) {
    let catalog = SharedCatalog::new();
    catalog.publish(
        PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text(
                "grant(read, records) :- role(U, member).\n\
                 grant(write, records) :- role(U, member).",
            )
            .expect("rules parse")
            .build(),
    );
    let mut registry = CaRegistry::new();
    let mut ca = CertificateAuthority::new(CaId::new(0), 7);
    let credential = ca.issue(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    registry.register(ca);
    let mut core: ServerCore<u8> = ServerCore::new(
        ServerId::new(0),
        catalog,
        ResourcePolicyMap::single(PolicyId::new(0)),
        SharedCas::new(registry),
        CommitVariant::Standard,
    );
    core.install_policy(PolicyId::new(0), PolicyVersion::INITIAL);
    core.set_proof_cache(false);
    (core.data_plane(), vec![credential])
}

fn query() -> Arc<QuerySpec> {
    Arc::new(QuerySpec::new(
        ServerId::new(0),
        "write",
        "records",
        vec![Operation::Read(DataItemId::new(0))],
    ))
}

fn bench_batch_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/batch_eval");
    let (data, creds) = data_plane();
    let query = query();
    let now = Timestamp::from_millis(1);
    for &n in &[4usize, 16, 64] {
        // Distinct requests (one per user) sharing the policy and wallet:
        // the batch pays one saturation, the loop pays n.
        group.bench_with_input(BenchmarkId::new("looped_distinct", n), &n, |b, &n| {
            b.iter(|| {
                for i in 0..n as u64 {
                    black_box(data.evaluate_one(now, UserId::new(i), &creds, &query));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("batched_distinct", n), &n, |b, &n| {
            b.iter(|| {
                let mut batch = data.begin_batch(now);
                for i in 0..n as u64 {
                    black_box(batch.evaluate_one(UserId::new(i), &creds, &query));
                }
            });
        });
        // Identical requests: the batch evaluates once and dedups the rest
        // (the redundant-evaluation race, measured).
        group.bench_with_input(BenchmarkId::new("batched_identical", n), &n, |b, &n| {
            b.iter(|| {
                let mut batch = data.begin_batch(now);
                for _ in 0..n {
                    black_box(batch.evaluate_one(UserId::new(1), &creds, &query));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_eval);
criterion_main!(benches);
