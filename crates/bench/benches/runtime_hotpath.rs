//! Criterion micro-benchmarks for the runtime hot path: the epoch-snapshot
//! master read (`latest_snapshot`, an Arc clone under a read lock) against
//! the legacy lock-and-deep-clone `latest_versions`, and per-query message
//! construction with `Arc`-shared credential/query payloads against the
//! deep-clone equivalent the messages used to carry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safetx_core::{Msg, SharedCatalog};
use safetx_policy::{Atom, CaRegistry, CertificateAuthority, Constant, Credential, PolicyBuilder};
use safetx_txn::{Operation, QuerySpec};
use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, TxnId, UserId};
use std::hint::black_box;
use std::sync::Arc;

/// A catalog holding `n` distinct policies, so the version map deep clone
/// has real weight.
fn catalog_with(n: u64) -> SharedCatalog {
    let catalog = SharedCatalog::new();
    for p in 0..n {
        let policy = PolicyBuilder::new(PolicyId::new(p), AdminDomain::new(p))
            .rules_text("grant(read, records) :- role(U, member).")
            .expect("rules parse")
            .build();
        catalog.publish(policy);
    }
    catalog
}

fn bench_master_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/master_read");
    for &n in &[4u64, 16, 64] {
        let catalog = catalog_with(n);
        group.bench_with_input(
            BenchmarkId::new("lock_and_clone", n),
            &catalog,
            |b, catalog| b.iter(|| black_box(catalog.latest_versions())),
        );
        group.bench_with_input(
            BenchmarkId::new("epoch_snapshot", n),
            &catalog,
            |b, catalog| b.iter(|| black_box(catalog.latest_snapshot())),
        );
    }
    group.finish();
}

fn credentials(count: usize) -> Vec<Credential> {
    let mut registry = CaRegistry::new();
    registry.register(CertificateAuthority::new(CaId::new(0), 7));
    let ca = registry.ca_mut(CaId::new(0)).expect("registered");
    (0..count)
        .map(|i| {
            ca.issue(
                UserId::new(1),
                Atom::fact(
                    "role",
                    vec![
                        Constant::symbol(format!("u{i}")),
                        Constant::symbol("member"),
                    ],
                ),
                Timestamp::ZERO,
                Timestamp::MAX,
            )
        })
        .collect()
}

fn query(server: u64) -> QuerySpec {
    QuerySpec::new(
        ServerId::new(server),
        "write",
        "records",
        vec![Operation::Add(DataItemId::new(server * 100), 1)],
    )
}

/// Builds one `ExecQuery` per server the way the TM's send loop does after
/// the zero-clone refactor: the `Arc`s are created once per transaction and
/// each message clones only the pointers.
fn build_arc_messages(creds: &Arc<[Credential]>, queries: &[Arc<QuerySpec>]) -> Vec<Msg> {
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| Msg::ExecQuery {
            txn: TxnId::new(1),
            query_index: i,
            query: Arc::clone(q),
            user: UserId::new(1),
            credentials: Arc::clone(creds),
            evaluate_proof: true,
            pin_versions: safetx_core::VersionMap::new(),
            capabilities: Vec::new(),
        })
        .collect()
}

/// The pre-refactor equivalent: every message deep-clones the credential
/// vector and the query spec before wrapping them (the wrap is where the
/// old `Vec<Credential>`/`QuerySpec` payloads paid their allocation).
fn build_cloned_messages(creds: &[Credential], queries: &[QuerySpec]) -> Vec<Msg> {
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| Msg::ExecQuery {
            txn: TxnId::new(1),
            query_index: i,
            query: Arc::new(q.clone()),
            user: UserId::new(1),
            credentials: creds.to_vec().into(),
            evaluate_proof: true,
            pin_versions: safetx_core::VersionMap::new(),
            capabilities: Vec::new(),
        })
        .collect()
}

fn bench_message_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/exec_query_build");
    for &servers in &[3u64, 8, 16] {
        let raw_creds = credentials(4);
        let raw_queries: Vec<QuerySpec> = (0..servers).map(query).collect();
        let arc_creds: Arc<[Credential]> = raw_creds.clone().into();
        let arc_queries: Vec<Arc<QuerySpec>> = raw_queries.iter().cloned().map(Arc::new).collect();
        group.bench_with_input(
            BenchmarkId::new("deep_clone", servers),
            &(raw_creds, raw_queries),
            |b, (creds, queries)| b.iter(|| black_box(build_cloned_messages(creds, queries))),
        );
        group.bench_with_input(
            BenchmarkId::new("arc_share", servers),
            &(arc_creds, arc_queries),
            |b, (creds, queries)| b.iter(|| black_box(build_arc_messages(creds, queries))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_master_read, bench_message_build);
criterion_main!(benches);
