//! Criterion micro-benchmarks for the pure protocol state machines (no
//! simulator, no I/O): 2PV collection/validation, 2PVC commit, and the 2PC
//! participant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safetx_core::{ConsistencyLevel, TwoPvc, ValidationConfig, ValidationReply, ValidationRound};
use safetx_txn::{CommitVariant, Participant, Vote};
use safetx_types::{PolicyId, PolicyVersion, ServerId, TxnId};
use std::collections::BTreeSet;
use std::hint::black_box;

fn participants(n: u64) -> BTreeSet<ServerId> {
    (0..n).map(ServerId::new).collect()
}

fn reply(version: u64) -> ValidationReply {
    ValidationReply {
        vote: Vote::Yes,
        truth: true,
        conflict: false,
        versions: [(PolicyId::new(0), PolicyVersion(version))].into(),
        proofs: vec![],
    }
}

fn bench_two_pv(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/2pv_clean_round");
    for &n in &[4u64, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut v = ValidationRound::new(
                    participants(n),
                    ValidationConfig::two_pv(ConsistencyLevel::View),
                );
                let mut actions = v.start();
                for i in 0..n {
                    actions.extend(v.on_reply(ServerId::new(i), reply(1)));
                }
                black_box(actions)
            })
        });
    }
    group.finish();
}

fn bench_two_pv_update_round(c: &mut Criterion) {
    c.bench_function("protocol/2pv_update_round_n16", |b| {
        b.iter(|| {
            let n = 16;
            let mut v = ValidationRound::new(
                participants(n),
                ValidationConfig::two_pv(ConsistencyLevel::View),
            );
            let mut actions = v.start();
            // One participant is ahead; the rest are stale and re-reply.
            actions.extend(v.on_reply(ServerId::new(0), reply(2)));
            for i in 1..n {
                actions.extend(v.on_reply(ServerId::new(i), reply(1)));
            }
            for i in 1..n {
                actions.extend(v.on_reply(ServerId::new(i), reply(2)));
            }
            black_box(actions)
        })
    });
}

fn bench_two_pvc(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/2pvc_clean_commit");
    for &n in &[4u64, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut pvc = TwoPvc::new(
                    TxnId::new(1),
                    participants(n),
                    ConsistencyLevel::View,
                    CommitVariant::Standard,
                    true,
                );
                let mut actions = pvc.start();
                for i in 0..n {
                    actions.extend(pvc.on_reply(ServerId::new(i), reply(1)));
                }
                for i in 0..n {
                    actions.extend(pvc.on_ack(ServerId::new(i)));
                }
                black_box(actions)
            })
        });
    }
    group.finish();
}

fn bench_participant(c: &mut Criterion) {
    c.bench_function("protocol/participant_prepare_decide", |b| {
        b.iter(|| {
            let mut p = Participant::new(TxnId::new(1), CommitVariant::Standard);
            let mut outputs = p.on_prepare(
                Vote::Yes,
                Some(true),
                vec![(PolicyId::new(0), PolicyVersion(1))],
            );
            outputs.extend(p.on_decision(safetx_txn::Decision::Commit));
            black_box(outputs)
        })
    });
}

criterion_group!(
    benches,
    bench_two_pv,
    bench_two_pv_update_round,
    bench_two_pvc,
    bench_participant
);
criterion_main!(benches);
