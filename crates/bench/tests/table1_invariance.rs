//! Table I invariance: the paper-model message and proof counts are part
//! of the repo's contract, and runtime refactors (Arc-based message
//! payloads, the protocol/data-plane split, sharded locks) must not move
//! them. Every cell is pinned to the exact measured value the `table1`
//! binary reports at n = 5, not just the paper's `<=` bound — a count
//! that drifts by even one message fails here before it reaches the
//! rendered table.

use safetx_bench::{run_single, run_single_threaded, Staleness};
use safetx_core::{complexity, ConsistencyLevel, ProofScheme};

const N: u64 = 5;

/// The worst-case adversary per cell, mirroring the `table1` binary.
fn adversary(scheme: ProofScheme, level: ConsistencyLevel) -> Staleness {
    match (scheme, level) {
        (ProofScheme::Deferred | ProofScheme::Punctual, ConsistencyLevel::View) => {
            Staleness::OneAhead
        }
        (ProofScheme::Deferred | ProofScheme::Punctual, ConsistencyLevel::Global) => {
            Staleness::AllStale
        }
        _ => Staleness::None,
    }
}

/// Exact measured (messages, proofs, rounds) per cell at n = u = 5.
/// The view-consistency Deferred/Punctual cells measure 28 messages —
/// below the paper's 30 — because some replica always defines the largest
/// version, so at most n − 1 participants re-validate.
fn expected(scheme: ProofScheme, level: ConsistencyLevel) -> (u64, u64, u64) {
    match (scheme, level) {
        (ProofScheme::Deferred, ConsistencyLevel::View) => (28, 9, 2),
        (ProofScheme::Deferred, ConsistencyLevel::Global) => (32, 10, 2),
        (ProofScheme::Punctual, ConsistencyLevel::View) => (28, 14, 2),
        (ProofScheme::Punctual, ConsistencyLevel::Global) => (32, 15, 2),
        (ProofScheme::IncrementalPunctual, ConsistencyLevel::View) => (20, 5, 1),
        (ProofScheme::IncrementalPunctual, ConsistencyLevel::Global) => (25, 5, 1),
        (ProofScheme::Continuous, ConsistencyLevel::View) => (50, 15, 1),
        (ProofScheme::Continuous, ConsistencyLevel::Global) => (56, 20, 1),
    }
}

#[test]
fn table1_counts_are_pinned() {
    for scheme in ProofScheme::ALL {
        for level in ConsistencyLevel::ALL {
            let run = run_single(scheme, level, N as usize, adversary(scheme, level));
            let (msgs, proofs, rounds) = expected(scheme, level);
            assert!(
                run.committed,
                "{scheme}/{level}: worst-case run must commit"
            );
            assert_eq!(
                run.metrics.rounds.max(1),
                rounds,
                "{scheme}/{level}: round count drifted"
            );
            assert_eq!(
                run.metrics.messages, msgs,
                "{scheme}/{level}: message count drifted"
            );
            assert_eq!(
                run.metrics.proofs, proofs,
                "{scheme}/{level}: proof count drifted"
            );
            // The pinned values must also stay within the paper's bounds —
            // this keeps the fixture honest if the formulas change.
            let r = run.metrics.rounds.max(1);
            assert!(run.metrics.messages <= complexity::max_messages(scheme, level, N, N, r));
            assert!(run.metrics.proofs <= complexity::max_proofs(scheme, level, N, r));
        }
    }
}

/// The threaded runtime drives the same sans-io `TmCore` as the
/// simulator, so its Table I counters must land on the exact same pinned
/// values — same worst-case adversary, same `n = u = 5` layout. A drift
/// here means one driver grew accounting of its own.
#[test]
fn threaded_runtime_counts_match_table1() {
    for scheme in ProofScheme::ALL {
        for level in ConsistencyLevel::ALL {
            let run = run_single_threaded(scheme, level, N as usize, adversary(scheme, level));
            let (msgs, proofs, rounds) = expected(scheme, level);
            assert!(
                run.committed,
                "{scheme}/{level}: threaded worst-case run must commit"
            );
            assert_eq!(
                run.metrics.rounds.max(1),
                rounds,
                "{scheme}/{level}: threaded round count drifted"
            );
            assert_eq!(
                run.metrics.messages, msgs,
                "{scheme}/{level}: threaded message count drifted"
            );
            assert_eq!(
                run.metrics.proofs, proofs,
                "{scheme}/{level}: threaded proof count drifted"
            );
            let r = run.metrics.rounds.max(1);
            assert!(run.metrics.messages <= complexity::max_messages(scheme, level, N, N, r));
            assert!(run.metrics.proofs <= complexity::max_proofs(scheme, level, N, r));
        }
    }
}

#[test]
fn log_complexity_is_pinned() {
    let clean = run_single(
        ProofScheme::Deferred,
        ConsistencyLevel::View,
        N as usize,
        Staleness::None,
    );
    assert!(clean.committed);
    assert_eq!(
        clean.forced_logs,
        2 * N + 1,
        "clean commit must force exactly 2n + 1 log writes"
    );
}
