//! Shared helpers for the reproduction binaries and Criterion benches.
//!
//! The central entry point is [`run_single`], which executes exactly one
//! transaction of `u = n` queries (one per server — Table I's worst-case
//! layout) under a controlled staleness setup and returns the paper-model
//! cost counters, plus [`run_traced`] which additionally returns the event
//! trace used by the timeline renderers (Figures 3–7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use safetx_core::{
    CloudServerActor, ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme, TxnRecord,
};
use safetx_metrics::ProtocolMetrics;
use safetx_policy::{Atom, Constant, Policy, PolicyBuilder};
use safetx_sim::Trace;
use safetx_txn::{Operation, QuerySpec, TransactionSpec};
use safetx_types::{
    AdminDomain, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId,
};

/// How policy replicas are (mis-)aligned before the transaction runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Staleness {
    /// All replicas and the catalog agree at v1 (clean run, `r = 1`).
    None,
    /// The catalog holds v2 but every replica is still at v1 (the global
    /// worst case: the master's answer makes everyone stale, `r = 2`).
    AllStale,
    /// Server 0 already installed v2 while the others are at v1 (the view
    /// worst case: one participant's version forces updates everywhere
    /// else, `r = 2`, `2u − 1` proofs).
    OneAhead,
}

/// Outcome of a single measured transaction.
#[derive(Debug, Clone)]
pub struct SingleRun {
    /// Paper-model counters (messages, proofs, rounds, forced logs).
    pub metrics: ProtocolMetrics,
    /// Whether the transaction committed.
    pub committed: bool,
    /// The full per-transaction record.
    pub record: TxnRecord,
    /// Proof evaluations counted at the servers (cross-check).
    pub server_proofs: u64,
    /// Forced log writes across the TM and all participants.
    pub forced_logs: u64,
}

/// The member rule set used by all measurement runs (any version keeps
/// proofs TRUE so the commit path is exercised end to end).
fn member_policy(version: u64) -> Policy {
    let base = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("static rules parse")
        .build();
    if version <= 1 {
        base
    } else {
        let mut p = base;
        for _ in 1..version {
            p = p.updated(p.rules().clone());
        }
        p
    }
}

/// Builds the worst-case transaction: `u = n` read queries, one per server.
#[must_use]
pub fn worst_case_txn(n: usize) -> TransactionSpec {
    let queries = (0..n)
        .map(|i| {
            QuerySpec::new(
                ServerId::new(i as u64),
                "read",
                "records",
                vec![Operation::Read(DataItemId::new(i as u64))],
            )
        })
        .collect();
    TransactionSpec::new(TxnId::new(0), UserId::new(1), queries)
}

fn build_experiment(
    scheme: ProofScheme,
    level: ConsistencyLevel,
    n: usize,
    staleness: Staleness,
    tracing: bool,
) -> Experiment {
    let mut exp = Experiment::new(ExperimentConfig {
        servers: n,
        scheme,
        consistency: level,
        gossip: false, // staleness is controlled, never repaired behind our back
        ..Default::default()
    });
    if tracing {
        exp.world_mut().enable_tracing();
    }
    exp.catalog().publish(member_policy(1));
    exp.install_everywhere(PolicyId::new(0), PolicyVersion(1));
    match staleness {
        Staleness::None => {}
        Staleness::AllStale => {
            exp.catalog().publish(member_policy(2));
        }
        Staleness::OneAhead => {
            exp.catalog().publish(member_policy(2));
            exp.install_at(ServerId::new(0), PolicyId::new(0), PolicyVersion(2));
        }
    }
    for i in 0..n {
        exp.seed_item(
            ServerId::new(i as u64),
            DataItemId::new(i as u64),
            safetx_store::Value::Int(1),
        );
    }
    exp
}

fn submit_measured(exp: &mut Experiment) {
    let credential = exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    let spec = worst_case_txn(exp.book().servers.len());
    exp.submit(spec, vec![credential], Duration::ZERO);
}

/// Runs one worst-case transaction and returns its cost counters.
///
/// # Panics
///
/// Panics when the run produces no transaction record (harness bug).
#[must_use]
pub fn run_single(
    scheme: ProofScheme,
    level: ConsistencyLevel,
    n: usize,
    staleness: Staleness,
) -> SingleRun {
    let mut exp = build_experiment(scheme, level, n, staleness, false);
    submit_measured(&mut exp);
    exp.run();
    let report = exp.report();
    let record = report.records.first().expect("one transaction ran").clone();
    SingleRun {
        metrics: record.metrics,
        committed: record.outcome.is_commit(),
        record,
        server_proofs: report.server_proofs,
        forced_logs: report.forced_logs,
    }
}

/// Outcome of a single measured transaction on the threaded runtime.
#[derive(Debug, Clone)]
pub struct ThreadedRun {
    /// Paper-model counters (messages, proofs, rounds, forced logs),
    /// counted by the same shared `TmCore` accounting as the simulator.
    pub metrics: ProtocolMetrics,
    /// Whether the transaction committed.
    pub committed: bool,
}

/// Runs the same worst-case transaction as [`run_single`] — `u = n`
/// queries, one per server, under the same controlled staleness setup —
/// but on the threaded runtime ([`safetx_runtime::Cluster`]) instead of
/// the discrete-event simulator. Both runtimes drive the identical
/// sans-io `TmCore`, so their Table I counters must agree cell by cell.
#[must_use]
pub fn run_single_threaded(
    scheme: ProofScheme,
    level: ConsistencyLevel,
    n: usize,
    staleness: Staleness,
) -> ThreadedRun {
    use safetx_runtime::{Cluster, ClusterConfig};

    let cluster = Cluster::new(ClusterConfig {
        servers: n,
        scheme,
        consistency: level,
        variant: safetx_txn::CommitVariant::Standard,
        ..Default::default()
    });
    cluster.publish_policy(member_policy(1));
    match staleness {
        Staleness::None => {}
        Staleness::AllStale => {
            cluster.catalog().publish(member_policy(2));
        }
        Staleness::OneAhead => {
            cluster.catalog().publish(member_policy(2));
            cluster.configure_server(ServerId::new(0), |core| {
                core.install_policy(PolicyId::new(0), PolicyVersion(2));
            });
        }
    }
    for i in 0..n {
        cluster.configure_server(ServerId::new(i as u64), move |core| {
            core.store_mut().write(
                DataItemId::new(i as u64),
                safetx_store::Value::Int(1),
                Timestamp::ZERO,
            );
        });
    }
    let credential = cluster.cas().with_mut(|registry| {
        registry
            .ca_mut(safetx_types::CaId::new(0))
            .expect("default CA")
            .issue(
                UserId::new(1),
                Atom::fact(
                    "role",
                    vec![Constant::symbol("u1"), Constant::symbol("member")],
                ),
                Timestamp::ZERO,
                Timestamp::MAX,
            )
    });
    let result = cluster.execute(&worst_case_txn(n), &[credential]);
    let run = ThreadedRun {
        metrics: result.metrics,
        committed: result.outcome.is_commit(),
    };
    cluster.shutdown();
    run
}

/// Like [`run_single`] but with tracing enabled; returns the run and the
/// trace.
///
/// # Panics
///
/// Panics when the run produces no transaction record (harness bug).
#[must_use]
pub fn run_traced(
    scheme: ProofScheme,
    level: ConsistencyLevel,
    n: usize,
    staleness: Staleness,
) -> (SingleRun, Trace) {
    let mut exp = build_experiment(scheme, level, n, staleness, true);
    submit_measured(&mut exp);
    exp.run();
    let report = exp.report();
    let record = report.records.first().expect("one transaction ran").clone();
    let run = SingleRun {
        metrics: record.metrics,
        committed: record.outcome.is_commit(),
        record,
        server_proofs: report.server_proofs,
        forced_logs: report.forced_logs,
    };
    let trace = exp.world().trace().expect("tracing enabled").clone();
    (run, trace)
}

/// Looks up which server (if any) hosts the given trace node, given the
/// deployment size used by [`run_traced`] (master = 0, TM = 1, servers
/// follow).
#[must_use]
pub fn server_of_node(node: safetx_sim::NodeId, n: usize) -> Option<ServerId> {
    let index = node.index();
    if index >= 2 && index < 2 + n as u64 {
        Some(ServerId::new(index - 2))
    } else {
        None
    }
}

mod pool;

pub use pool::run_grid;

/// Re-export for binaries that need a CloudServerActor peek.
pub use safetx_core::complexity;

#[allow(unused_imports)]
use CloudServerActor as _; // keep the dependency surface documented

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_commit_for_all_schemes() {
        for scheme in ProofScheme::ALL {
            for level in ConsistencyLevel::ALL {
                let run = run_single(scheme, level, 3, Staleness::None);
                assert!(run.committed, "{scheme}/{level}");
            }
        }
    }

    #[test]
    fn tm_proof_accounting_matches_server_counters() {
        for scheme in ProofScheme::ALL {
            let run = run_single(scheme, ConsistencyLevel::View, 4, Staleness::None);
            assert_eq!(
                run.metrics.proofs, run.server_proofs,
                "{scheme}: TM-side and server-side proof counts must agree"
            );
        }
    }

    #[test]
    fn deferred_view_worst_case_hits_2u_minus_1_proofs() {
        let n = 5;
        let run = run_single(
            ProofScheme::Deferred,
            ConsistencyLevel::View,
            n,
            Staleness::OneAhead,
        );
        assert!(run.committed);
        assert_eq!(run.metrics.rounds, 2);
        assert_eq!(run.metrics.proofs, 2 * n as u64 - 1);
    }

    #[test]
    fn measured_messages_never_exceed_table_one() {
        // Table I's Continuous rows assume each per-query 2PV completes in
        // one round ("consistency is maintained throughout"), so staleness
        // setups — whose execution-time update rounds the formula does not
        // model — are asserted only for the other schemes.
        for scheme in ProofScheme::ALL {
            for level in ConsistencyLevel::ALL {
                let staleness_cases: &[Staleness] = if scheme == ProofScheme::Continuous {
                    &[Staleness::None]
                } else {
                    &[Staleness::None, Staleness::AllStale, Staleness::OneAhead]
                };
                for &staleness in staleness_cases {
                    let n = 4u64;
                    let run = run_single(scheme, level, n as usize, staleness);
                    let r = run.metrics.rounds.max(1);
                    let bound = complexity::max_messages(scheme, level, n, n, r);
                    assert!(
                        run.metrics.messages <= bound,
                        "{scheme}/{level}/{staleness:?}: measured {} > bound {bound} (r={r})",
                        run.metrics.messages
                    );
                }
            }
        }
    }

    #[test]
    fn clean_runs_match_expected_counts_exactly() {
        // With aligned replicas every r-dependent scheme runs one round.
        // Table I's view columns for Deferred/Punctual bake in the r = 2
        // worst case (`2n + 4n`), so the clean expectation there is `4n`;
        // all other cells equal the formula at r = 1.
        use ConsistencyLevel::{Global, View};
        use ProofScheme::{Continuous, Deferred, IncrementalPunctual, Punctual};
        let n = 5u64;
        let u = n;
        let cases: &[(ProofScheme, ConsistencyLevel, u64, u64)] = &[
            (Deferred, View, 4 * n, u),
            (Punctual, View, 4 * n, 2 * u),
            (IncrementalPunctual, View, 4 * n, u),
            (Continuous, View, u * (u + 1) + 4 * n, u * (u + 1) / 2),
            (Deferred, Global, 4 * n + 1, u),
            (Punctual, Global, 4 * n + 1, 2 * u),
            (IncrementalPunctual, Global, 4 * n + u, u),
            (
                Continuous,
                Global,
                u * (u + 1) + u + 4 * n + 1,
                u * (u + 1) / 2 + u,
            ),
        ];
        for &(scheme, level, messages, proofs) in cases {
            let run = run_single(scheme, level, n as usize, Staleness::None);
            assert!(run.committed, "{scheme}/{level}");
            assert_eq!(run.metrics.rounds, 1, "{scheme}/{level} rounds");
            assert_eq!(run.metrics.messages, messages, "{scheme}/{level} messages");
            assert_eq!(run.metrics.proofs, proofs, "{scheme}/{level} proofs");
        }
    }

    #[test]
    fn global_all_stale_matches_table_one_at_r2() {
        for scheme in [ProofScheme::Deferred, ProofScheme::Punctual] {
            let n = 4u64;
            let run = run_single(
                scheme,
                ConsistencyLevel::Global,
                n as usize,
                Staleness::AllStale,
            );
            assert!(run.committed, "{scheme}");
            assert_eq!(run.metrics.rounds, 2, "{scheme}");
            assert_eq!(
                run.metrics.messages,
                complexity::max_messages(scheme, ConsistencyLevel::Global, n, n, 2),
                "{scheme} messages tight at r = 2"
            );
            assert_eq!(
                run.metrics.proofs,
                complexity::max_proofs(scheme, ConsistencyLevel::Global, n, 2),
                "{scheme} proofs tight at r = 2"
            );
        }
    }
}
