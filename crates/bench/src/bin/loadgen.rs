//! Load-generation harness for the concurrent transaction service.
//!
//! Sweeps proof scheme × consistency level × closed-loop client count over
//! `safetx-service` (worker pool + admission queue + abort-retry) on the
//! threaded runtime, then demonstrates open-loop Poisson arrivals and
//! deterministic overload shedding. Writes machine-readable results to
//! `BENCH_loadgen.json` and self-validates them: the emitted JSON must
//! re-parse, and for every cell `commits + terminal_aborts +
//! retries_exhausted + overload_rejections == submissions`.
//!
//! Transaction *outcome totals* are deterministic under a fixed seed: the
//! policy-denied fraction is positional, authorized transactions retry
//! transient aborts until they commit, and the overload section gates a
//! server thread so the shed count is exact. Latencies and throughput are
//! wall-clock and vary run to run; outcomes do not.
//!
//! ```bash
//! cargo run --release -p safetx-bench --bin loadgen [-- [--smoke] [txns_per_client] [seed]]
//! ```
//!
//! `--smoke` runs the small-n CI configuration (2 servers, 4 clients,
//! ~200 transactions) with the same validation.
//!
//! `--net` swaps the execution backend for the wire-protocol runtime
//! (`safetx-net`): the same service layer, but every protocol message is
//! encoded into a length-prefixed frame and crosses a `UnixStream`. The
//! outcome totals must be byte-identical to a threaded run with the same
//! arguments — CI diffs the two.
//!
//! `--zipf <theta>` and `--keys <n>` switch key selection from the default
//! uniform spread to a Zipf(theta) draw over an `n`-key universe (servers
//! default missing items to zero, so the universe can span millions of
//! keys without seeding them). Both default off; a run without them is
//! identical to one built before the knobs existed.

use safetx_core::{trusted, ConcurrencyMode, ConsistencyLevel, ProofScheme};
use safetx_metrics::Json;
use safetx_net::NetCluster;
use safetx_policy::{Atom, Constant, Credential, PolicyBuilder};
use safetx_runtime::{Cluster, ClusterConfig};
use safetx_service::{
    run_closed_loop, run_open_loop, RetryPolicy, RuntimeKind, ServiceConfig, TxnService,
};
use safetx_sim::SimRng;
use safetx_store::Value;
use safetx_txn::{Operation, QuerySpec, TransactionSpec};
use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, UserId};
use safetx_workload::{PoissonArrivals, ZipfLarge};
use std::sync::Arc;

/// Data items seeded per server; transaction keys are spread over these.
const ITEMS_PER_SERVER: u64 = 64;
/// Every DENY_EVERY-th submission goes out without credentials and is
/// policy-denied — a deterministic terminal-abort fraction.
const DENY_EVERY: u64 = 8;

fn build_runtime(
    net: bool,
    servers: usize,
    scheme: ProofScheme,
    consistency: ConsistencyLevel,
) -> RuntimeKind {
    let config = ClusterConfig {
        servers,
        scheme,
        consistency,
        ..Default::default()
    };
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build();
    if net {
        let cluster = NetCluster::new(config);
        cluster.publish_policy(policy);
        for s in 0..servers as u64 {
            cluster.configure_server(ServerId::new(s), move |core| {
                for j in 0..ITEMS_PER_SERVER {
                    core.store_mut().write(
                        DataItemId::new(s * 100 + j),
                        Value::Int(10),
                        Timestamp::ZERO,
                    );
                }
            });
        }
        RuntimeKind::Net(Arc::new(cluster))
    } else {
        let cluster = Cluster::new(config);
        cluster.publish_policy(policy);
        for s in 0..servers as u64 {
            cluster.configure_server(ServerId::new(s), move |core| {
                for j in 0..ITEMS_PER_SERVER {
                    core.store_mut().write(
                        DataItemId::new(s * 100 + j),
                        Value::Int(10),
                        Timestamp::ZERO,
                    );
                }
            });
        }
        RuntimeKind::Threaded(Arc::new(cluster))
    }
}

fn member_credential(runtime: &RuntimeKind) -> Credential {
    runtime.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).unwrap().issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    })
}

/// How transaction keys are chosen.
#[derive(Clone, Copy)]
enum KeyMode {
    /// The original deterministic spread: slot `(g·7) mod 64` on every
    /// server. Contention is real but bounded and outcomes are positional.
    Spread,
    /// Zipf(theta)-ranked draws over a `keys_per_server`-key universe per
    /// server (`--zipf`/`--keys`): rank 0 is the hottest key, and the
    /// draw is a pure function of (seed, txn index, server), so outcomes
    /// stay reproducible under a fixed seed.
    Zipf { dist: ZipfLarge, seed: u64 },
}

/// A read-modify-write across every server, key slots chosen by `mode`.
fn spec_for(runtime: &RuntimeKind, global_index: u64, mode: KeyMode) -> TransactionSpec {
    let servers = runtime.config().servers as u64;
    let queries = (0..servers)
        .map(|s| {
            let item = match mode {
                KeyMode::Spread => s * 100 + (global_index * 7) % ITEMS_PER_SERVER,
                KeyMode::Zipf { dist, seed } => {
                    let mut rng =
                        SimRng::new(seed ^ global_index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ s);
                    s * dist.len() + dist.sample(&mut rng)
                }
            };
            QuerySpec::new(
                ServerId::new(s),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(item), 1)],
            )
        })
        .collect();
    TransactionSpec::new(runtime.next_txn_id(), UserId::new(1), queries)
}

fn denied(global_index: u64) -> bool {
    global_index % DENY_EVERY == DENY_EVERY - 1
}

/// Running aggregate of outcome totals across every section — the part of
/// the report that must be identical run to run under a fixed seed.
#[derive(Default)]
struct Totals {
    submissions: u64,
    commits: u64,
    terminal_aborts: u64,
    retries_exhausted: u64,
    overload_rejections: u64,
}

impl Totals {
    fn absorb(&mut self, stats: &safetx_service::ServiceStats) {
        self.submissions += stats.submissions;
        self.commits += stats.commits;
        self.terminal_aborts += stats.terminal_aborts;
        self.retries_exhausted += stats.retries_exhausted;
        self.overload_rejections += stats.overload_rejections;
    }

    fn to_json(&self) -> Json {
        Json::object()
            .with("submissions", self.submissions)
            .with("commits", self.commits)
            .with("terminal_aborts", self.terminal_aborts)
            .with("retries_exhausted", self.retries_exhausted)
            .with("overload_rejections", self.overload_rejections)
    }
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        // Generous budget: in the closed loop every authorized transaction
        // retries transient aborts until it commits, so commit totals are
        // a function of the deterministic denied fraction alone.
        max_retries: 64,
        base_backoff: std::time::Duration::from_micros(50),
        max_backoff: std::time::Duration::from_millis(2),
        jitter_percent: 50,
        ..RetryPolicy::default()
    }
}

/// One closed-loop sweep cell. Returns its JSON row and folds outcome
/// totals into `totals`.
fn closed_loop_cell(
    runtime: RuntimeKind,
    clients: usize,
    per_client: usize,
    seed: u64,
    mode: KeyMode,
    totals: &mut Totals,
) -> Json {
    let (scheme, consistency) = (runtime.config().scheme, runtime.config().consistency);
    let service = TxnService::with_runtime(
        runtime.clone(),
        ServiceConfig {
            workers: clients.min(8),
            queue_depth: (2 * clients).max(8),
            retry: retry_policy(),
            seed,
        },
    );
    let cred = member_credential(&runtime);
    let report = run_closed_loop(&service, clients, per_client, |client, index| {
        let g = (client * per_client + index) as u64;
        let creds = if denied(g) {
            vec![]
        } else {
            vec![cred.clone()]
        };
        (spec_for(&runtime, g, mode), creds)
    });

    // Post-hoc Definition 4 audit: every commit's recorded view must be
    // trusted against the catalog's latest policy versions.
    let authority = runtime.catalog().latest_versions();
    let audited = report
        .completions
        .iter()
        .filter(|c| c.outcome.is_commit())
        .filter(|c| trusted::is_trusted(&c.view, consistency, &authority))
        .count();
    assert_eq!(
        audited,
        report.commits(),
        "{scheme}/{consistency}: a committed view failed the Definition 4 audit"
    );

    let mut stats = service.shutdown();
    assert!(
        stats.conserves(),
        "{scheme}/{consistency}/{clients}: outcome accounting leaked: {stats:?}"
    );
    totals.absorb(&stats);
    let throughput = stats.throughput_tps(report.wall);
    Json::object()
        .with("mode", "closed_loop")
        .with("scheme", format!("{scheme}"))
        .with("consistency", format!("{consistency}"))
        .with("clients", clients)
        .with("per_client", per_client)
        .with("wall_ms", report.wall.as_secs_f64() * 1_000.0)
        .with("throughput_tps", throughput)
        .with("audited_commits", audited)
        .with("stats", stats.to_json())
}

/// Open-loop Poisson section: arrivals do not wait for completions. The
/// queue is deeper than the arrival count so outcome totals stay
/// deterministic; shedding is demonstrated by the gated overload section.
fn open_loop_section(
    net: bool,
    seed: u64,
    count: usize,
    mode: KeyMode,
    totals: &mut Totals,
) -> Json {
    let runtime = build_runtime(net, 3, ProofScheme::Punctual, ConsistencyLevel::View);
    let service = TxnService::with_runtime(
        runtime.clone(),
        ServiceConfig {
            workers: 4,
            queue_depth: count.max(8),
            retry: retry_policy(),
            seed,
        },
    );
    let cred = member_credential(&runtime);
    let arrivals = PoissonArrivals::new(safetx_types::Duration::from_micros(300), seed);
    let rate = arrivals.rate_per_sec();
    let report = run_open_loop(&service, arrivals, count, |index| {
        let g = index as u64;
        let creds = if denied(g) {
            vec![]
        } else {
            vec![cred.clone()]
        };
        (spec_for(&runtime, g, mode), creds)
    });
    let mut stats = service.shutdown();
    assert!(stats.conserves(), "open loop leaked outcomes: {stats:?}");
    totals.absorb(&stats);
    Json::object()
        .with("mode", "open_loop")
        .with("arrival_rate_per_sec", rate)
        .with("offered", report.offered)
        .with("rejected", report.rejected)
        .with("wall_ms", report.wall.as_secs_f64() * 1_000.0)
        .with("throughput_tps", stats.throughput_tps(report.wall))
        .with("stats", stats.to_json())
}

/// Deterministic overload demonstration: gate server 0's thread shut, park
/// the single worker on it, fill the queue to depth, and burst `extra`
/// more submissions — exactly `extra` are shed. Then open the gate and
/// drain; everything admitted commits.
fn overload_section(
    net: bool,
    seed: u64,
    extra: usize,
    mode: KeyMode,
    totals: &mut Totals,
) -> Json {
    let depth = 4usize;
    let runtime = build_runtime(net, 2, ProofScheme::Deferred, ConsistencyLevel::View);
    let service = TxnService::with_runtime(
        runtime.clone(),
        ServiceConfig {
            workers: 1,
            queue_depth: depth,
            retry: retry_policy(),
            seed,
        },
    );
    let cred = member_credential(&runtime);

    // Configuration closures run on the server's event loop (a thread in
    // the threaded runtime, a socket host in the net runtime), so this
    // recv stalls server 0 (and the worker executing against it) until the
    // gate opens. configure_server blocks its caller, hence the helper
    // thread.
    let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
    let gated = runtime.clone();
    let stall = std::thread::spawn(move || match &gated {
        RuntimeKind::Threaded(cluster) => {
            cluster.configure_server(ServerId::new(0), move |_core| {
                let _ = gate_rx.recv();
            });
        }
        RuntimeKind::Net(cluster) => {
            cluster.configure_server(ServerId::new(0), move |_core| {
                let _ = gate_rx.recv();
            });
        }
        RuntimeKind::Sharded(_) => unreachable!("loadgen never builds a sharded backend"),
    });

    // Park the worker: submit one job and wait until it leaves the queue
    // (the worker is now blocked inside execute on the gated server).
    let mut handles = vec![service
        .try_submit(spec_for(&runtime, 0, mode), vec![cred.clone()])
        .expect("empty queue admits")];
    while service.queue_len() > 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    // Fill the queue to depth, then burst past it.
    let mut rejected = 0u64;
    for g in 0..(depth + extra) as u64 {
        match service.try_submit(spec_for(&runtime, g + 1, mode), vec![cred.clone()]) {
            Ok(h) => handles.push(h),
            Err(err) => {
                assert_eq!(err, safetx_service::AdmissionError::Overloaded);
                rejected += 1;
            }
        }
    }
    assert_eq!(
        rejected, extra as u64,
        "shedding must reject exactly the burst past queue depth"
    );
    gate_tx.send(()).expect("gate listener alive");
    stall.join().expect("stall helper");
    for handle in handles {
        assert!(handle.wait().outcome.is_commit(), "admitted work commits");
    }
    let mut stats = service.shutdown();
    assert!(stats.conserves(), "overload section leaked: {stats:?}");
    totals.absorb(&stats);
    Json::object()
        .with("mode", "overload")
        .with("queue_depth", depth)
        .with("burst_past_depth", extra)
        .with("rejected", rejected)
        .with("stats", stats.to_json())
}

/// Re-parses the emitted JSON and checks conservation on every section —
/// the same check CI's smoke step relies on.
fn validate(text: &str) {
    let parsed = Json::parse(text).expect("emitted JSON must re-parse");
    let num = |obj: &Json, key: &str| {
        obj.get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing numeric field {key}"))
    };
    let check = |cell: &Json, what: &str| {
        let stats = cell.get("stats").expect("cell has stats");
        let submissions = num(stats, "submissions");
        let accounted = num(stats, "commits")
            + num(stats, "terminal_aborts")
            + num(stats, "retries_exhausted")
            + num(stats, "overload_rejections");
        assert_eq!(
            accounted, submissions,
            "{what}: commits + aborts + rejections != submissions"
        );
    };
    let cells = parsed
        .get("closed_loop")
        .and_then(Json::as_array)
        .expect("closed_loop array");
    assert!(!cells.is_empty(), "sweep produced no cells");
    for (i, cell) in cells.iter().enumerate() {
        check(cell, &format!("closed_loop[{i}]"));
    }
    check(parsed.get("open_loop").expect("open_loop"), "open_loop");
    check(parsed.get("overload").expect("overload"), "overload");
    let totals = parsed.get("outcome_totals").expect("outcome_totals");
    assert!(
        num(totals, "overload_rejections") > 0,
        "no shedding observed"
    );
    assert!(
        num(totals, "terminal_aborts") > 0,
        "no policy denials observed"
    );
}

fn main() {
    let mut smoke = false;
    let mut net = false;
    let mut zipf_theta: Option<f64> = None;
    let mut keys: Option<u64> = None;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--net" {
            net = true;
        } else if arg == "--zipf" {
            let theta = args.next().expect("--zipf takes a theta value");
            zipf_theta = Some(theta.parse().expect("zipf theta"));
        } else if arg == "--keys" {
            let n = args.next().expect("--keys takes a key count");
            keys = Some(n.parse().expect("key count"));
        } else if arg == "--mode" {
            let mode = args.next().expect("--mode takes occ or locking");
            let mode = ConcurrencyMode::parse(&mode)
                .unwrap_or_else(|| panic!("unknown concurrency mode {mode:?}"));
            // Every runtime's ClusterConfig defaults its concurrency from
            // this variable, so one knob covers all sections and backends.
            std::env::set_var("SAFETX_CONCURRENCY_MODE", mode.to_string());
        } else {
            positional.push(arg);
        }
    }
    let per_client: usize = positional
        .first()
        .map(|s| s.parse().expect("txns_per_client"))
        .unwrap_or(25);
    let seed: u64 = positional
        .get(1)
        .map(|s| s.parse().expect("seed"))
        .unwrap_or(42);

    let (servers, client_counts, schemes, levels): (
        usize,
        Vec<usize>,
        Vec<ProofScheme>,
        Vec<ConsistencyLevel>,
    ) = if smoke {
        // Small-n CI configuration: 2 servers, 4 clients, 2 cells × 100
        // closed-loop transactions (~200 plus the open-loop/overload
        // sections).
        (
            2,
            vec![4],
            vec![ProofScheme::Deferred, ProofScheme::Continuous],
            vec![ConsistencyLevel::View],
        )
    } else {
        (
            3,
            vec![2, 4, 8],
            ProofScheme::ALL.to_vec(),
            ConsistencyLevel::ALL.to_vec(),
        )
    };

    // Either knob alone engages Zipf selection; the other takes a default.
    let mode = if zipf_theta.is_some() || keys.is_some() {
        let theta = zipf_theta.unwrap_or(0.0);
        let universe = keys.unwrap_or(servers as u64 * ITEMS_PER_SERVER);
        let per_server = universe.div_ceil(servers as u64).max(1);
        KeyMode::Zipf {
            dist: ZipfLarge::new(per_server, theta),
            seed,
        }
    } else {
        KeyMode::Spread
    };

    let mut totals = Totals::default();
    let mut cells = Vec::new();
    for &scheme in &schemes {
        for &consistency in &levels {
            for &clients in &client_counts {
                eprintln!("closed loop: {scheme} / {consistency} / {clients} clients");
                cells.push(closed_loop_cell(
                    build_runtime(net, servers, scheme, consistency),
                    clients,
                    per_client,
                    seed,
                    mode,
                    &mut totals,
                ));
            }
        }
    }
    eprintln!("open loop: Poisson arrivals");
    let open = open_loop_section(net, seed, if smoke { 40 } else { 80 }, mode, &mut totals);
    eprintln!("overload: gated burst");
    let overload = overload_section(net, seed, 6, mode, &mut totals);

    // Default runs emit exactly the pre-knob config shape; the Zipf keys
    // appear only when the knobs are engaged.
    let mut config_json = Json::object()
        .with("smoke", smoke)
        .with("runtime", if net { "net" } else { "threaded" })
        .with("servers", servers)
        .with("per_client", per_client)
        .with("seed", seed)
        .with("deny_every", DENY_EVERY)
        .with("concurrency", ConcurrencyMode::from_env().to_string());
    if let KeyMode::Zipf { dist, .. } = mode {
        config_json = config_json
            .with("zipf_theta", zipf_theta.unwrap_or(0.0))
            .with("keys_per_server", dist.len());
    }
    let report = Json::object()
        .with("config", config_json)
        .with("closed_loop", Json::Arr(cells))
        .with("open_loop", open)
        .with("overload", overload)
        .with("outcome_totals", totals.to_json());
    let text = report.render();
    let out = if net {
        "BENCH_loadgen_net.json"
    } else {
        "BENCH_loadgen.json"
    };
    std::fs::write(out, &text).unwrap_or_else(|e| panic!("write {out}: {e}"));
    validate(&text);
    println!(
        "loadgen OK: {} submissions, {} commits, {} terminal aborts, {} exhausted, {} shed \
         ({out})",
        totals.submissions,
        totals.commits,
        totals.terminal_aborts,
        totals.retries_exhausted,
        totals.overload_rejections
    );
}
