//! Reproduces the **Section VI-B trade-off study**: which scheme to use as
//! a function of transaction length vs. policy-update interval.
//!
//! The paper's guidance:
//!
//! * txn length < update interval, short txns  → **Deferred**
//! * txn length < update interval, long txns   → **Punctual**
//! * txn length > update interval, short txns  → **Incremental Punctual**
//! * txn length > update interval, long txns   → **Continuous**
//!
//! The binary runs every scheme in each of the four cells (plus a sweep
//! over update intervals) and reports commit latency, abort rate, wasted
//! work and the cost-per-successful-commit decision metric.
//!
//! ```bash
//! cargo run --release -p safetx-bench --bin tradeoff [-- transactions]
//! ```

use safetx_bench::run_grid;
use safetx_core::{ConsistencyLevel, ExperimentConfig, ProofScheme};
use safetx_metrics::AsciiTable;
use safetx_types::Duration;
use safetx_workload::{
    run_scenario, PolicyChurn, QueryCount, ScenarioConfig, ScenarioResult, WorkloadConfig,
};

struct Cell {
    label: &'static str,
    queries: usize,
    update_interval: Option<Duration>,
    /// The pair Section VI-B prescribes for this regime: {Deferred,
    /// Punctual} when transactions are shorter than the update interval,
    /// {Incremental, Continuous} otherwise.
    pair: [ProofScheme; 2],
    expected_winner: ProofScheme,
}

fn scenario(
    scheme: ProofScheme,
    queries: usize,
    update_interval: Option<Duration>,
    transactions: usize,
    seed: u64,
) -> ScenarioConfig {
    ScenarioConfig {
        experiment: ExperimentConfig {
            scheme,
            consistency: ConsistencyLevel::View,
            seed,
            // A proof evaluation costs real compute: proof-tree search plus
            // the online (OCSP-style) credential status check.
            proof_eval_delay: Duration::from_micros(250),
            ..Default::default()
        },
        workload: WorkloadConfig {
            transactions,
            queries_per_txn: QueryCount::Fixed(queries),
            servers: queries.max(2),
            mean_interarrival: Duration::from_millis(25),
            read_fraction: 0.5,
            ..Default::default()
        },
        churn: PolicyChurn {
            mean_update_interval: update_interval,
            // Half of the updates temporarily deny the workload's role for a
            // short window: the hazard that makes early detection pay.
            breaking_fraction: 0.3,
            break_duration: Duration::from_millis(2),
        },
        // Credentials are revoked by a background process (the Bob
        // scenario); exposure is proportional to transaction duration, so
        // long transactions are hit more often and late detection wastes
        // the whole transaction.
        revoke_fraction: 0.025 * queries as f64,
        revoke_after: Duration::from_micros(1_200 * queries as u64),
        // Rolling back an executed query costs undo work.
        undo_cost_per_query: Duration::from_millis(3),
    }
}

fn row(result: &ScenarioResult) -> Vec<String> {
    vec![
        format!("{:.2}", result.mean_commit_latency_ms().unwrap_or(f64::NAN)),
        format!("{:.1}%", result.abort_rate() * 100.0),
        format!("{:.1}", result.total_wasted_ms()),
        format!("{:.1}", result.mean_messages()),
        format!("{:.1}", result.mean_proofs()),
        if result.cost_per_commit_ms().is_finite() {
            format!("{:.2}", result.cost_per_commit_ms())
        } else {
            "inf".to_owned()
        },
    ]
}

fn main() {
    let transactions: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(42);

    println!(
        "Section VI-B trade-off study ({transactions} transactions per cell, view consistency)"
    );
    println!("decision metric: cost per successful commit = (committed + wasted time) / commits\n");

    // Short txns take ~2 queries (≈6 ms with 1 ms links); long ones 8
    // (≈20–80 ms depending on scheme). "Rare" updates arrive far apart;
    // "frequent" updates land within a transaction's lifetime.
    let cells = [
        Cell {
            label: "short txns, rare updates   (len < interval)",
            queries: 2,
            update_interval: Some(Duration::from_millis(60)),
            pair: [ProofScheme::Deferred, ProofScheme::Punctual],
            expected_winner: ProofScheme::Deferred,
        },
        Cell {
            label: "long txns, rare updates    (len < interval)",
            queries: 8,
            update_interval: Some(Duration::from_millis(60)),
            pair: [ProofScheme::Deferred, ProofScheme::Punctual],
            expected_winner: ProofScheme::Punctual,
        },
        Cell {
            label: "short txns, frequent updates (len > interval)",
            queries: 2,
            update_interval: Some(Duration::from_millis(6)),
            pair: [ProofScheme::IncrementalPunctual, ProofScheme::Continuous],
            expected_winner: ProofScheme::IncrementalPunctual,
        },
        Cell {
            label: "long txns, frequent updates  (len > interval)",
            queries: 8,
            update_interval: Some(Duration::from_millis(10)),
            pair: [ProofScheme::IncrementalPunctual, ProofScheme::Continuous],
            expected_winner: ProofScheme::Continuous,
        },
    ];

    // All 4 (cell) × 4 (scheme) simulations are independent seeded runs:
    // fan them out over the pool, then render in grid order as before.
    let cell_jobs: Vec<(usize, Option<Duration>, ProofScheme)> = cells
        .iter()
        .flat_map(|cell| {
            ProofScheme::ALL.map(|scheme| (cell.queries, cell.update_interval, scheme))
        })
        .collect();
    let cell_results: Vec<ScenarioResult> = run_grid(cell_jobs, |(queries, interval, scheme)| {
        run_scenario(&scenario(scheme, queries, interval, transactions, seed))
    });

    for (cell_index, cell) in cells.iter().enumerate() {
        let mut table = AsciiTable::new(vec![
            "scheme",
            "commit ms",
            "aborts",
            "wasted ms",
            "msgs/txn",
            "proofs/txn",
            "cost/commit",
        ]);
        table.title(format!("-- {} --", cell.label));
        let mut best_overall: Option<(ProofScheme, f64)> = None;
        let mut best_in_pair: Option<(ProofScheme, f64)> = None;
        for (scheme_index, scheme) in ProofScheme::ALL.into_iter().enumerate() {
            let result = &cell_results[cell_index * ProofScheme::ALL.len() + scheme_index];
            let cost = result.cost_per_commit_ms();
            if best_overall.is_none_or(|(_, b)| cost < b) {
                best_overall = Some((scheme, cost));
            }
            if cell.pair.contains(&scheme) && best_in_pair.is_none_or(|(_, b)| cost < b) {
                best_in_pair = Some((scheme, cost));
            }
            let mut cells_row = vec![scheme.to_string()];
            cells_row.extend(row(result));
            table.row(cells_row);
        }
        println!("{table}");
        let (pair_winner, _) = best_in_pair.expect("pair ran");
        let (overall, _) = best_overall.expect("four schemes ran");
        println!(
            "   winner within the regime's pair {{{} | {}}}: {pair_winner}   (paper: {})",
            cell.pair[0], cell.pair[1], cell.expected_winner
        );
        println!("   overall cheapest under the raw time metric: {overall}\n");
    }

    // Sweep: fixed length, varying update interval — shows the crossover
    // from Deferred/Punctual territory into Incremental/Continuous.
    println!("Sweep: 4-query transactions, cost/commit (ms) vs. policy-update interval");
    let mut table = AsciiTable::new(vec![
        "update interval",
        "Deferred",
        "Punctual",
        "Incremental",
        "Continuous",
    ]);
    const INTERVALS_MS: [u64; 8] = [2, 5, 10, 20, 50, 100, 200, 400];
    let sweep_jobs: Vec<(u64, ProofScheme)> = INTERVALS_MS
        .iter()
        .flat_map(|&interval_ms| ProofScheme::ALL.map(|scheme| (interval_ms, scheme)))
        .collect();
    let sweep_results: Vec<ScenarioResult> = run_grid(sweep_jobs, |(interval_ms, scheme)| {
        run_scenario(&scenario(
            scheme,
            4,
            Some(Duration::from_millis(interval_ms)),
            transactions,
            seed,
        ))
    });
    for (row_index, interval_ms) in INTERVALS_MS.into_iter().enumerate() {
        let mut cells_row = vec![format!("{interval_ms} ms")];
        for (scheme_index, _) in ProofScheme::ALL.into_iter().enumerate() {
            let result = &sweep_results[row_index * ProofScheme::ALL.len() + scheme_index];
            let cost = result.cost_per_commit_ms();
            cells_row.push(if cost.is_finite() {
                format!("{cost:.2}")
            } else {
                "inf".to_owned()
            });
        }
        table.row(cells_row);
    }
    println!("{table}");
}
