//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Master refresh policy** (global consistency): Section V-A offers
//!    two ways to use the master — retrieve the latest version once, or
//!    every round. We drive the `ValidationRound` state machine against a
//!    scripted adversary that publishes a new version every round and
//!    compare rounds, messages and outcomes.
//! 2. **Commit variants**: forced-log counts of Standard vs Presumed-Abort
//!    vs Presumed-Commit on commit-heavy and abort-heavy runs.
//! 3. **No-wait locking pressure**: abort rate as data access skew grows.
//!
//! ```bash
//! cargo run --release -p safetx-bench --bin ablation
//! ```

use safetx_bench::run_grid;
use safetx_core::{
    ConsistencyLevel, ExperimentConfig, ProofScheme, ValidationAction, ValidationConfig,
    ValidationOutcome, ValidationReply, ValidationRound,
};
use safetx_metrics::AsciiTable;
use safetx_txn::{CommitVariant, Vote};
use safetx_types::{Duration, PolicyId, PolicyVersion, ServerId};
use safetx_workload::{run_scenario, QueryCount, ScenarioConfig, WorkloadConfig};
use std::collections::BTreeSet;

/// Drives one 2PV under an adversary that publishes a fresh policy version
/// before every collection round, up to `updates_available` times.
/// Returns (rounds, request/update messages, outcome).
fn storm(refresh_each_round: bool, updates_available: u64) -> (u64, u64, ValidationOutcome) {
    let n = 3u64;
    let participants: BTreeSet<ServerId> = (0..n).map(ServerId::new).collect();
    let config = ValidationConfig {
        refresh_master_each_round: refresh_each_round,
        ..ValidationConfig::two_pv(ConsistencyLevel::Global)
    };
    let mut round = ValidationRound::new(participants, config);
    let mut master_version = 1u64; // version the master will answer with
    let mut published = 0u64;
    let mut replica_version = vec![1u64; n as usize];
    let mut actions = round.start();
    let mut messages = 0u64;
    let outcome = 'run: loop {
        let batch: Vec<ValidationAction> = std::mem::take(&mut actions);
        let mut to_reply: Vec<ServerId> = Vec::new();
        let mut master_asked = false;
        for action in batch {
            match action {
                ValidationAction::SendRequest(s) => {
                    messages += 1;
                    to_reply.push(s);
                }
                ValidationAction::SendUpdate(s, targets) => {
                    messages += 1;
                    let idx = s.index() as usize;
                    let target = targets[&PolicyId::new(0)].get();
                    replica_version[idx] = replica_version[idx].max(target);
                    to_reply.push(s);
                }
                ValidationAction::QueryMaster => {
                    messages += 1;
                    master_asked = true;
                }
                ValidationAction::Resolved(outcome) => break 'run outcome,
            }
        }
        if master_asked {
            // The adversary publishes a new version right before the master
            // answers, while updates remain.
            if published < updates_available {
                master_version += 1;
                published += 1;
            }
            actions.extend(round.on_master_versions(safetx_core::VersionMap::from([(
                PolicyId::new(0),
                PolicyVersion(master_version),
            )])));
        }
        for s in to_reply {
            let idx = s.index() as usize;
            actions.extend(round.on_reply(
                s,
                ValidationReply {
                    vote: Vote::Yes,
                    truth: true,
                    conflict: false,
                    versions: [(PolicyId::new(0), PolicyVersion(replica_version[idx]))].into(),
                    proofs: vec![],
                },
            ));
        }
    };
    (round.rounds(), messages, outcome)
}

fn master_refresh_ablation() {
    println!("1. Global consistency: retrieve the master version once vs every round");
    println!("   (adversary publishes a new policy version before each master answer)\n");
    let mut table = AsciiTable::new(vec![
        "updates during 2PV",
        "once: rounds",
        "once: msgs",
        "once: outcome",
        "each: rounds",
        "each: msgs",
        "each: outcome",
    ]);
    let update_counts = [0u64, 1, 2, 4, 8, 20];
    let storm_results = run_grid(update_counts.to_vec(), |updates| {
        (storm(false, updates), storm(true, updates))
    });
    for (updates, ((r_once, m_once, o_once), (r_each, m_each, o_each))) in
        update_counts.into_iter().zip(storm_results)
    {
        let show =
            |o: ValidationOutcome| if o.is_continue() { "CONTINUE" } else { "ABORT" }.to_owned();
        table.row(vec![
            updates.to_string(),
            r_once.to_string(),
            m_once.to_string(),
            show(o_once),
            r_each.to_string(),
            m_each.to_string(),
            show(o_each),
        ]);
    }
    println!("{table}");
    println!("   Retrieve-once converges in ≤2 rounds (like view consistency) but may");
    println!("   CONTINUE on a version that is no longer the latest; refresh-each-round");
    println!("   chases the adversary (\"theoretically infinite\" rounds, paper §V-A)");
    println!("   until the round cap forces an abort.\n");
}

fn commit_variant_ablation() {
    println!("2. Commit-protocol logging variants (forced writes per transaction)\n");
    let mut table = AsciiTable::new(vec![
        "workload",
        "Standard",
        "Presumed-Abort",
        "Presumed-Commit",
    ]);
    let workloads = [("all commits", 0.0), ("all aborts", 1.0)];
    const VARIANTS: [CommitVariant; 3] = [
        CommitVariant::Standard,
        CommitVariant::PresumedAbort,
        CommitVariant::PresumedCommit,
    ];
    let jobs: Vec<(f64, CommitVariant)> = workloads
        .iter()
        .flat_map(|&(_, revoke)| VARIANTS.map(|variant| (revoke, variant)))
        .collect();
    let results = run_grid(jobs, |(revoke, variant)| {
        let config = ScenarioConfig {
            experiment: ExperimentConfig {
                scheme: ProofScheme::Deferred,
                consistency: ConsistencyLevel::View,
                variant,
                seed: 5,
                ..Default::default()
            },
            workload: WorkloadConfig {
                transactions: 50,
                queries_per_txn: QueryCount::Fixed(3),
                servers: 3,
                mean_interarrival: Duration::from_millis(30),
                ..Default::default()
            },
            revoke_fraction: revoke,
            revoke_after: Duration::ZERO,
            ..Default::default()
        };
        let result = run_scenario(&config);
        result.report.forced_logs as f64 / result.report.records.len() as f64
    });
    for (workload_index, &(label, _)) in workloads.iter().enumerate() {
        let mut cells = vec![label.to_owned()];
        for (variant_index, _) in VARIANTS.into_iter().enumerate() {
            let per_txn = results[workload_index * VARIANTS.len() + variant_index];
            cells.push(format!("{per_txn:.2}"));
        }
        table.row(cells);
    }
    println!("{table}");
    println!("   Commits: Standard forces 2n+1 = 7; PrC trades participant decision");
    println!("   forces for a collecting record. Aborts: PrA forces the least — no");
    println!("   abort-decision forces anywhere. Matches Chrysanthis et al. as cited.\n");
}

fn lock_pressure_ablation() {
    println!("3. No-wait locking: abort rate vs. access skew (Zipf exponent)\n");
    let mut table = AsciiTable::new(vec!["zipf s", "abort rate", "lock-conflict aborts"]);
    let exponents = [0.0, 0.6, 0.9, 1.2, 1.5];
    let results = run_grid(exponents.to_vec(), |s| {
        let config = ScenarioConfig {
            experiment: ExperimentConfig {
                scheme: ProofScheme::Deferred,
                consistency: ConsistencyLevel::View,
                seed: 5,
                ..Default::default()
            },
            workload: WorkloadConfig {
                transactions: 200,
                queries_per_txn: QueryCount::Fixed(3),
                servers: 3,
                items_per_server: 16,
                read_fraction: 0.1,
                zipf_exponent: s,
                mean_interarrival: Duration::from_millis(4), // heavy overlap
                distinct_servers: true,
            },
            ..Default::default()
        };
        run_scenario(&config)
    });
    for (s, result) in exponents.into_iter().zip(results) {
        let conflicts = result
            .aborts_by_reason
            .get("lock conflict")
            .copied()
            .unwrap_or(0);
        table.row(vec![
            format!("{s:.1}"),
            format!("{:.1}%", result.abort_rate() * 100.0),
            conflicts.to_string(),
        ]);
    }
    println!("{table}");
    println!("   Hotter items under no-wait locking abort more often — the cost of the");
    println!("   deadlock-free locking choice documented in safetx-store.");
}

fn main() {
    println!("safetx ablation studies\n=======================\n");
    master_refresh_ablation();
    commit_variant_ablation();
    lock_pressure_ablation();
}
