//! Reproduces **Table I** of the paper: worst-case messages and proof
//! evaluations per scheme × consistency level.
//!
//! For every cell the binary sets up the adversary that realizes the
//! paper's worst case — a replica one version ahead (view) or a catalog
//! ahead of every replica (global) — runs one transaction of `u = n`
//! queries (one per server), and compares the measured counts against the
//! paper's formulas.
//!
//! ```bash
//! cargo run -p safetx-bench --bin table1 [-- n]
//! ```

use safetx_bench::{complexity, run_grid, run_single, Staleness};
use safetx_core::{ConsistencyLevel, ProofScheme};
use safetx_metrics::AsciiTable;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let u = n;

    println!("Reproduction of Table I — \"The complexity of the different approaches\"");
    println!("(n = {n} participants, u = {u} queries, one query per participant)\n");

    let mut table = AsciiTable::new(vec![
        "scheme",
        "consistency",
        "adversary",
        "r",
        "paper msgs",
        "measured msgs",
        "paper proofs",
        "measured proofs",
        "outcome",
    ]);

    // Every cell builds its own seeded deployment, so the grid fans out
    // over the thread pool; results come back in grid order, keeping the
    // printed table identical to a serial sweep.
    let mut grid = Vec::new();
    for scheme in ProofScheme::ALL {
        for level in ConsistencyLevel::ALL {
            // The adversary that realizes the worst case of this cell.
            // Incremental maintains consistency (r = 1) and Continuous's
            // formula assumes its per-query 2PV stays single-round, so both
            // are measured on the aligned deployment.
            let staleness = match (scheme, level) {
                (ProofScheme::Deferred | ProofScheme::Punctual, ConsistencyLevel::View) => {
                    Staleness::OneAhead
                }
                (ProofScheme::Deferred | ProofScheme::Punctual, ConsistencyLevel::Global) => {
                    Staleness::AllStale
                }
                _ => Staleness::None,
            };
            grid.push((scheme, level, staleness));
        }
    }
    // The clean run for the log-complexity line rides along as the last job.
    grid.push((
        ProofScheme::Deferred,
        ConsistencyLevel::View,
        Staleness::None,
    ));
    let mut runs = run_grid(grid.clone(), |(scheme, level, staleness)| {
        run_single(scheme, level, n as usize, staleness)
    });
    let clean = runs.pop().expect("clean run present");

    for (&(scheme, level, staleness), run) in grid.iter().zip(&runs) {
        let r = run.metrics.rounds.max(1);
        let paper_msgs = complexity::max_messages(scheme, level, n, u, r);
        let paper_proofs = complexity::max_proofs(scheme, level, u, r);
        assert!(
            run.metrics.messages <= paper_msgs,
            "{scheme}/{level}: measured messages exceed the paper bound"
        );
        assert!(
            run.metrics.proofs <= paper_proofs,
            "{scheme}/{level}: measured proofs exceed the paper bound"
        );
        let tightness = |measured: u64, paper: u64| {
            if measured == paper {
                format!("{measured} (=)")
            } else {
                format!("{measured} (<=)")
            }
        };
        table.row(vec![
            scheme.to_string(),
            level.to_string(),
            format!("{staleness:?}"),
            r.to_string(),
            paper_msgs.to_string(),
            tightness(run.metrics.messages, paper_msgs),
            paper_proofs.to_string(),
            tightness(run.metrics.proofs, paper_proofs),
            if run.committed { "commit" } else { "abort" }.to_string(),
        ]);
    }
    println!("{table}");

    println!(
        "Log complexity: paper 2n + 1 = {} forced writes per clean commit; measured {}.\n",
        2 * n + 1,
        clean.forced_logs
    );
    println!("Notes:");
    println!(" * (=) marks cells where the measured count equals the paper's formula;");
    println!("   (<=) marks the view-consistency cells whose formula charges a full");
    println!("   2n-message second round, while at most n-1 participants can be stale");
    println!("   under view consistency (some replica defines the largest version).");
    println!(" * Deferred/Punctual under global consistency are measured at r = 2");
    println!("   (every replica one version behind the master); other cells run at");
    println!("   their Table-I round bound (r = 1).");
}
