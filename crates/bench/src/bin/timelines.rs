//! Renders the paper's scheme timelines (**Figures 3–6**) as ASCII charts.
//!
//! Each figure shows, per server, when queries arrive (`.`) and when proofs
//! of authorization are evaluated (`*`), between `α(T)` and `ω(T)`; the
//! commit-time consistency enforcement is the `|` column. The shapes match
//! the paper exactly:
//!
//! * Deferred (Fig. 3): stars only at the commit line.
//! * Punctual (Fig. 4): a star at each query plus stars at the commit line.
//! * Incremental Punctual (Fig. 5): a star at each query, none at commit.
//! * Continuous (Fig. 6): at each query, stars at that server *and* every
//!   earlier server (re-evaluations); none at commit (view consistency).
//!
//! ```bash
//! cargo run -p safetx-bench --bin timelines            # all four schemes
//! cargo run -p safetx-bench --bin timelines -- punctual
//! ```

use safetx_bench::{run_traced, server_of_node, Staleness};
use safetx_core::{ConsistencyLevel, ProofScheme};
use safetx_sim::{TraceEntry, TraceKind};
use safetx_types::Timestamp;

const WIDTH: usize = 72;

fn main() {
    let schemes: Vec<ProofScheme> = match std::env::args().nth(1) {
        Some(arg) => vec![arg.parse().expect("scheme name")],
        None => ProofScheme::ALL.to_vec(),
    };
    // Optional second argument `stale`: server 0 starts a version ahead, so
    // Deferred/Punctual show the 2PVC update round (a second star column
    // after the commit line at the stale servers).
    let staleness = match std::env::args().nth(2).as_deref() {
        Some("stale") => Staleness::OneAhead,
        _ => Staleness::None,
    };
    for scheme in schemes {
        render(scheme, staleness);
    }
}

fn figure_number(scheme: ProofScheme) -> u32 {
    match scheme {
        ProofScheme::Deferred => 3,
        ProofScheme::Punctual => 4,
        ProofScheme::IncrementalPunctual => 5,
        ProofScheme::Continuous => 6,
    }
}

fn render(scheme: ProofScheme, staleness: Staleness) {
    let n = 3;
    let (run, trace) = run_traced(scheme, ConsistencyLevel::View, n, staleness);
    if staleness == Staleness::None {
        assert!(run.committed, "{scheme} timeline run must commit");
    }

    let alpha = run.record.started_at;
    let finished = run.record.finished_at;
    let span = finished.duration_since(alpha).as_micros().max(1);
    let col = |t: Timestamp| -> usize {
        let offset = t.duration_since(alpha).as_micros();
        ((offset as u128 * (WIDTH as u128 - 1) / span as u128) as usize).min(WIDTH - 1)
    };

    // Commit line: the first Prepare-to-Commit send marks ω(T).
    let omega = trace
        .entries()
        .iter()
        .find(|e| matches!(&e.kind, TraceKind::Send { label, .. } if label.starts_with("PrepareToCommit")))
        .map(|e| e.at);

    let mut rows: Vec<Vec<char>> = vec![vec![' '; WIDTH]; n];
    let mut place = |entry: &TraceEntry, node, ch: char| {
        if let Some(server) = server_of_node(node, n) {
            let row = &mut rows[server.index() as usize];
            let c = col(entry.at);
            // Proof stars win over query dots at the same column.
            if ch == '*' || row[c] == ' ' {
                row[c] = ch;
            }
        }
    };
    for entry in trace.entries() {
        match &entry.kind {
            TraceKind::Deliver { to, label, .. }
                if label.starts_with("ExecQuery") || label.contains("new_query: Some") =>
            {
                place(entry, *to, '.');
            }
            TraceKind::Mark { node, label } if label.starts_with("proof:") => {
                place(entry, *node, '*');
            }
            _ => {}
        }
    }
    if let Some(omega) = omega {
        let c = col(omega);
        for row in &mut rows {
            if row[c] == ' ' {
                row[c] = '|';
            }
        }
    }

    println!(
        "Figure {}: {} proofs of authorization ({} proofs evaluated, {} messages)",
        figure_number(scheme),
        scheme,
        run.metrics.proofs,
        run.metrics.messages
    );
    println!("  legend: '.' query start   '*' proof of authorization   '|' omega(T) consistency enforcement");
    println!(
        "  alpha(T) = {alpha}, omega(T) ~ {}",
        omega.map_or_else(|| "-".into(), |t| t.to_string())
    );
    for (i, row) in rows.iter().enumerate() {
        println!("  s{i} |{}|", row.iter().collect::<String>());
    }
    println!();
}
