//! Quantifies the hazard 2PVC eliminates, against the **unsafe baseline**
//! the paper's Section II describes: servers issue access capabilities on
//! granted proofs and honor them in lieu of fresh proofs, and commit is
//! plain 2PC with no policy validation.
//!
//! Two adversaries, many randomized trials each:
//!
//! * **Revocation** (Bob's OpRegion credential): the credential is revoked
//!   at a random instant mid-transaction. An *unsafe commit* is a commit
//!   whose view contains a granted proof evaluated at or after the
//!   revocation — only the capability shortcut can produce one.
//! * **Stale policy** (P → P′): a restrictive v2 reaches a random replica
//!   before the transaction starts. Safe schemes must abort (the update
//!   round exposes the denial); the baseline commits on the stale replicas.
//!
//! ```bash
//! cargo run --release -p safetx-bench --bin baseline [-- trials]
//! ```

use safetx_bench::run_grid;
use safetx_core::{ConsistencyLevel, Experiment, ExperimentConfig, ProofScheme, TxnRecord};
use safetx_metrics::AsciiTable;
use safetx_policy::{Atom, Constant, Policy, PolicyBuilder};
use safetx_sim::SimRng;
use safetx_store::Value;
use safetx_txn::{Operation, QuerySpec, TransactionSpec};
use safetx_types::{
    AdminDomain, CaId, DataItemId, Duration, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId,
    UserId,
};

const N: usize = 3;

#[derive(Clone, Copy, Debug, PartialEq)]
enum System {
    Baseline,
    Scheme(ProofScheme),
}

impl std::fmt::Display for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            System::Baseline => write!(f, "unsafe baseline (2PC + capabilities)"),
            System::Scheme(s) => write!(f, "{s} + 2PVC"),
        }
    }
}

fn systems() -> Vec<System> {
    let mut v = vec![System::Baseline];
    v.extend(ProofScheme::ALL.map(System::Scheme));
    v
}

fn member_policy(restrictive: bool) -> Policy {
    let rules = if restrictive {
        "grant(read, records) :- role(U, auditor).\n\
         grant(write, records) :- role(U, auditor)."
    } else {
        "grant(read, records) :- role(U, member).\n\
         grant(write, records) :- role(U, member)."
    };
    PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(rules)
        .unwrap()
        .build()
}

fn build(system: System) -> Experiment {
    // The baseline needs query-time proofs (so capabilities circulate);
    // Punctual is its natural safe counterpart.
    let scheme = match system {
        System::Baseline => ProofScheme::Punctual,
        System::Scheme(s) => s,
    };
    let mut exp = Experiment::new(ExperimentConfig {
        servers: N,
        scheme,
        consistency: ConsistencyLevel::View,
        gossip: false,
        unsafe_baseline: system == System::Baseline,
        ..Default::default()
    });
    exp.catalog().publish(member_policy(false));
    exp.install_everywhere(PolicyId::new(0), PolicyVersion::INITIAL);
    for i in 0..N {
        exp.seed_item(
            ServerId::new(i as u64),
            DataItemId::new(i as u64),
            Value::Int(0),
        );
    }
    exp
}

fn txn() -> TransactionSpec {
    let queries = (0..N)
        .map(|i| {
            QuerySpec::new(
                ServerId::new(i as u64),
                "read",
                "records",
                vec![Operation::Read(DataItemId::new(i as u64))],
            )
        })
        .collect();
    TransactionSpec::new(TxnId::new(1), UserId::new(1), queries)
}

fn run_one(system: System, revoke_at: Option<Timestamp>, stale_replica: Option<u64>) -> TxnRecord {
    let mut exp = build(system);
    if stale_replica.is_some() {
        // Publish the restrictive rules as version 2 of the same policy.
        let v2 = member_policy(false).updated(member_policy(true).rules().clone());
        exp.catalog().publish(v2);
    }
    if let Some(replica) = stale_replica {
        exp.install_at(ServerId::new(replica), PolicyId::new(0), PolicyVersion(2));
    }
    let cred = exp.issue_credential(
        UserId::new(1),
        Atom::fact(
            "role",
            vec![Constant::symbol("u1"), Constant::symbol("member")],
        ),
        Timestamp::ZERO,
        Timestamp::MAX,
    );
    if let Some(at) = revoke_at {
        let id = cred.id();
        exp.cas().with_mut(|registry| {
            registry.revoke(CaId::new(0), id, at);
        });
    }
    exp.submit(txn(), vec![cred], Duration::ZERO);
    exp.run();
    exp.report().records[0].clone()
}

fn revocation_study(trials: u64) {
    println!("A. Credential revoked at a random instant mid-transaction ({trials} trials)");
    println!("   unsafe commit = a granted proof evaluated at/after the revocation\n");
    let mut table = AsciiTable::new(vec!["system", "commits", "UNSAFE commits", "aborts"]);
    for system in systems() {
        // Draw every trial's revocation instant up front (same RNG stream
        // as a serial loop), then fan the independent trials out.
        let mut rng = SimRng::new(0xBA5E);
        let revocations: Vec<Timestamp> = (0..trials)
            // The 3-query transaction runs ~6 ms + commit; revocations land
            // throughout.
            .map(|_| Timestamp::from_micros(rng.range_u64(500, 9_000)))
            .collect();
        let records = run_grid(revocations.clone(), |revoke_at| {
            run_one(system, Some(revoke_at), None)
        });
        let (mut commits, mut unsafe_commits, mut aborts) = (0u64, 0u64, 0u64);
        for (revoke_at, record) in revocations.into_iter().zip(records) {
            if record.outcome.is_commit() {
                commits += 1;
                let granted_after_revocation = record
                    .view
                    .latest_per_proof()
                    .iter()
                    .any(|p| p.truth() && p.evaluated_at >= revoke_at);
                if granted_after_revocation {
                    unsafe_commits += 1;
                }
            } else {
                aborts += 1;
            }
        }
        table.row(vec![
            system.to_string(),
            commits.to_string(),
            unsafe_commits.to_string(),
            aborts.to_string(),
        ]);
        if let System::Scheme(_) = system {
            assert_eq!(unsafe_commits, 0, "{system} must never commit unsafely");
        }
    }
    println!("{table}");
}

fn stale_policy_study(trials: u64) {
    println!("B. Restrictive P' installed at one random replica before the run ({trials} trials)");
    println!("   a safe system must abort: the member role no longer satisfies P'\n");
    let mut table = AsciiTable::new(vec!["system", "commits (all unsafe)", "aborts"]);
    for system in systems() {
        let mut rng = SimRng::new(0x57A1E);
        let replicas: Vec<u64> = (0..trials).map(|_| rng.range_u64(0, N as u64)).collect();
        let records = run_grid(replicas, |replica| run_one(system, None, Some(replica)));
        let (mut commits, mut aborts) = (0u64, 0u64);
        for record in records {
            if record.outcome.is_commit() {
                commits += 1;
            } else {
                aborts += 1;
            }
        }
        table.row(vec![
            system.to_string(),
            commits.to_string(),
            aborts.to_string(),
        ]);
        if let System::Scheme(_) = system {
            assert_eq!(
                commits, 0,
                "{system} must abort under an already-published denial"
            );
        }
    }
    println!("{table}");
    println!("The baseline commits whenever the stale replicas' capabilities/v1 grants");
    println!("cover the queries; every 2PVC scheme reconciles versions first and aborts.");
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    println!("Unsafe-baseline hazard study (the system of the paper's Section II)\n");
    revocation_study(trials);
    println!();
    stale_policy_study(trials);
}
