//! Before/after harness for the runtime hot-path overhaul.
//!
//! Runs the most server-bound loadgen cell — Continuous / Global, 3
//! servers, 8 closed-loop clients — with the proof cache both enabled and
//! disabled, and prints one JSON document with outcome totals and
//! throughput (also written to `BENCH_runtime.json`). The
//! `net_vs_threaded` section runs the same cell on the wire-protocol
//! runtime (`safetx-net`) at batch 1 and 16: outcome totals must be
//! identical to the threaded rows, throughput measures the encode/frame/
//! syscall tax. The binary deliberately uses only the API surface shared by
//! the pre-overhaul tree (commit `acee853`) and this one, so the exact
//! same source builds in a worktree at the old commit; `BENCH_runtime.json`
//! pairs the two runs:
//!
//! ```bash
//! # after (this tree)
//! cargo run --release -p safetx-bench --bin runtime_compare -- after
//! # before (worktree at the pre-overhaul commit, same file dropped in)
//! git worktree add /tmp/safetx-before <commit>
//! cp crates/bench/src/bin/runtime_compare.rs /tmp/safetx-before/crates/bench/src/bin/
//! (cd /tmp/safetx-before && cargo run --release -p safetx-bench --bin runtime_compare -- before)
//! ```
//!
//! Outcome totals (submissions / commits / terminal aborts / exhausted
//! retries) are deterministic under the fixed seed and must be identical
//! across the pair; wall-clock throughput is the measured quantity.
//!
//! The `batching` section sweeps the server-round batch limit
//! (`server_batch` 1 vs 16) with and without a simulated 100 µs physical
//! WAL-sync cost: outcome totals must be identical across the sweep, while
//! `physical_syncs` drops below `forced_logs` under batching and the
//! synced cells show the group-commit throughput win.
//!
//! The `lock_vs_occ` section sweeps the contention knob (how many distinct
//! item slots the workload spreads over, plus an optional hot-key skew
//! that routes every k-th transaction to slot 0) across both concurrency
//! modes. Each cell records throughput and the per-reason transient-abort
//! breakdown, so the crossover — locking wins under heavy write contention
//! (conflicts surface before work is wasted), OCC wins when conflicts are
//! rare (no lock-hold window across the vote round-trip) — is visible in
//! one JSON document.

use safetx_core::{ConcurrencyMode, ConsistencyLevel, ProofScheme};
use safetx_metrics::Json;
use safetx_net::NetCluster;
use safetx_policy::{Atom, Constant, Credential, PolicyBuilder};
use safetx_runtime::{Cluster, ClusterConfig};
use safetx_service::{run_closed_loop, RetryPolicy, RuntimeKind, ServiceConfig, TxnService};
use safetx_store::Value;
use safetx_txn::{Operation, QuerySpec, TransactionSpec};
use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, UserId};
use std::sync::Arc;

const SERVERS: usize = 3;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 40;
const ITEMS_PER_SERVER: u64 = 64;
const DENY_EVERY: u64 = 8;
const SEED: u64 = 42;

fn build_runtime(
    net: bool,
    proof_cache: bool,
    server_batch: usize,
    wal_sync_cost: Option<std::time::Duration>,
) -> RuntimeKind {
    let config = ClusterConfig {
        servers: SERVERS,
        scheme: ProofScheme::Continuous,
        consistency: ConsistencyLevel::Global,
        server_batch: Some(server_batch),
        wal_sync_cost,
        ..Default::default()
    };
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member), region(U, east).",
        )
        .expect("rules parse")
        .build();
    if net {
        let cluster = NetCluster::new(config);
        cluster.publish_policy(policy);
        for s in 0..SERVERS as u64 {
            cluster.configure_server(ServerId::new(s), move |core| {
                core.set_proof_cache(proof_cache);
                for j in 0..ITEMS_PER_SERVER {
                    core.store_mut().write(
                        DataItemId::new(s * 100 + j),
                        Value::Int(10),
                        Timestamp::ZERO,
                    );
                }
            });
        }
        RuntimeKind::Net(Arc::new(cluster))
    } else {
        let cluster = Cluster::new(config);
        cluster.publish_policy(policy);
        for s in 0..SERVERS as u64 {
            cluster.configure_server(ServerId::new(s), move |core| {
                core.set_proof_cache(proof_cache);
                for j in 0..ITEMS_PER_SERVER {
                    core.store_mut().write(
                        DataItemId::new(s * 100 + j),
                        Value::Int(10),
                        Timestamp::ZERO,
                    );
                }
            });
        }
        RuntimeKind::Threaded(Arc::new(cluster))
    }
}

/// A four-credential wallet, the shape a real principal carries: the two
/// the policy needs plus two bystanders every proof context still hauls.
fn wallet(runtime: &RuntimeKind) -> Vec<Credential> {
    runtime.cas().with_mut(|registry| {
        let ca = registry.ca_mut(CaId::new(0)).unwrap();
        ["member", "auditor", "oncall", "east"]
            .iter()
            .enumerate()
            .map(|(i, tag)| {
                let predicate = if i == 3 { "region" } else { "role" };
                ca.issue(
                    UserId::new(1),
                    Atom::fact(
                        predicate,
                        vec![Constant::symbol("u1"), Constant::symbol(*tag)],
                    ),
                    Timestamp::ZERO,
                    Timestamp::MAX,
                )
            })
            .collect()
    })
}

fn spec_for(runtime: &RuntimeKind, global_index: u64) -> TransactionSpec {
    let slot = (global_index * 7) % ITEMS_PER_SERVER;
    let queries = (0..SERVERS as u64)
        .map(|s| {
            QuerySpec::new(
                ServerId::new(s),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(s * 100 + slot), 1)],
            )
        })
        .collect();
    TransactionSpec::new(runtime.next_txn_id(), UserId::new(1), queries)
}

fn run_cell(net: bool, proof_cache: bool, server_batch: usize, sync_cost_us: u64) -> Json {
    let wal_sync_cost = (sync_cost_us > 0).then(|| std::time::Duration::from_micros(sync_cost_us));
    let runtime = build_runtime(net, proof_cache, server_batch, wal_sync_cost);
    let service = TxnService::with_runtime(
        runtime.clone(),
        ServiceConfig {
            workers: CLIENTS,
            queue_depth: 2 * CLIENTS,
            retry: RetryPolicy {
                max_retries: 64,
                base_backoff: std::time::Duration::from_micros(50),
                max_backoff: std::time::Duration::from_millis(2),
                jitter_percent: 50,
                ..RetryPolicy::default()
            },
            seed: SEED,
        },
    );
    let creds = wallet(&runtime);
    let report = run_closed_loop(&service, CLIENTS, PER_CLIENT, |client, index| {
        let g = (client * PER_CLIENT + index) as u64;
        let wallet = if g % DENY_EVERY == DENY_EVERY - 1 {
            vec![]
        } else {
            creds.clone()
        };
        (spec_for(&runtime, g), wallet)
    });
    let stats = service.shutdown();
    assert!(stats.conserves(), "outcome accounting leaked: {stats:?}");
    let throughput = stats.throughput_tps(report.wall);
    Json::object()
        .with("runtime", if net { "net" } else { "threaded" })
        .with("proof_cache", proof_cache)
        .with("server_batch", server_batch)
        .with("wal_sync_cost_us", sync_cost_us)
        .with("scheme", "Continuous")
        .with("consistency", "global")
        .with("servers", SERVERS)
        .with("clients", CLIENTS)
        .with("per_client", PER_CLIENT)
        .with("seed", SEED)
        .with("wall_ms", report.wall.as_secs_f64() * 1_000.0)
        .with("throughput_tps", throughput)
        .with("submissions", stats.submissions)
        .with("commits", stats.commits)
        .with("terminal_aborts", stats.terminal_aborts)
        .with("retries_exhausted", stats.retries_exhausted)
        .with("overload_rejections", stats.overload_rejections)
        .with("forced_logs", stats.wal.forced_logs)
        .with("physical_syncs", stats.wal.physical_syncs)
        .with("frames_sent", stats.transport.frames_sent)
        .with("frames_received", stats.transport.frames_received)
        .with("bytes_sent", stats.transport.bytes_sent)
        .with("bytes_received", stats.transport.bytes_received)
}

/// One contention cell: the threaded runtime in an explicit concurrency
/// mode, all clients armed with full wallets (no policy denials — the
/// measured quantity is pure data contention), spreading writes over
/// `slots` item slots per server. When `hot_every > 0`, every k-th
/// transaction targets slot 0 instead: a hot-key skew.
fn run_contention_cell(mode: ConcurrencyMode, slots: u64, hot_every: u64) -> Json {
    let config = ClusterConfig {
        servers: SERVERS,
        scheme: ProofScheme::Continuous,
        consistency: ConsistencyLevel::Global,
        server_batch: Some(1),
        concurrency: Some(mode),
        ..Default::default()
    };
    let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member), region(U, east).",
        )
        .expect("rules parse")
        .build();
    let cluster = Cluster::new(config);
    cluster.publish_policy(policy);
    for s in 0..SERVERS as u64 {
        cluster.configure_server(ServerId::new(s), move |core| {
            for j in 0..ITEMS_PER_SERVER {
                core.store_mut().write(
                    DataItemId::new(s * 100 + j),
                    Value::Int(10),
                    Timestamp::ZERO,
                );
            }
        });
    }
    let runtime = RuntimeKind::Threaded(Arc::new(cluster));
    let service = TxnService::with_runtime(
        runtime.clone(),
        ServiceConfig {
            workers: CLIENTS,
            queue_depth: 2 * CLIENTS,
            retry: RetryPolicy {
                max_retries: 64,
                base_backoff: std::time::Duration::from_micros(50),
                max_backoff: std::time::Duration::from_millis(2),
                jitter_percent: 50,
                ..RetryPolicy::default()
            },
            seed: SEED,
        },
    );
    let creds = wallet(&runtime);
    let report = run_closed_loop(&service, CLIENTS, PER_CLIENT, |client, index| {
        let g = (client * PER_CLIENT + index) as u64;
        let slot = if hot_every > 0 && g.is_multiple_of(hot_every) {
            0
        } else {
            (g * 7) % slots.max(1)
        };
        let queries = (0..SERVERS as u64)
            .map(|s| {
                QuerySpec::new(
                    ServerId::new(s),
                    "write",
                    "records",
                    vec![Operation::Add(DataItemId::new(s * 100 + slot), 1)],
                )
            })
            .collect();
        (
            TransactionSpec::new(runtime.next_txn_id(), UserId::new(1), queries),
            creds.clone(),
        )
    });
    let stats = service.shutdown();
    assert!(stats.conserves(), "outcome accounting leaked: {stats:?}");
    let throughput = stats.throughput_tps(report.wall);
    Json::object()
        .with("concurrency", mode.to_string())
        .with("slots", slots)
        .with("hot_every", hot_every)
        .with("servers", SERVERS)
        .with("clients", CLIENTS)
        .with("per_client", PER_CLIENT)
        .with("seed", SEED)
        .with("wall_ms", report.wall.as_secs_f64() * 1_000.0)
        .with("throughput_tps", throughput)
        .with("submissions", stats.submissions)
        .with("commits", stats.commits)
        .with("terminal_aborts", stats.terminal_aborts)
        .with("retries_exhausted", stats.retries_exhausted)
        .with("retry_attempts", stats.retry_attempts)
        .with("retry_lock_conflicts", stats.retry_lock_conflicts)
        .with(
            "retry_validation_conflicts",
            stats.retry_validation_conflicts,
        )
        .with("retry_stale_versions", stats.retry_stale_versions)
        .with("retry_timeouts", stats.retry_timeouts)
}

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "run".into());
    // Warm-up pass so thread spawn and allocator effects do not land in
    // the measured cells.
    let _ = run_cell(false, true, 1, 0);
    let doc = Json::object()
        .with("label", label)
        .with(
            "workers_env",
            std::env::var("SAFETX_SERVER_WORKERS").unwrap_or_default(),
        )
        .with("cache_on", run_cell(false, true, 1, 0))
        .with("cache_off", run_cell(false, false, 1, 0))
        .with(
            "batching",
            Json::object()
                .with("batch_1", run_cell(false, true, 1, 0))
                .with("batch_16", run_cell(false, true, 16, 0))
                .with("batch_1_synced", run_cell(false, true, 1, 100))
                .with("batch_16_synced", run_cell(false, true, 16, 100)),
        )
        // The wire tax, measured: the same cell on the socket runtime,
        // where every message is encoded, framed and syscalled. Outcome
        // totals must match the threaded rows; throughput is the price of
        // the wire (and the batching rows show coalescing clawing it back).
        .with(
            "net_vs_threaded",
            Json::object()
                .with("threaded_batch_1", run_cell(false, true, 1, 0))
                .with("threaded_batch_16", run_cell(false, true, 16, 0))
                .with("net_batch_1", run_cell(true, true, 1, 0))
                .with("net_batch_16", run_cell(true, true, 16, 0)),
        )
        // The lock-vs-OCC crossover: low contention (64 slots), high
        // contention (4 slots) and a hot-key skew (every 2nd transaction
        // hits slot 0), each in both concurrency modes.
        .with(
            "lock_vs_occ",
            Json::object()
                .with(
                    "low_locking",
                    run_contention_cell(ConcurrencyMode::Locking, 64, 0),
                )
                .with("low_occ", run_contention_cell(ConcurrencyMode::Occ, 64, 0))
                .with(
                    "high_locking",
                    run_contention_cell(ConcurrencyMode::Locking, 4, 0),
                )
                .with("high_occ", run_contention_cell(ConcurrencyMode::Occ, 4, 0))
                .with(
                    "hot_locking",
                    run_contention_cell(ConcurrencyMode::Locking, 64, 2),
                )
                .with("hot_occ", run_contention_cell(ConcurrencyMode::Occ, 64, 2)),
        );
    let text = doc.render();
    std::fs::write("BENCH_runtime.json", &text).expect("write BENCH_runtime.json");
    println!("{text}");
}
