//! Sharded scale-out benchmark: latency vs offered throughput.
//!
//! Deploys the partitioned runtime (`safetx_runtime::ShardedCluster`) at
//! several shard counts and drives each through the transaction service
//! with an open-loop Poisson ladder: offered load steps up per point until
//! the admission queue saturates and sheds. Every point records achieved
//! throughput, commit-latency quantiles, shed counts and the single- vs
//! cross-shard latency split, into `BENCH_scale.json`.
//!
//! The workload draws from million-scale populations: Zipf-ranked keys
//! over a universe far larger than anything seeded (servers default
//! missing items to zero) and Zipf-ranked users whose credential wallets
//! are issued lazily through `safetx_workload::WalletDirectory`, so memory
//! stays bounded by the wallet cache, not the population.
//!
//! Two built-in validations mirror the test suite:
//! - a sequential 1-shard-vs-threaded differential (all eight scheme ×
//!   consistency cells) asserting identical outcomes, Table I counters and
//!   normalized proof views — the sharded router at one shard must be the
//!   plain cluster;
//! - per-point conservation (`commits + aborts + sheds == submissions`,
//!   and the router's own `submitted == commits + aborts` per class) plus
//!   a Definition 4 audit of every committed view.
//!
//! ```bash
//! cargo run --release -p safetx-bench --bin scale_sweep [-- [--smoke] [seed]]
//! ```
//!
//! Throughput numbers are wall-clock and depend on the host; on a
//! single-vCPU container every "parallel" shard shares one core, so the
//! curves show saturation behaviour, not shard-count speedup (see the
//! `nproc` field and EXPERIMENTS.md).

use safetx_core::{trusted, ConsistencyLevel, ProofScheme};
use safetx_metrics::{Histogram, Json};
use safetx_policy::{Credential, PolicyBuilder};
use safetx_runtime::{Cluster, ClusterConfig, ShardedCluster, ShardedConfig};
use safetx_service::{RetryPolicy, RuntimeKind, ServiceConfig, TxnService};
use safetx_sim::SimRng;
use safetx_txn::{Operation, QuerySpec, TransactionSpec};
use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, TxnId};
use safetx_workload::{PoissonArrivals, Population, WalletDirectory};
use std::sync::Arc;

/// Servers each shard owns.
const SERVERS_PER_SHARD: usize = 2;
/// Every CROSS_EVERY-th transaction spans two shards (when there are two).
const CROSS_EVERY: u64 = 4;

fn policy() -> safetx_policy::Policy {
    PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
        .rules_text(
            "grant(read, records) :- role(U, member).\n\
             grant(write, records) :- role(U, member).",
        )
        .expect("rules parse")
        .build()
}

fn sharded(
    shards: usize,
    scheme: ProofScheme,
    consistency: ConsistencyLevel,
) -> Arc<ShardedCluster> {
    let cluster = ShardedCluster::new(ShardedConfig {
        shards,
        cluster: ClusterConfig {
            servers: SERVERS_PER_SHARD,
            scheme,
            consistency,
            ..Default::default()
        },
    });
    cluster.publish_policy(policy());
    Arc::new(cluster)
}

/// The workload: Zipf populations plus the deterministic spec builder.
struct Workload {
    population: Population,
    wallets: WalletDirectory,
    total_servers: u64,
    shards: u64,
    seed: u64,
}

impl Workload {
    fn new(cluster: &ShardedCluster, users: u64, keys: u64, theta: f64, seed: u64) -> Self {
        Workload {
            population: Population::new(users, 0.9, keys, theta),
            wallets: WalletDirectory::new(cluster.cas().clone(), CaId::new(0), 1024),
            total_servers: cluster.total_servers() as u64,
            shards: cluster.shards() as u64,
            seed,
        }
    }

    /// Builds submission `g`: a write on the sampled key's owning server,
    /// plus — every [`CROSS_EVERY`]-th time, population permitting — a
    /// second write owned by a different shard. Pure in `(seed, g)`.
    fn make(&self, g: u64) -> (TransactionSpec, Vec<Credential>) {
        let mut rng = SimRng::new(self.seed ^ g.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let user = self.population.sample_user(&mut rng);
        let rank = self.population.sample_item(&mut rng);
        let server = rank % self.total_servers;
        let mut queries = vec![QuerySpec::new(
            ServerId::new(server),
            "write",
            "records",
            vec![Operation::Add(DataItemId::new(rank), 1)],
        )];
        if self.shards > 1 && g % CROSS_EVERY == CROSS_EVERY - 1 {
            let rank2 = self.population.sample_item(&mut rng);
            let shard = server / SERVERS_PER_SHARD as u64;
            let other_shard = (shard + 1 + rank2 % (self.shards - 1)) % self.shards;
            let server2 = other_shard * SERVERS_PER_SHARD as u64 + rank2 % SERVERS_PER_SHARD as u64;
            queries.push(QuerySpec::new(
                ServerId::new(server2),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(rank2), 1)],
            ));
        }
        let wallet = self.wallets.wallet(user);
        (
            // The service assigns a fresh TxnId per attempt; this one is a
            // placeholder.
            TransactionSpec::new(TxnId::new(g), user, queries),
            wallet.to_vec(),
        )
    }
}

fn quantiles(hist: &mut Histogram) -> Json {
    Json::object()
        .with("count", hist.count())
        .with("p50_ms", hist.quantile(0.50).unwrap_or(0.0))
        .with("p95_ms", hist.quantile(0.95).unwrap_or(0.0))
        .with("p99_ms", hist.quantile(0.99).unwrap_or(0.0))
}

/// One point of the ladder: a fresh sharded deployment driven open-loop at
/// the given mean inter-arrival time until `count` arrivals have fired.
fn sweep_point(
    shards: usize,
    mean_interarrival_us: u64,
    count: usize,
    users: u64,
    keys: u64,
    theta: f64,
    seed: u64,
) -> Json {
    let cluster = sharded(shards, ProofScheme::Punctual, ConsistencyLevel::View);
    let workload = Workload::new(&cluster, users, keys, theta, seed);
    let service = TxnService::with_runtime(
        RuntimeKind::Sharded(cluster.clone()),
        ServiceConfig {
            workers: 4,
            queue_depth: 16,
            retry: RetryPolicy {
                max_retries: 16,
                base_backoff: std::time::Duration::from_micros(50),
                max_backoff: std::time::Duration::from_millis(2),
                jitter_percent: 50,
                ..RetryPolicy::default()
            },
            seed,
        },
    );
    let arrivals = PoissonArrivals::new(
        safetx_types::Duration::from_micros(mean_interarrival_us),
        seed ^ shards as u64,
    );
    let offered_rate = arrivals.rate_per_sec();
    let report = safetx_service::run_open_loop(&service, arrivals, count, |index| {
        workload.make(index as u64)
    });

    // Definition 4 audit on every committed view.
    let authority = cluster.catalog().latest_versions();
    for completion in report.completions.iter().filter(|c| c.outcome.is_commit()) {
        assert!(
            trusted::is_trusted(&completion.view, ConsistencyLevel::View, &authority),
            "{shards} shards: a committed view failed the Definition 4 audit"
        );
    }

    let mut stats = service.shutdown();
    assert!(
        stats.conserves(),
        "{shards} shards leaked outcomes: {stats:?}"
    );
    assert!(
        stats.route.conserves(),
        "{shards} shards: router accounting leaked: {:?}",
        stats.route
    );
    let (mut single_ms, mut cross_ms) = cluster.route_latency_ms();
    let throughput = stats.throughput_tps(report.wall);
    Json::object()
        .with("offered_rate_tps", offered_rate)
        .with("offered", report.offered)
        .with("shed", report.rejected)
        .with("wall_ms", report.wall.as_secs_f64() * 1_000.0)
        .with("throughput_tps", throughput)
        .with(
            "single_shard",
            quantiles(&mut single_ms)
                .with("submitted", stats.route.single_shard_submitted)
                .with("commits", stats.route.single_shard_commits),
        )
        .with(
            "cross_shard",
            quantiles(&mut cross_ms)
                .with("submitted", stats.route.cross_shard_submitted)
                .with("commits", stats.route.cross_shard_commits),
        )
        .with("stats", stats.to_json())
}

/// A sequential differential: a 1-shard sharded deployment must behave
/// byte-identically to the plain threaded cluster across all eight
/// scheme × consistency cells — outcomes, abort reasons, Table I counters
/// and normalized proof views.
fn one_shard_differential(txns_per_cell: u64, seed: u64) -> Json {
    let mut cells = 0u64;
    let mut transactions = 0u64;
    let mut mismatches = 0u64;
    for scheme in ProofScheme::ALL {
        for consistency in ConsistencyLevel::ALL {
            cells += 1;
            let shard_side = sharded(1, scheme, consistency);
            let plain = Cluster::new(ClusterConfig {
                servers: SERVERS_PER_SHARD,
                scheme,
                consistency,
                ..Default::default()
            });
            plain.publish_policy(policy());
            let shard_work = Workload::new(&shard_side, 64, 4096, 1.0, seed);
            for g in 0..txns_per_cell {
                transactions += 1;
                let (spec, creds) = shard_work.make(g);
                // Every third transaction goes out uncredentialed to pin
                // the policy-denied abort path too.
                let creds: Vec<Credential> = if g % 3 == 2 { vec![] } else { creds };
                let mut spec = spec;
                spec.id = TxnId::new(10_000 + g);
                // The plain cluster issues its own credential for the same
                // user from its own CA (same CA key), so proof views match.
                let plain_creds: Vec<Credential> = creds
                    .iter()
                    .map(|c| {
                        plain.cas().with_mut(|registry| {
                            registry.ca_mut(CaId::new(0)).expect("CA0").issue(
                                c.subject(),
                                c.statement().clone(),
                                safetx_types::Timestamp::ZERO,
                                safetx_types::Timestamp::MAX,
                            )
                        })
                    })
                    .collect();
                let a = shard_side.execute(&spec, &creds);
                let b = plain.execute(&spec, &plain_creds);
                let obs = |r: &safetx_runtime::ExecutionResult| {
                    let mut view: Vec<String> = r
                        .view
                        .proofs()
                        .iter()
                        .map(|p| {
                            format!(
                                "{}/{}/{}/{}/{}/{}",
                                p.server,
                                p.request.action,
                                p.request.resource,
                                p.policy_id,
                                p.policy_version,
                                p.truth()
                            )
                        })
                        .collect();
                    view.sort();
                    // Commit timestamps are physical-time-derived and
                    // differ even between two plain clusters; compare the
                    // decision and abort reason, not the instant.
                    let reason = match r.outcome {
                        safetx_core::TxnOutcome::Committed { .. } => None,
                        safetx_core::TxnOutcome::Aborted { reason, .. } => Some(reason),
                    };
                    (
                        r.is_commit(),
                        format!("{reason:?}"),
                        r.queries_executed,
                        r.metrics.messages,
                        r.metrics.proofs,
                        r.metrics.rounds,
                        r.metrics.forced_logs,
                        view,
                    )
                };
                if obs(&a) != obs(&b) {
                    mismatches += 1;
                    eprintln!(
                        "MISMATCH {scheme}/{consistency} txn {g}:\n  sharded: {:?}\n  threaded: {:?}",
                        obs(&a),
                        obs(&b)
                    );
                }
            }
        }
    }
    assert_eq!(
        mismatches, 0,
        "1-shard sharded deployment diverged from the threaded cluster"
    );
    Json::object()
        .with("cells", cells)
        .with("transactions", transactions)
        .with("mismatches", mismatches)
}

/// Re-parses the emitted JSON and checks conservation on every point —
/// the check CI's scale-smoke step relies on.
fn validate(text: &str) {
    let parsed = Json::parse(text).expect("emitted JSON must re-parse");
    let num = |obj: &Json, key: &str| {
        obj.get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing numeric field {key}"))
    };
    let curves = parsed
        .get("curves")
        .and_then(Json::as_array)
        .expect("curves array");
    assert!(
        curves.len() >= 2,
        "need curves for at least two shard counts"
    );
    for curve in curves {
        let shards = num(curve, "shards");
        let points = curve
            .get("points")
            .and_then(Json::as_array)
            .expect("points array");
        assert!(!points.is_empty(), "curve with no points");
        for (i, point) in points.iter().enumerate() {
            let what = format!("shards={shards} point {i}");
            let stats = point.get("stats").expect("point stats");
            let accounted = num(stats, "commits")
                + num(stats, "terminal_aborts")
                + num(stats, "retries_exhausted")
                + num(stats, "overload_rejections");
            assert_eq!(accounted, num(stats, "submissions"), "{what}: leak");
            let class = |name: &str, sub: &str| num(point.get(name).expect("route split"), sub);
            assert_eq!(
                class("single_shard", "submitted") + class("cross_shard", "submitted"),
                num(stats, "single_shard_submitted") + num(stats, "cross_shard_submitted"),
                "{what}: route splits disagree with stats"
            );
            if shards > 1 {
                assert!(
                    class("cross_shard", "submitted") > 0,
                    "{what}: no cross-shard traffic was routed"
                );
            }
        }
    }
    let diff = parsed.get("oneshard_vs_threaded").expect("differential");
    assert_eq!(num(diff, "mismatches"), 0, "differential mismatches");
    let sheds: u64 = curves
        .iter()
        .flat_map(|c| c.get("points").and_then(Json::as_array).unwrap().iter())
        .map(|p| num(p, "shed"))
        .sum();
    assert!(
        sheds > 0,
        "the ladder never reached saturation (no shedding)"
    );
}

fn main() {
    let mut smoke = false;
    let mut positional = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            positional.push(arg);
        }
    }
    let seed: u64 = positional
        .first()
        .map(|s| s.parse().expect("seed"))
        .unwrap_or(42);

    let (shard_counts, rates_us, count, users, keys, theta): (
        Vec<usize>,
        Vec<u64>,
        usize,
        u64,
        u64,
        f64,
    ) = if smoke {
        (vec![1, 2], vec![1200, 40], 80, 10_000, 65_536, 1.0)
    } else {
        (
            vec![1, 2, 4],
            vec![1600, 800, 400, 200, 100, 40],
            240,
            1_000_000,
            1_000_000,
            1.0,
        )
    };

    eprintln!("differential: 1-shard sharded vs threaded (8 cells)");
    let diff = one_shard_differential(if smoke { 4 } else { 8 }, seed);

    let mut curves = Vec::new();
    let mut scaling = Vec::new();
    for &shards in &shard_counts {
        let mut points = Vec::new();
        let mut peak = 0.0f64;
        for &mean_us in &rates_us {
            eprintln!("sweep: {shards} shard(s), mean inter-arrival {mean_us}us, {count} arrivals");
            let point = sweep_point(shards, mean_us, count, users, keys, theta, seed);
            if let Some(tps) = point.get("throughput_tps").and_then(Json::as_f64) {
                peak = peak.max(tps);
            }
            points.push(point);
        }
        scaling.push(
            Json::object()
                .with("shards", shards)
                .with("total_servers", shards * SERVERS_PER_SHARD)
                .with("peak_throughput_tps", peak),
        );
        curves.push(
            Json::object()
                .with("shards", shards)
                .with("total_servers", shards * SERVERS_PER_SHARD)
                .with("points", Json::Arr(points)),
        );
    }

    let nproc = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let report = Json::object()
        .with(
            "config",
            Json::object()
                .with("smoke", smoke)
                .with("seed", seed)
                .with("servers_per_shard", SERVERS_PER_SHARD)
                .with("scheme", format!("{}", ProofScheme::Punctual))
                .with("consistency", format!("{}", ConsistencyLevel::View))
                .with("users", users)
                .with("keys", keys)
                .with("zipf_theta", theta)
                .with("cross_every", CROSS_EVERY)
                .with("arrivals_per_point", count)
                .with("nproc", nproc),
        )
        .with("oneshard_vs_threaded", diff)
        .with("curves", Json::Arr(curves))
        .with("scaling", Json::Arr(scaling));
    let text = report.render();
    std::fs::write("BENCH_scale.json", &text).expect("write BENCH_scale.json");
    validate(&text);
    println!(
        "scale_sweep OK: {} shard counts x {} points, nproc={nproc} (BENCH_scale.json)",
        shard_counts.len(),
        rates_us.len()
    );
}
