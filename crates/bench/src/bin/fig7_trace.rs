//! Reproduces **Figure 7**: the message/log sequence of the basic
//! two-phase commit protocol.
//!
//! Incremental Punctual under view consistency commits with "2PVC without
//! validations" — wire-identical to plain 2PC — so a traced run of it
//! prints exactly the Fig. 7 exchange: Prepare → force-write prepared
//! record → YES vote → force-write decision record → Decision → force-write
//! decision record → Ack → non-forced end record.
//!
//! ```bash
//! cargo run -p safetx-bench --bin fig7_trace
//! ```

use safetx_bench::{run_traced, server_of_node, Staleness};
use safetx_core::{ConsistencyLevel, ProofScheme};
use safetx_sim::TraceKind;

fn main() {
    let n = 3;
    let (run, trace) = run_traced(
        ProofScheme::IncrementalPunctual,
        ConsistencyLevel::View,
        n,
        Staleness::None,
    );
    assert!(run.committed);

    println!("Figure 7: the basic two-phase commit protocol (n = {n} participants)");
    println!("TM = coordinator; s0..s{} = participants\n", n - 1);

    let name = |node| -> String {
        match server_of_node(node, n) {
            Some(server) => server.to_string(),
            None if node.index() == 1 => "TM".to_owned(),
            None => "master".to_owned(),
        }
    };

    let mut voting_done = false;
    println!("--- voting phase ---");
    for entry in trace.entries() {
        match &entry.kind {
            TraceKind::Send { from, to, label } => {
                let phase_msg = label.split(' ').next().unwrap_or(label);
                let short = phase_msg.trim_end_matches('{').trim();
                let interesting = ["PrepareToCommit", "CommitReply", "Decision", "Ack"]
                    .iter()
                    .any(|p| short.starts_with(p));
                if !interesting {
                    continue;
                }
                if short.starts_with("Decision") && !voting_done {
                    voting_done = true;
                    println!("--- decision phase ---");
                }
                println!(
                    "{:>10}  {:>6} -> {:<6}  {}",
                    entry.at.to_string(),
                    name(*from),
                    name(*to),
                    short
                );
            }
            TraceKind::Mark { node, label } if label == "log:forced" => {
                println!(
                    "{:>10}  {:>6}           FORCE-WRITE log record",
                    entry.at.to_string(),
                    name(*node)
                );
            }
            _ => {}
        }
    }
    println!(
        "\nforced log writes: {} (paper: 2n + 1 = {})",
        run.forced_logs,
        2 * n + 1
    );
    println!("messages: {} (paper: 4n = {})", run.metrics.messages, 4 * n);
}
