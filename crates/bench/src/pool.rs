//! A scoped-thread work pool for the bench binaries' config × seed grids.
//!
//! Every sweep in the reproduction binaries is an embarrassingly parallel
//! grid of independent simulator runs: each cell builds its own
//! [`safetx_core::Experiment`] from a seed, so cells share no mutable
//! state. [`run_grid`] fans the cells out over `std::thread::scope`
//! workers and returns results **in the input order**, which makes the
//! merged output bit-identical to a serial `map` — the printing code stays
//! untouched and deterministic.
//!
//! Set `SAFETX_BENCH_THREADS=1` to force the serial path (or any explicit
//! worker count to override the default of one worker per core).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use for `total` independent jobs: the
/// `SAFETX_BENCH_THREADS` override when set, otherwise one per core,
/// never more than there are jobs.
fn worker_count(total: usize) -> usize {
    let configured = std::env::var("SAFETX_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1);
    let default = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    configured.unwrap_or(default).min(total.max(1))
}

/// Maps `f` over `items` on a scoped thread pool, returning the results in
/// the items' original order.
///
/// Equivalent to `items.into_iter().map(f).collect()` — including result
/// order — but wall-clock-parallel. `f` must be self-contained per item
/// (the bench grids are: every cell seeds its own experiment).
///
/// # Panics
///
/// Propagates a panic from any worker (the scope joins all threads first).
pub fn run_grid<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let total = items.len();
    let workers = worker_count(total);
    if workers <= 1 || total <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Claim-by-index queue: workers race on `next` and write into the
    // result slot of the same index, so the merge is a plain in-order
    // unwrap — no ordering depends on thread scheduling.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot lock")
                    .take()
                    .expect("each index claimed once");
                let result = f(item);
                *results[i].lock().expect("result slot lock") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let got = run_grid(items, |x| x * x + 1);
        assert_eq!(got, expected);
    }

    #[test]
    fn matches_serial_map_with_uneven_work() {
        // Vary per-item cost so workers finish out of order.
        let items: Vec<usize> = (0..64).rev().collect();
        let f = |n: usize| -> usize {
            let mut acc = 0usize;
            for i in 0..(n * 1000) {
                acc = acc.wrapping_add(i);
            }
            acc ^ n
        };
        let serial: Vec<usize> = items.clone().into_iter().map(f).collect();
        assert_eq!(run_grid(items, f), serial);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u8> = vec![];
        assert_eq!(run_grid(empty, |x: u8| x), Vec::<u8>::new());
        assert_eq!(run_grid(vec![7u8], |x| x + 1), vec![8]);
    }
}
