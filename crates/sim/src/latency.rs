//! Network latency models.

use crate::rng::SimRng;
use safetx_types::Duration;
use serde::{Deserialize, Serialize};

/// How long a message takes from send to delivery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long. The default for experiments
    /// where only message *counts* matter (Table I).
    Constant(Duration),
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Minimum latency (inclusive).
        lo: Duration,
        /// Maximum latency (exclusive).
        hi: Duration,
    },
    /// `base` plus an exponential tail with the given mean — a common model
    /// for intra-datacenter RPC.
    ExponentialTail {
        /// Propagation floor added to every sample.
        base: Duration,
        /// Mean of the exponential tail.
        mean_tail: Duration,
    },
    /// Log-normal in microseconds with the underlying normal's `mu`/`sigma`,
    /// clamped to at least `floor` — a common model for WAN latencies.
    LogNormal {
        /// Mean of the underlying normal (of ln-microseconds).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
        /// Minimum latency after sampling.
        floor: Duration,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Constant(Duration::from_millis(1))
    }
}

impl LatencyModel {
    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut SimRng) -> Duration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                if lo >= hi {
                    lo
                } else {
                    Duration::from_micros(rng.range_u64(lo.as_micros(), hi.as_micros()))
                }
            }
            LatencyModel::ExponentialTail { base, mean_tail } => {
                let tail = rng.exponential(mean_tail.as_micros() as f64);
                base + Duration::from_micros(tail as u64)
            }
            LatencyModel::LogNormal { mu, sigma, floor } => {
                let v = rng.log_normal(mu, sigma);
                let sampled = Duration::from_micros(v as u64);
                if sampled < floor {
                    floor
                } else {
                    sampled
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::new(0);
        let m = LatencyModel::Constant(Duration::from_millis(2));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), Duration::from_millis(2));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = SimRng::new(0);
        let m = LatencyModel::Uniform {
            lo: Duration::from_micros(100),
            hi: Duration::from_micros(200),
        };
        for _ in 0..1_000 {
            let d = m.sample(&mut rng);
            assert!(d >= Duration::from_micros(100) && d < Duration::from_micros(200));
        }
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let mut rng = SimRng::new(0);
        let m = LatencyModel::Uniform {
            lo: Duration::from_micros(100),
            hi: Duration::from_micros(100),
        };
        assert_eq!(m.sample(&mut rng), Duration::from_micros(100));
    }

    #[test]
    fn exponential_tail_exceeds_base() {
        let mut rng = SimRng::new(5);
        let base = Duration::from_micros(500);
        let m = LatencyModel::ExponentialTail {
            base,
            mean_tail: Duration::from_micros(100),
        };
        for _ in 0..100 {
            assert!(m.sample(&mut rng) >= base);
        }
    }

    #[test]
    fn log_normal_respects_floor() {
        let mut rng = SimRng::new(5);
        let floor = Duration::from_millis(10);
        let m = LatencyModel::LogNormal {
            mu: 0.0,
            sigma: 0.1,
            floor,
        };
        for _ in 0..100 {
            assert!(m.sample(&mut rng) >= floor);
        }
    }
}
