//! Deterministic discrete-event simulator for the safetx cloud.
//!
//! The paper's evaluation reasons about message and proof counts over a set
//! of cloud servers; its planned follow-up "simulates their execution over
//! a cloud infrastructure" (Section VIII). This crate is that
//! infrastructure: a single-threaded, seed-deterministic event loop in which
//! actors (transaction managers, servers, the master policy server, CA
//! responders) exchange messages through a configurable network model with
//! latency, loss, partitions and crash/restart injection.
//!
//! Determinism: given the same seed and the same sequence of API calls, a
//! [`World`] replays the exact same schedule — any failing test seed
//! reproduces its failure exactly.
//!
//! # Examples
//!
//! ```
//! use safetx_sim::{Actor, Context, NodeId, World};
//! use safetx_types::Duration;
//!
//! struct Echo;
//! impl Actor<String> for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_, String>, from: NodeId, msg: String) {
//!         if msg == "ping" {
//!             ctx.send(from, "pong".to_owned());
//!         }
//!     }
//! }
//!
//! let mut world = World::new(7);
//! let a = world.add_node(Echo);
//! let b = world.add_node(Echo);
//! world.post(Duration::ZERO, a, b, "ping".to_owned());
//! world.run_to_quiescence();
//! assert_eq!(world.stats().messages_delivered, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod latency;
mod rng;
mod trace;
mod world;

pub use event::TimerTag;
pub use latency::LatencyModel;
pub use rng::SimRng;
pub use trace::{Trace, TraceEntry, TraceKind};
pub use world::{Actor, Context, NetworkConfig, NodeId, SimStats, World};
