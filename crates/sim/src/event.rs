//! Internal event-queue plumbing.

use crate::world::NodeId;
use safetx_types::Timestamp;
use std::cmp::Ordering;

/// Application-chosen discriminator for timers set via
/// [`Context::set_timer`](crate::Context::set_timer).
pub type TimerTag = u64;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver a message to `to`.
    Deliver {
        /// Sender node.
        from: NodeId,
        /// Receiver node.
        to: NodeId,
        /// The message payload.
        msg: M,
    },
    /// Fire a timer on `node`.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// The application discriminator.
        tag: TimerTag,
    },
    /// Crash a node (stop delivering to it, notify `on_crash`).
    Crash {
        /// The node to crash.
        node: NodeId,
    },
    /// Restart a crashed node (notify `on_restart`).
    Restart {
        /// The node to restart.
        node: NodeId,
    },
}

/// An event scheduled at `at`; `seq` breaks ties FIFO for determinism.
#[derive(Debug)]
pub(crate) struct Scheduled<M> {
    pub at: Timestamp,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(at_us: u64, seq: u64) -> Scheduled<()> {
        Scheduled {
            at: Timestamp::from_micros(at_us),
            seq,
            kind: EventKind::Timer {
                node: NodeId::new(0),
                tag: 0,
            },
        }
    }

    #[test]
    fn heap_pops_earliest_first_then_fifo() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(20, 1));
        heap.push(ev(10, 3));
        heap.push(ev(10, 2));
        heap.push(ev(30, 0));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.at.as_micros(), e.seq))
            .collect();
        assert_eq!(order, vec![(10, 2), (10, 3), (20, 1), (30, 0)]);
    }
}
