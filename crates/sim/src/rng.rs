//! Seeded deterministic randomness for the simulation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random source owned by a [`World`](crate::World).
///
/// Wraps a seeded PRNG and adds the distribution samplers the simulation
/// needs (the workspace deliberately avoids extra distribution crates).
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to decorrelate
    /// subsystems (network vs. workload) while keeping determinism.
    #[must_use]
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit_f64() < p
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// sampling); used for Poisson inter-arrival times.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = loop {
            let u = self.unit_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.unit_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal value parameterized by the *underlying* normal's mean and
    /// standard deviation.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_replay_identically() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_generators_diverge_deterministically() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64(), "same fork point, same child");
        assert_ne!(
            SimRng::new(7).next_u64(),
            SimRng::new(8).next_u64(),
            "different seeds differ"
        );
    }

    #[test]
    fn range_is_inclusive_exclusive() {
        let mut rng = SimRng::new(1);
        for _ in 0..1_000 {
            let v = rng.range_u64(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn chance_extremes_are_certain() {
        let mut rng = SimRng::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn exponential_mean_is_approximately_right() {
        let mut rng = SimRng::new(99);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(10.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 10.0).abs() < 0.5, "sample mean {mean}");
    }

    #[test]
    fn standard_normal_is_centered() {
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.standard_normal()).sum();
        let mean = sum / f64::from(n);
        assert!(mean.abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = SimRng::new(3);
        for _ in 0..1_000 {
            assert!(rng.log_normal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(0).range_u64(3, 3);
    }
}
