//! The simulation world: nodes, network, clock and event loop.

use crate::event::{EventKind, Scheduled, TimerTag};
use crate::latency::LatencyModel;
use crate::rng::SimRng;
use crate::trace::{Trace, TraceKind};
use safetx_types::{Duration, Timestamp};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

/// Address of a node inside one [`World`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node id from its raw index.
    #[must_use]
    pub fn new(index: u64) -> Self {
        NodeId(index)
    }

    /// Raw index of the node.
    #[must_use]
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A deterministic state machine living at one node.
///
/// Actors never block: they react to messages and timers by mutating local
/// state and emitting effects through the [`Context`].
pub trait Actor<M> {
    /// A message from `from` arrived.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// A timer set via [`Context::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: TimerTag) {
        let _ = (ctx, tag);
    }

    /// The node crashed: volatile state should be dropped. Durable state
    /// (e.g. a WAL) survives in the actor as the application sees fit.
    fn on_crash(&mut self) {}

    /// The node restarted after a crash and may start recovery.
    fn on_restart(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }
}

trait ActorAny<M>: Actor<M> {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M, T: Actor<M> + 'static> ActorAny<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Effects an actor can emit while handling an event.
enum Effect<M> {
    Send {
        to: NodeId,
        msg: M,
        extra_delay: Duration,
    },
    Timer {
        delay: Duration,
        tag: TimerTag,
    },
    Mark {
        label: String,
    },
    Count {
        label: &'static str,
        amount: u64,
    },
}

/// Handle through which an actor interacts with the world.
pub struct Context<'a, M> {
    now: Timestamp,
    self_id: NodeId,
    rng: &'a mut SimRng,
    effects: Vec<Effect<M>>,
}

impl<'a, M> Context<'a, M> {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// This actor's own address.
    #[must_use]
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Deterministic randomness scoped to the world.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends `msg` to `to` through the network model.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send {
            to,
            msg,
            extra_delay: Duration::ZERO,
        });
    }

    /// Sends `msg` to `to` with an additional processing delay before it
    /// enters the network (models server-side compute time).
    pub fn send_after(&mut self, to: NodeId, msg: M, delay: Duration) {
        self.effects.push(Effect::Send {
            to,
            msg,
            extra_delay: delay,
        });
    }

    /// Fires `on_timer(tag)` on this node after `delay`.
    pub fn set_timer(&mut self, delay: Duration, tag: TimerTag) {
        self.effects.push(Effect::Timer { delay, tag });
    }

    /// Records a custom trace mark (no-op unless tracing is enabled; the
    /// label is still counted in [`SimStats`] marks).
    pub fn mark(&mut self, label: impl Into<String>) {
        self.effects.push(Effect::Mark {
            label: label.into(),
        });
    }

    /// Increments a named counter in the world's stats.
    pub fn count(&mut self, label: &'static str, amount: u64) {
        self.effects.push(Effect::Count { label, amount });
    }
}

/// Network behaviour configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Latency model applied to every message.
    pub latency: LatencyModel,
    /// Probability a message is silently lost.
    pub drop_probability: f64,
}

/// Aggregate statistics of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Messages handed to the network (dropped ones included).
    pub messages_sent: u64,
    /// Messages delivered to a live node.
    pub messages_delivered: u64,
    /// Messages lost (random drop, dead receiver, downed link).
    pub messages_dropped: u64,
    /// Timers that fired on live nodes.
    pub timers_fired: u64,
    /// Total events processed.
    pub events_processed: u64,
    /// Custom counters incremented by actors via [`Context::count`].
    pub counters: HashMap<String, u64>,
}

impl SimStats {
    /// Value of a custom counter, defaulting to zero.
    #[must_use]
    pub fn counter(&self, label: &str) -> u64 {
        self.counters.get(label).copied().unwrap_or(0)
    }
}

/// The discrete-event simulation world.
///
/// Hard cap on processed events (default 50 million) guards against
/// accidental livelock; see [`World::set_event_limit`].
pub struct World<M> {
    nodes: Vec<Box<dyn ActorAny<M>>>,
    alive: Vec<bool>,
    queue: BinaryHeap<Scheduled<M>>,
    now: Timestamp,
    seq: u64,
    rng: SimRng,
    network: NetworkConfig,
    links_down: HashSet<(NodeId, NodeId)>,
    trace: Option<Trace>,
    stats: SimStats,
    event_limit: u64,
}

impl<M: fmt::Debug + 'static> World<M> {
    /// Creates a world with the default network (constant 1 ms latency, no
    /// loss) and the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_network(seed, NetworkConfig::default())
    }

    /// Creates a world with an explicit network configuration.
    #[must_use]
    pub fn with_network(seed: u64, network: NetworkConfig) -> Self {
        World {
            nodes: Vec::new(),
            alive: Vec::new(),
            queue: BinaryHeap::new(),
            now: Timestamp::ZERO,
            seq: 0,
            rng: SimRng::new(seed),
            network,
            links_down: HashSet::new(),
            trace: None,
            stats: SimStats::default(),
            event_limit: 50_000_000,
        }
    }

    /// Registers an actor and returns its address.
    pub fn add_node(&mut self, actor: impl Actor<M> + 'static) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u64);
        self.nodes.push(Box::new(actor));
        self.alive.push(true);
        id
    }

    /// Turns on trace recording (off by default; tracing every message has
    /// a cost proportional to message volume).
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Run statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Replaces the livelock guard (events per run methods).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Immutable access to an actor's concrete state.
    ///
    /// Returns `None` when the id is unknown or the type does not match.
    #[must_use]
    pub fn actor<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes
            .get(id.index() as usize)
            .and_then(|a| a.as_any().downcast_ref())
    }

    /// Mutable access to an actor's concrete state (e.g. to install a
    /// policy update directly at a replica between runs).
    #[must_use]
    pub fn actor_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes
            .get_mut(id.index() as usize)
            .and_then(|a| a.as_any_mut().downcast_mut())
    }

    /// True when the node is currently up.
    #[must_use]
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive
            .get(id.index() as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Injects a message from outside the simulation after `delay`.
    ///
    /// Injection bypasses the network model: no latency sample, no loss, no
    /// partitions (the sender is the experiment harness, not a node). The
    /// message is still dropped if the receiver is down at delivery time.
    pub fn post(&mut self, delay: Duration, from: NodeId, to: NodeId, msg: M) {
        let at = self.now + delay;
        self.push_event(at, EventKind::Deliver { from, to, msg });
    }

    /// Schedules a crash of `node` after `delay`.
    pub fn schedule_crash(&mut self, delay: Duration, node: NodeId) {
        let at = self.now + delay;
        self.push_event(at, EventKind::Crash { node });
    }

    /// Schedules a restart of `node` after `delay`.
    pub fn schedule_restart(&mut self, delay: Duration, node: NodeId) {
        let at = self.now + delay;
        self.push_event(at, EventKind::Restart { node });
    }

    /// Takes the directed link `from → to` down (messages dropped) or back
    /// up.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, up: bool) {
        if up {
            self.links_down.remove(&(from, to));
        } else {
            self.links_down.insert((from, to));
        }
    }

    /// Symmetric partition helper: both directions of every pair across the
    /// two groups.
    pub fn partition(&mut self, side_a: &[NodeId], side_b: &[NodeId]) {
        for &a in side_a {
            for &b in side_b {
                self.set_link(a, b, false);
                self.set_link(b, a, false);
            }
        }
    }

    /// Heals all downed links.
    pub fn heal_partitions(&mut self) {
        self.links_down.clear();
    }

    fn push_event(&mut self, at: Timestamp, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, kind });
    }

    /// Processes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.at >= self.now, "time cannot go backwards");
        self.now = event.at;
        self.stats.events_processed += 1;
        match event.kind {
            EventKind::Deliver { from, to, msg } => self.deliver(from, to, msg),
            EventKind::Timer { node, tag } => {
                if self.is_alive(node) {
                    self.stats.timers_fired += 1;
                    self.with_actor(node, |actor, ctx| actor.on_timer(ctx, tag));
                }
            }
            EventKind::Crash { node } => {
                if self.is_alive(node) {
                    self.alive[node.index() as usize] = false;
                    if let Some(trace) = &mut self.trace {
                        trace.push(self.now, TraceKind::Crash { node });
                    }
                    self.nodes[node.index() as usize].on_crash();
                }
            }
            EventKind::Restart { node } => {
                if !self.is_alive(node) {
                    self.alive[node.index() as usize] = true;
                    if let Some(trace) = &mut self.trace {
                        trace.push(self.now, TraceKind::Restart { node });
                    }
                    self.with_actor(node, |actor, ctx| actor.on_restart(ctx));
                }
            }
        }
        true
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, msg: M) {
        if !self.is_alive(to) {
            self.stats.messages_dropped += 1;
            if let Some(trace) = &mut self.trace {
                trace.push(
                    self.now,
                    TraceKind::Drop {
                        from,
                        to,
                        reason: "receiver down".into(),
                    },
                );
            }
            return;
        }
        self.stats.messages_delivered += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(
                self.now,
                TraceKind::Deliver {
                    from,
                    to,
                    label: format!("{msg:?}"),
                },
            );
        }
        self.with_actor(to, |actor, ctx| actor.on_message(ctx, from, msg));
    }

    /// Runs one actor callback, then applies its effects.
    fn with_actor<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn ActorAny<M>, &mut Context<'_, M>),
    {
        let mut ctx = Context {
            now: self.now,
            self_id: node,
            rng: &mut self.rng,
            effects: Vec::new(),
        };
        // The actor is taken out of the vector to satisfy the borrow
        // checker without unsafe; nodes never address themselves through
        // the world while running.
        let mut actor =
            std::mem::replace(&mut self.nodes[node.index() as usize], Box::new(Tombstone));
        f(actor.as_mut(), &mut ctx);
        self.nodes[node.index() as usize] = actor;
        let effects = ctx.effects;
        self.apply_effects(node, effects);
    }

    fn apply_effects(&mut self, node: NodeId, effects: Vec<Effect<M>>) {
        for effect in effects {
            match effect {
                Effect::Send {
                    to,
                    msg,
                    extra_delay,
                } => self.network_send(node, to, msg, extra_delay),
                Effect::Timer { delay, tag } => {
                    let at = self.now + delay;
                    self.push_event(at, EventKind::Timer { node, tag });
                }
                Effect::Mark { label } => {
                    *self
                        .stats
                        .counters
                        .entry(format!("mark:{label}"))
                        .or_insert(0) += 1;
                    if let Some(trace) = &mut self.trace {
                        trace.push(self.now, TraceKind::Mark { node, label });
                    }
                }
                Effect::Count { label, amount } => {
                    *self.stats.counters.entry(label.to_owned()).or_insert(0) += amount;
                }
            }
        }
    }

    fn network_send(&mut self, from: NodeId, to: NodeId, msg: M, extra_delay: Duration) {
        self.stats.messages_sent += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(
                self.now,
                TraceKind::Send {
                    from,
                    to,
                    label: format!("{msg:?}"),
                },
            );
        }
        if self.links_down.contains(&(from, to)) {
            self.stats.messages_dropped += 1;
            if let Some(trace) = &mut self.trace {
                trace.push(
                    self.now,
                    TraceKind::Drop {
                        from,
                        to,
                        reason: "link down".into(),
                    },
                );
            }
            return;
        }
        if self.network.drop_probability > 0.0 && self.rng.chance(self.network.drop_probability) {
            self.stats.messages_dropped += 1;
            if let Some(trace) = &mut self.trace {
                trace.push(
                    self.now,
                    TraceKind::Drop {
                        from,
                        to,
                        reason: "random loss".into(),
                    },
                );
            }
            return;
        }
        let latency = self.network.latency.sample(&mut self.rng);
        let at = self.now + extra_delay + latency;
        self.push_event(at, EventKind::Deliver { from, to, msg });
    }

    /// Runs until no events remain.
    ///
    /// # Panics
    ///
    /// Panics when the event limit is exceeded (livelock guard).
    pub fn run_to_quiescence(&mut self) {
        let mut processed: u64 = 0;
        while self.step() {
            processed += 1;
            assert!(
                processed <= self.event_limit,
                "event limit {} exceeded: likely livelock",
                self.event_limit
            );
        }
    }

    /// Runs until simulated time reaches `deadline` (events at the deadline
    /// itself are processed) or the queue drains.
    ///
    /// # Panics
    ///
    /// Panics when the event limit is exceeded (livelock guard).
    pub fn run_until(&mut self, deadline: Timestamp) {
        let mut processed: u64 = 0;
        while let Some(next) = self.queue.peek() {
            if next.at > deadline {
                break;
            }
            self.step();
            processed += 1;
            assert!(
                processed <= self.event_limit,
                "event limit {} exceeded: likely livelock",
                self.event_limit
            );
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }
}

/// Placeholder actor parked in a slot while its owner runs (see
/// `with_actor`); it can never observe an event.
struct Tombstone;

impl<M> Actor<M> for Tombstone {
    fn on_message(&mut self, _ctx: &mut Context<'_, M>, _from: NodeId, _msg: M) {
        unreachable!("tombstone actor cannot receive messages");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    enum Msg {
        Ping(u32),
        Pong(#[allow(dead_code)] u32),
    }

    /// Replies to pings, counts pongs, and marks each ping.
    #[derive(Default)]
    struct PingPong {
        pongs_seen: u32,
        send_on_restart: Option<NodeId>,
    }

    impl Actor<Msg> for PingPong {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(n) => {
                    ctx.mark(format!("ping:{n}"));
                    ctx.count("pings", 1);
                    ctx.send(from, Msg::Pong(n));
                }
                Msg::Pong(_) => self.pongs_seen += 1,
            }
        }

        fn on_restart(&mut self, ctx: &mut Context<'_, Msg>) {
            if let Some(peer) = self.send_on_restart {
                ctx.send(peer, Msg::Ping(99));
            }
        }
    }

    fn two_node_world(seed: u64) -> (World<Msg>, NodeId, NodeId) {
        let mut world = World::new(seed);
        let a = world.add_node(PingPong::default());
        let b = world.add_node(PingPong::default());
        (world, a, b)
    }

    #[test]
    fn round_trip_advances_clock_by_two_latencies() {
        let (mut world, a, b) = two_node_world(1);
        world.post(Duration::ZERO, a, b, Msg::Ping(1));
        world.run_to_quiescence();
        // post is immediate; reply crosses the network once (1 ms default).
        assert_eq!(world.now(), Timestamp::from_millis(1));
        assert_eq!(world.actor::<PingPong>(a).unwrap().pongs_seen, 1);
        assert_eq!(world.stats().messages_delivered, 2);
        assert_eq!(world.stats().counter("pings"), 1);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let (mut world, a, b) = two_node_world(seed);
            world.enable_tracing();
            for i in 0..10 {
                world.post(Duration::from_micros(i * 7), a, b, Msg::Ping(i as u32));
            }
            world.run_to_quiescence();
            world.trace().unwrap().clone()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn crashed_node_drops_messages_until_restart() {
        let (mut world, a, b) = two_node_world(2);
        world.schedule_crash(Duration::ZERO, b);
        world.post(Duration::from_millis(1), a, b, Msg::Ping(1));
        world.run_to_quiescence();
        assert_eq!(world.stats().messages_dropped, 1);
        assert_eq!(world.actor::<PingPong>(a).unwrap().pongs_seen, 0);

        world.schedule_restart(Duration::ZERO, b);
        world.post(Duration::from_millis(1), a, b, Msg::Ping(2));
        world.run_to_quiescence();
        assert_eq!(world.actor::<PingPong>(a).unwrap().pongs_seen, 1);
    }

    #[test]
    fn restart_callback_can_send() {
        let mut world = World::new(3);
        let a = world.add_node(PingPong::default());
        let b = world.add_node(PingPong {
            pongs_seen: 0,
            send_on_restart: Some(a),
        });
        world.schedule_crash(Duration::ZERO, b);
        world.schedule_restart(Duration::from_millis(5), b);
        world.run_to_quiescence();
        // b pinged a on restart; a replied with pong.
        assert_eq!(world.actor::<PingPong>(b).unwrap().pongs_seen, 1);
    }

    #[test]
    fn downed_link_is_directional() {
        let (mut world, a, b) = two_node_world(4);
        world.set_link(b, a, false); // replies lost
        world.post(Duration::ZERO, a, b, Msg::Ping(1));
        world.run_to_quiescence();
        assert_eq!(world.stats().counter("pings"), 1, "ping arrived");
        assert_eq!(world.actor::<PingPong>(a).unwrap().pongs_seen, 0);
        assert_eq!(world.stats().messages_dropped, 1);

        world.set_link(b, a, true);
        world.post(Duration::ZERO, a, b, Msg::Ping(2));
        world.run_to_quiescence();
        assert_eq!(world.actor::<PingPong>(a).unwrap().pongs_seen, 1);
    }

    #[test]
    fn partition_and_heal() {
        // The posted ping bypasses the network (external injection), but
        // b's pong reply crosses the partitioned link and is lost.
        let (mut world, a, b) = two_node_world(5);
        world.partition(&[a], &[b]);
        world.post(Duration::ZERO, a, b, Msg::Ping(1));
        world.run_to_quiescence();
        assert_eq!(world.actor::<PingPong>(a).unwrap().pongs_seen, 0);
        assert_eq!(world.stats().messages_dropped, 1);

        world.heal_partitions();
        world.post(Duration::ZERO, a, b, Msg::Ping(2));
        world.run_to_quiescence();
        assert_eq!(world.actor::<PingPong>(a).unwrap().pongs_seen, 1);
    }

    #[test]
    fn lossy_network_drops_roughly_the_configured_fraction() {
        let mut world = World::with_network(
            11,
            NetworkConfig {
                latency: LatencyModel::Constant(Duration::from_micros(10)),
                drop_probability: 0.5,
            },
        );
        let a = world.add_node(PingPong::default());
        let b = world.add_node(PingPong::default());
        for i in 0..1_000 {
            world.post(Duration::from_micros(i), a, b, Msg::Ping(i as u32));
        }
        world.run_to_quiescence();
        // Posted pings always arrive (injection bypasses the network), but
        // b's pong replies traverse the lossy network.
        assert_eq!(world.stats().counter("pings"), 1_000);
        let pongs = u64::from(world.actor::<PingPong>(a).unwrap().pongs_seen);
        assert!((300..700).contains(&pongs), "got {pongs}");
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let (mut world, a, b) = two_node_world(6);
        world.post(Duration::from_millis(10), a, b, Msg::Ping(1));
        world.run_until(Timestamp::from_millis(5));
        assert_eq!(world.now(), Timestamp::from_millis(5));
        assert_eq!(world.stats().messages_delivered, 0);
        world.run_until(Timestamp::from_millis(20));
        assert_eq!(world.stats().counter("pings"), 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerActor {
            fired: Vec<TimerTag>,
        }
        impl Actor<Msg> for TimerActor {
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, _msg: Msg) {
                ctx.set_timer(Duration::from_millis(3), 3);
                ctx.set_timer(Duration::from_millis(1), 1);
                ctx.set_timer(Duration::from_millis(2), 2);
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, tag: TimerTag) {
                self.fired.push(tag);
            }
        }
        let mut world = World::new(8);
        let t = world.add_node(TimerActor { fired: vec![] });
        world.post(Duration::ZERO, t, t, Msg::Ping(0));
        world.run_to_quiescence();
        assert_eq!(world.actor::<TimerActor>(t).unwrap().fired, vec![1, 2, 3]);
        assert_eq!(world.stats().timers_fired, 3);
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn livelock_guard_trips() {
        struct Looper;
        impl Actor<Msg> for Looper {
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, _msg: Msg) {
                let me = ctx.self_id();
                ctx.send(me, Msg::Ping(0));
            }
        }
        let mut world = World::new(9);
        world.set_event_limit(1_000);
        let n = world.add_node(Looper);
        world.post(Duration::ZERO, n, n, Msg::Ping(0));
        world.run_to_quiescence();
    }

    #[test]
    fn actor_downcast_rejects_wrong_type() {
        let (world, a, _) = two_node_world(10);
        assert!(world.actor::<PingPong>(a).is_some());
        struct Other;
        impl Actor<Msg> for Other {
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
        }
        assert!(world.actor::<Other>(a).is_none());
    }
}
