//! Execution traces.
//!
//! Every send, delivery, drop, crash and custom mark is recorded (when
//! tracing is enabled) so experiments can count messages exactly (Table I)
//! and render the paper's timeline figures (Figures 3–7).

use crate::world::NodeId;
use safetx_types::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a trace entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A message left `from` toward `to`.
    Send {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Debug rendering of the message.
        label: String,
    },
    /// A message arrived at `to`.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Debug rendering of the message.
        label: String,
    },
    /// A message was dropped by the network or a dead/partitioned link.
    Drop {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Why it was dropped.
        reason: String,
    },
    /// A node crashed.
    Crash {
        /// The crashed node.
        node: NodeId,
    },
    /// A node restarted.
    Restart {
        /// The restarted node.
        node: NodeId,
    },
    /// An application-defined mark (e.g. "proof evaluated", "force-log").
    Mark {
        /// The node that emitted the mark.
        node: NodeId,
        /// The mark label.
        label: String,
    },
}

/// One timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When it happened.
    pub at: Timestamp,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TraceKind::Send { from, to, label } => {
                write!(f, "{} send  {} -> {}: {}", self.at, from, to, label)
            }
            TraceKind::Deliver { from, to, label } => {
                write!(f, "{} recv  {} -> {}: {}", self.at, from, to, label)
            }
            TraceKind::Drop { from, to, reason } => {
                write!(f, "{} drop  {} -> {}: {}", self.at, from, to, reason)
            }
            TraceKind::Crash { node } => write!(f, "{} crash {}", self.at, node),
            TraceKind::Restart { node } => write!(f, "{} up    {}", self.at, node),
            TraceKind::Mark { node, label } => {
                write!(f, "{} mark  {}: {}", self.at, node, label)
            }
        }
    }
}

/// An append-only sequence of trace entries.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, at: Timestamp, kind: TraceKind) {
        self.entries.push(TraceEntry { at, kind });
    }

    /// All entries in order.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries whose mark label starts with `prefix` (non-mark entries are
    /// skipped); used by the timeline renderers.
    pub fn marks_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a TraceEntry, NodeId, &'a str)> + 'a {
        self.entries.iter().filter_map(move |e| match &e.kind {
            TraceKind::Mark { node, label } if label.starts_with(prefix) => {
                Some((e, *node, label.as_str()))
            }
            _ => None,
        })
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for entry in &self.entries {
            writeln!(f, "{entry}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_render_one_line_each() {
        let mut trace = Trace::new();
        trace.push(
            Timestamp::from_millis(1),
            TraceKind::Send {
                from: NodeId::new(0),
                to: NodeId::new(1),
                label: "Prepare".into(),
            },
        );
        trace.push(
            Timestamp::from_millis(2),
            TraceKind::Crash {
                node: NodeId::new(1),
            },
        );
        let text = trace.to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("Prepare"));
        assert!(text.contains("crash"));
    }

    #[test]
    fn marks_with_prefix_filters() {
        let mut trace = Trace::new();
        trace.push(
            Timestamp::ZERO,
            TraceKind::Mark {
                node: NodeId::new(3),
                label: "proof:q1".into(),
            },
        );
        trace.push(
            Timestamp::ZERO,
            TraceKind::Mark {
                node: NodeId::new(3),
                label: "log:prepared".into(),
            },
        );
        let proofs: Vec<_> = trace.marks_with_prefix("proof:").collect();
        assert_eq!(proofs.len(), 1);
        assert_eq!(proofs[0].1, NodeId::new(3));
    }
}
