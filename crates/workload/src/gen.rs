//! Transaction generation.

use crate::dist::{PoissonArrivals, QueryCount, Zipf};
use safetx_sim::SimRng;
use safetx_store::Value;
use safetx_txn::{Operation, QuerySpec, TransactionSpec};
use safetx_types::{DataItemId, Duration, ServerId, TxnId, UserId};
use serde::{Deserialize, Serialize};

/// Shape of the generated workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of transactions.
    pub transactions: usize,
    /// Queries per transaction.
    pub queries_per_txn: QueryCount,
    /// Number of servers in the deployment.
    pub servers: usize,
    /// Items hosted per server.
    pub items_per_server: u64,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// Zipf exponent for item popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Mean inter-arrival time between transactions (Poisson arrivals).
    pub mean_interarrival: Duration,
    /// Prefer distinct servers for a transaction's queries (the paper's
    /// worst-case layout: one query per participant).
    pub distinct_servers: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            transactions: 100,
            queries_per_txn: QueryCount::Fixed(3),
            servers: 3,
            items_per_server: 64,
            read_fraction: 0.5,
            zipf_exponent: 0.8,
            mean_interarrival: Duration::from_millis(10),
            distinct_servers: true,
        }
    }
}

impl WorkloadConfig {
    /// The item id hosted at `server` with local rank `rank`.
    ///
    /// Items are partitioned by server: server `s` hosts ids
    /// `s * items_per_server .. (s+1) * items_per_server`.
    #[must_use]
    pub fn item_at(&self, server: ServerId, rank: u64) -> DataItemId {
        DataItemId::new(server.index() * self.items_per_server + rank)
    }
}

/// Deterministic transaction generator.
#[derive(Debug)]
pub struct TxnGenerator {
    config: WorkloadConfig,
    rng: SimRng,
    zipf: Zipf,
    next_txn: u64,
}

impl TxnGenerator {
    /// Creates a generator with its own RNG stream.
    ///
    /// # Panics
    ///
    /// Panics when the config has zero servers or zero items per server.
    #[must_use]
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        assert!(config.servers > 0, "no servers");
        assert!(config.items_per_server > 0, "no items");
        let zipf = Zipf::new(config.items_per_server as usize, config.zipf_exponent);
        TxnGenerator {
            config,
            rng: SimRng::new(seed),
            zipf,
            next_txn: 0,
        }
    }

    /// Generates one transaction for `user`.
    pub fn next_txn(&mut self, user: UserId) -> TransactionSpec {
        let id = TxnId::new(self.next_txn);
        self.next_txn += 1;
        let u = self.config.queries_per_txn.sample(&mut self.rng);
        let first_server = self.rng.range_u64(0, self.config.servers as u64);
        let mut queries = Vec::with_capacity(u);
        for qi in 0..u {
            let server = if self.config.distinct_servers {
                ServerId::new((first_server + qi as u64) % self.config.servers as u64)
            } else {
                ServerId::new(self.rng.range_u64(0, self.config.servers as u64))
            };
            let rank = self.zipf.sample(&mut self.rng) as u64;
            let item = self.config.item_at(server, rank);
            let read = self.rng.chance(self.config.read_fraction);
            let (action, ops) = if read {
                ("read", vec![Operation::Read(item)])
            } else {
                ("write", vec![Operation::Add(item, 1)])
            };
            queries.push(QuerySpec::new(server, action, "records", ops));
        }
        TransactionSpec::new(id, user, queries)
    }

    /// Generates the full schedule: `(arrival offset, spec)` pairs with
    /// exponential inter-arrival times.
    pub fn schedule(&mut self, user: UserId) -> Vec<(Duration, TransactionSpec)> {
        let arrivals = PoissonArrivals::new(
            self.config.mean_interarrival,
            // Derived, not shared: the arrival process must not interleave
            // draws with the spec-generation RNG stream.
            self.rng.next_u64(),
        );
        arrivals
            .take(self.config.transactions)
            .map(|at| (at, self.next_txn(user)))
            .collect()
    }

    /// Seed values every item starts from (so reads and `Add`s always find
    /// integers).
    pub fn initial_items(&self) -> impl Iterator<Item = (ServerId, DataItemId, Value)> + '_ {
        (0..self.config.servers as u64).flat_map(move |s| {
            let server = ServerId::new(s);
            (0..self.config.items_per_server)
                .map(move |r| (server, self.config.item_at(server, r), Value::Int(100)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> WorkloadConfig {
        WorkloadConfig {
            transactions: 10,
            servers: 4,
            items_per_server: 8,
            ..Default::default()
        }
    }

    #[test]
    fn transactions_have_unique_increasing_ids() {
        let mut g = TxnGenerator::new(config(), 7);
        let a = g.next_txn(UserId::new(0));
        let b = g.next_txn(UserId::new(0));
        assert!(b.id > a.id);
    }

    #[test]
    fn distinct_servers_yield_one_query_per_participant() {
        let cfg = WorkloadConfig {
            queries_per_txn: QueryCount::Fixed(4),
            servers: 4,
            distinct_servers: true,
            ..config()
        };
        let mut g = TxnGenerator::new(cfg, 1);
        for _ in 0..20 {
            let t = g.next_txn(UserId::new(0));
            assert_eq!(t.participants().len(), 4);
        }
    }

    #[test]
    fn items_stay_in_their_servers_partition() {
        let cfg = config();
        let mut g = TxnGenerator::new(cfg.clone(), 2);
        for _ in 0..50 {
            let t = g.next_txn(UserId::new(0));
            for q in &t.queries {
                for item in q.touched_items() {
                    let server_base = q.server.index() * cfg.items_per_server;
                    assert!(
                        (server_base..server_base + cfg.items_per_server).contains(&item.index()),
                        "item {item} outside {}'s partition",
                        q.server
                    );
                }
            }
        }
    }

    #[test]
    fn schedule_arrivals_are_monotone() {
        let mut g = TxnGenerator::new(config(), 3);
        let schedule = g.schedule(UserId::new(1));
        assert_eq!(schedule.len(), 10);
        for pair in schedule.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
    }

    #[test]
    fn same_seed_same_workload() {
        let a: Vec<_> = TxnGenerator::new(config(), 9).schedule(UserId::new(1));
        let b: Vec<_> = TxnGenerator::new(config(), 9).schedule(UserId::new(1));
        assert_eq!(a, b);
    }

    #[test]
    fn initial_items_cover_all_partitions() {
        let g = TxnGenerator::new(config(), 4);
        let items: Vec<_> = g.initial_items().collect();
        assert_eq!(items.len(), 4 * 8);
    }

    #[test]
    fn read_fraction_extremes() {
        let all_reads = WorkloadConfig {
            read_fraction: 1.0,
            ..config()
        };
        let mut g = TxnGenerator::new(all_reads, 5);
        let t = g.next_txn(UserId::new(0));
        assert!(t.queries.iter().all(|q| !q.has_writes()));

        let all_writes = WorkloadConfig {
            read_fraction: 0.0,
            ..config()
        };
        let mut g = TxnGenerator::new(all_writes, 5);
        let t = g.next_txn(UserId::new(0));
        assert!(t.queries.iter().all(QuerySpec::has_writes));
    }
}
