//! Million-scale user and key populations with bounded memory.
//!
//! Scale-out experiments draw from key spaces and user populations in the
//! millions. Materializing either up front (a credential per user, a CDF
//! entry per key) would cost gigabytes, so this module keeps both lazy:
//! [`Population`] samples user and item **ranks** through the O(1)-memory
//! [`ZipfLarge`] inverters, and [`WalletDirectory`] issues each user's
//! credential wallet from the certificate authority only when that user is
//! first sampled, memoized in a bounded FIFO cache. An evicted user who
//! returns is simply re-issued a fresh (equally valid) certificate for the
//! same facts — the proofs it feeds are identical.

use crate::dist::ZipfLarge;
use safetx_core::SharedCas;
use safetx_policy::{Atom, Constant, Credential};
use safetx_sim::SimRng;
use safetx_types::{CaId, Timestamp, UserId};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// A user/key population for scale experiments: Zipf-ranked selection over
/// both, with rank 0 the hottest user/key.
#[derive(Debug, Clone, Copy)]
pub struct Population {
    users: ZipfLarge,
    items: ZipfLarge,
}

impl Population {
    /// Builds a population of `users` users and `items` keys with the
    /// given Zipf exponents (`0.0` = uniform).
    ///
    /// # Panics
    ///
    /// Panics when either count is zero or an exponent is invalid.
    #[must_use]
    pub fn new(users: u64, user_skew: f64, items: u64, item_skew: f64) -> Self {
        Population {
            users: ZipfLarge::new(users, user_skew),
            items: ZipfLarge::new(items, item_skew),
        }
    }

    /// Draws a user (rank 0 most active).
    pub fn sample_user(&self, rng: &mut SimRng) -> UserId {
        UserId::new(self.users.sample(rng))
    }

    /// Draws a key rank in `0..items` (rank 0 hottest). The caller maps
    /// ranks to data items / owning servers.
    pub fn sample_item(&self, rng: &mut SimRng) -> u64 {
        self.items.sample(rng)
    }

    /// Total users.
    #[must_use]
    pub fn users(&self) -> u64 {
        self.users.len()
    }

    /// Total keys.
    #[must_use]
    pub fn items(&self) -> u64 {
        self.items.len()
    }
}

struct WalletCache {
    wallets: HashMap<u64, Arc<[Credential]>>,
    fifo: VecDeque<u64>,
    issued: u64,
}

/// Lazily materialized per-user credential wallets over a shared
/// certificate authority, memoized in a bounded FIFO cache so a
/// million-user population costs memory proportional to the cache
/// capacity, not the population.
///
/// Every wallet holds one membership credential asserting
/// `role(u<id>, member)` — the fact the standard experiment policies
/// grant on — issued by the directory's CA with unbounded validity.
pub struct WalletDirectory {
    cas: SharedCas,
    ca: CaId,
    capacity: usize,
    cache: Mutex<WalletCache>,
}

impl WalletDirectory {
    /// Creates the directory over a deployment's certificate authorities.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(cas: SharedCas, ca: CaId, capacity: usize) -> Self {
        assert!(capacity > 0, "wallet cache needs capacity");
        WalletDirectory {
            cas,
            ca,
            capacity,
            cache: Mutex::new(WalletCache {
                wallets: HashMap::new(),
                fifo: VecDeque::new(),
                issued: 0,
            }),
        }
    }

    /// The user's credential wallet, issuing and caching it on first use.
    ///
    /// # Panics
    ///
    /// Panics when the directory's CA is not registered.
    #[must_use]
    pub fn wallet(&self, user: UserId) -> Arc<[Credential]> {
        if let Some(found) = self
            .cache
            .lock()
            .expect("wallet cache lock")
            .wallets
            .get(&user.index())
        {
            return Arc::clone(found);
        }
        // Issue outside the cache lock: CA serial allocation is its own
        // synchronization domain, and a slow issue must not block hits.
        let ca = self.ca;
        let credential = self.cas.with_mut(|registry| {
            registry
                .ca_mut(ca)
                .expect("wallet directory CA registered")
                .issue(
                    user,
                    Atom::fact(
                        "role",
                        vec![
                            Constant::symbol(user.to_string()),
                            Constant::symbol("member"),
                        ],
                    ),
                    Timestamp::ZERO,
                    Timestamp::MAX,
                )
        });
        let wallet: Arc<[Credential]> = Arc::from(vec![credential]);
        let mut cache = self.cache.lock().expect("wallet cache lock");
        cache.issued += 1;
        // A concurrent miss for the same user may have beaten us here;
        // keep the first wallet so both callers share one allocation.
        let entry = cache
            .wallets
            .entry(user.index())
            .or_insert_with(|| Arc::clone(&wallet))
            .clone();
        if entry.first().map(|c| c.id()) == wallet.first().map(|c| c.id()) {
            cache.fifo.push_back(user.index());
            while cache.fifo.len() > self.capacity {
                let evict = cache.fifo.pop_front().expect("fifo non-empty");
                cache.wallets.remove(&evict);
            }
        }
        entry
    }

    /// Total credential issues performed (misses; hits are free).
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.cache.lock().expect("wallet cache lock").issued
    }

    /// Wallets currently memoized (≤ capacity).
    #[must_use]
    pub fn cached(&self) -> usize {
        self.cache.lock().expect("wallet cache lock").wallets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_policy::{CaRegistry, CertificateAuthority};

    fn directory(capacity: usize) -> WalletDirectory {
        let mut registry = CaRegistry::new();
        registry.register(CertificateAuthority::new(CaId::new(0), 0x7331));
        WalletDirectory::new(SharedCas::new(registry), CaId::new(0), capacity)
    }

    #[test]
    fn wallets_are_memoized() {
        let dir = directory(8);
        let a = dir.wallet(UserId::new(7));
        let b = dir.wallet(UserId::new(7));
        assert_eq!(dir.issued(), 1, "second lookup must hit the cache");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn wallet_credential_names_the_user() {
        let dir = directory(8);
        let wallet = dir.wallet(UserId::new(42));
        let atom = wallet[0].statement();
        assert_eq!(atom.predicate(), "role");
        assert_eq!(format!("{atom}"), "role(u42, member)");
    }

    #[test]
    fn cache_stays_bounded_over_a_large_population() {
        let dir = directory(16);
        for u in 0..10_000u64 {
            let _ = dir.wallet(UserId::new(u));
        }
        assert!(dir.cached() <= 16, "{} wallets cached", dir.cached());
        assert_eq!(dir.issued(), 10_000);
    }

    #[test]
    fn evicted_users_reissue_equivalent_wallets() {
        let dir = directory(2);
        let first = dir.wallet(UserId::new(1));
        let _ = dir.wallet(UserId::new(2));
        let _ = dir.wallet(UserId::new(3)); // evicts user 1
        let again = dir.wallet(UserId::new(1));
        assert_eq!(dir.issued(), 4, "user 1 was re-issued after eviction");
        assert_eq!(
            first[0].statement(),
            again[0].statement(),
            "same facts either way"
        );
        assert_ne!(first[0].id(), again[0].id(), "fresh certificate serial");
    }

    #[test]
    fn population_samples_stay_in_bounds() {
        let pop = Population::new(1_000_000, 0.9, 5_000_000, 1.1);
        let mut rng = SimRng::new(9);
        for _ in 0..1_000 {
            assert!(pop.sample_user(&mut rng).index() < 1_000_000);
            assert!(pop.sample_item(&mut rng) < 5_000_000);
        }
        assert_eq!(pop.users(), 1_000_000);
        assert_eq!(pop.items(), 5_000_000);
    }
}
