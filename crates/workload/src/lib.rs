//! Workload generation for the evaluation (Section VI-B).
//!
//! The paper's trade-off discussion varies two knobs: **transaction
//! length** and **time between policy updates**. This crate generates
//! reproducible workloads over those knobs — transactions with configurable
//! query counts and read/write mixes, Zipf-distributed item selection,
//! Poisson arrivals, and Poisson policy-update / credential-revocation
//! background processes — and runs them on a
//! [`safetx_core::Experiment`], collecting latency histograms and abort
//! statistics per scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod gen;
mod population;
mod scenario;

pub use dist::{PoissonArrivals, QueryCount, Zipf, ZipfLarge};
pub use gen::{TxnGenerator, WorkloadConfig};
pub use population::{Population, WalletDirectory};
pub use scenario::{run_scenario, PolicyChurn, ScenarioConfig, ScenarioResult};
