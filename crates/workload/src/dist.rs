//! Samplers used by the generator.

use safetx_sim::SimRng;
use safetx_types::Duration;
use serde::{Deserialize, Serialize};

/// Distribution of the number of queries per transaction (`u`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryCount {
    /// Every transaction has exactly this many queries.
    Fixed(usize),
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Minimum queries (inclusive), at least 1.
        lo: usize,
        /// Maximum queries (inclusive).
        hi: usize,
    },
}

impl QueryCount {
    /// Draws a query count (always ≥ 1).
    pub fn sample(self, rng: &mut SimRng) -> usize {
        match self {
            QueryCount::Fixed(u) => u.max(1),
            QueryCount::Uniform { lo, hi } => {
                let lo = lo.max(1);
                let hi = hi.max(lo);
                rng.range_u64(lo as u64, hi as u64 + 1) as usize
            }
        }
    }

    /// The mean of the distribution.
    #[must_use]
    pub fn mean(self) -> f64 {
        match self {
            QueryCount::Fixed(u) => u.max(1) as f64,
            QueryCount::Uniform { lo, hi } => (lo.max(1) + hi.max(lo.max(1))) as f64 / 2.0,
        }
    }
}

/// Zipf-distributed selection over `0..n` (rank 0 most popular), the
/// standard model for skewed data access.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `s` (`s = 0` is
    /// uniform; larger is more skewed).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over zero items");
        assert!(s >= 0.0 && s.is_finite(), "invalid zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never true: the constructor rejects `n == 0`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Zipf-distributed selection over `0..n` for **large** `n` (millions of
/// keys): constant memory via harmonic-approximation inversion, versus
/// [`Zipf`]'s exact-but-O(n) CDF table.
///
/// The continuous density `f(x) ∝ x^(-s)` on `[1, n+1)` is inverted in
/// closed form and floored to a rank, which approximates the discrete Zipf
/// distribution (the approximation error shrinks with `n`; rank ordering
/// and the heavy head are exact properties of the inversion). `s = 0` is
/// exactly uniform, matching [`Zipf`].
#[derive(Debug, Clone, Copy)]
pub struct ZipfLarge {
    n: u64,
    s: f64,
}

impl ZipfLarge {
    /// Builds a sampler over `n` items with exponent `s` (`s = 0` is
    /// uniform; larger is more skewed).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf over zero items");
        assert!(s >= 0.0 && s.is_finite(), "invalid zipf exponent {s}");
        ZipfLarge { n, s }
    }

    /// Draws a rank in `0..n` (rank 0 most popular).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.s == 0.0 {
            return rng.range_u64(0, self.n);
        }
        let u = rng.unit_f64();
        let n = self.n as f64;
        // Invert the continuous CDF of x^(-s) on [1, n+1).
        let x = if (self.s - 1.0).abs() < 1e-9 {
            // s = 1: CDF ∝ ln(x), inverse = (n+1)^u.
            (n + 1.0).powf(u)
        } else {
            // s ≠ 1: CDF ∝ x^(1-s) - 1, inverse below.
            let t = 1.0 - self.s;
            (1.0 + u * ((n + 1.0).powf(t) - 1.0)).powf(1.0 / t)
        };
        ((x.floor() as u64).saturating_sub(1)).min(self.n - 1)
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Never true: the constructor rejects `n == 0`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// An infinite open-loop Poisson arrival process: successive absolute
/// arrival offsets with exponential inter-arrival gaps (truncated to whole
/// microseconds, minimum 1 µs so arrivals are strictly monotone).
///
/// This is the arrival side of an open-loop load driver: arrivals are
/// generated independently of completions, so a saturated service sheds
/// the excess instead of slowing the offered load down.
#[derive(Debug)]
pub struct PoissonArrivals {
    rng: SimRng,
    mean_micros: f64,
    at: Duration,
}

impl PoissonArrivals {
    /// Creates the process with the given mean inter-arrival time and its
    /// own deterministic RNG stream.
    ///
    /// # Panics
    ///
    /// Panics when `mean_interarrival` is zero.
    #[must_use]
    pub fn new(mean_interarrival: Duration, seed: u64) -> Self {
        assert!(
            mean_interarrival > Duration::ZERO,
            "zero mean inter-arrival time"
        );
        PoissonArrivals {
            rng: SimRng::new(seed),
            mean_micros: mean_interarrival.as_micros() as f64,
            at: Duration::ZERO,
        }
    }

    /// The offered load in arrivals per second.
    #[must_use]
    pub fn rate_per_sec(&self) -> f64 {
        1_000_000.0 / self.mean_micros
    }
}

impl Iterator for PoissonArrivals {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        let gap = self.rng.exponential(self.mean_micros).max(1.0);
        self.at += Duration::from_micros(gap as u64);
        Some(self.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_query_count_is_fixed_and_positive() {
        let mut rng = SimRng::new(0);
        assert_eq!(QueryCount::Fixed(5).sample(&mut rng), 5);
        assert_eq!(QueryCount::Fixed(0).sample(&mut rng), 1, "clamped to 1");
        assert_eq!(QueryCount::Fixed(5).mean(), 5.0);
    }

    #[test]
    fn uniform_query_count_stays_in_bounds() {
        let mut rng = SimRng::new(1);
        for _ in 0..1_000 {
            let u = QueryCount::Uniform { lo: 2, hi: 6 }.sample(&mut rng);
            assert!((2..=6).contains(&u));
        }
        assert_eq!(QueryCount::Uniform { lo: 2, hi: 6 }.mean(), 4.0);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = SimRng::new(2);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipf_skew_prefers_low_ranks() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = SimRng::new(3);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        assert!(
            head > n / 2,
            "top-10 of 100 should draw most samples, got {head}/{n}"
        );
    }

    #[test]
    fn zipf_samples_are_in_range() {
        let zipf = Zipf::new(7, 0.9);
        let mut rng = SimRng::new(4);
        for _ in 0..1_000 {
            assert!(zipf.sample(&mut rng) < 7);
        }
        assert_eq!(zipf.len(), 7);
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zipf_rejects_empty_domain() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn zipf_large_zero_exponent_is_uniform_over_millions() {
        let zipf = ZipfLarge::new(10_000_000, 0.0);
        let mut rng = SimRng::new(5);
        let mut below_half = 0;
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!(k < 10_000_000);
            if k < 5_000_000 {
                below_half += 1;
            }
        }
        assert!((4_000..6_000).contains(&below_half), "{below_half}");
    }

    #[test]
    fn zipf_large_skew_prefers_low_ranks() {
        for s in [0.8, 1.0, 1.2] {
            let zipf = ZipfLarge::new(1_000_000, s);
            let mut rng = SimRng::new(6);
            let n = 20_000;
            let head = (0..n).filter(|_| zipf.sample(&mut rng) < 1_000).count();
            // The top 0.1% of a million-key Zipf draws a large share
            // (≈20% at s=0.8, ≈50% at s=1.0, ≈80% at s=1.2 — versus
            // 0.1% under uniform selection).
            assert!(
                head > n / 6,
                "s={s}: top-1000 of 1M drew only {head}/{n} samples"
            );
        }
    }

    #[test]
    fn zipf_large_matches_small_zipf_head_mass() {
        // Same exponent, same domain: the CDF-table sampler and the
        // closed-form inversion must agree on the head's share.
        let n = 1_000usize;
        let s = 1.1;
        let exact = Zipf::new(n, s);
        let approx = ZipfLarge::new(n as u64, s);
        let (mut rng_a, mut rng_b) = (SimRng::new(7), SimRng::new(7));
        let trials = 40_000;
        let head_exact = (0..trials)
            .filter(|_| exact.sample(&mut rng_a) < 10)
            .count() as f64;
        let head_approx = (0..trials)
            .filter(|_| approx.sample(&mut rng_b) < 10)
            .count() as f64;
        let (a, b) = (head_exact / trials as f64, head_approx / trials as f64);
        // The continuous inversion trims the head slightly (≈0.43 vs the
        // exact ≈0.48 at n=1000, shrinking as n grows) — agreement within
        // 0.1 of probability mass is what the approximation promises.
        assert!((a - b).abs() < 0.1, "head mass diverged: {a} vs {b}");
    }

    #[test]
    fn zipf_large_samples_stay_in_range() {
        for s in [0.0, 0.5, 1.0, 2.0] {
            let zipf = ZipfLarge::new(3, s);
            let mut rng = SimRng::new(8);
            for _ in 0..1_000 {
                assert!(zipf.sample(&mut rng) < 3);
            }
        }
        assert_eq!(ZipfLarge::new(3, 1.0).len(), 3);
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zipf_large_rejects_empty_domain() {
        let _ = ZipfLarge::new(0, 1.0);
    }

    #[test]
    fn poisson_arrivals_are_strictly_monotone() {
        let arrivals: Vec<Duration> = PoissonArrivals::new(Duration::from_millis(1), 42)
            .take(1_000)
            .collect();
        for pair in arrivals.windows(2) {
            assert!(pair[0] < pair[1], "arrivals must strictly increase");
        }
    }

    #[test]
    fn poisson_arrivals_deterministic_under_fixed_seed() {
        let a: Vec<Duration> = PoissonArrivals::new(Duration::from_micros(500), 7)
            .take(256)
            .collect();
        let b: Vec<Duration> = PoissonArrivals::new(Duration::from_micros(500), 7)
            .take(256)
            .collect();
        assert_eq!(a, b);
        let c: Vec<Duration> = PoissonArrivals::new(Duration::from_micros(500), 8)
            .take(256)
            .collect();
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn poisson_mean_gap_tracks_configured_mean() {
        let n = 20_000u64;
        let last = PoissonArrivals::new(Duration::from_micros(1_000), 3)
            .take(n as usize)
            .last()
            .unwrap();
        let mean_gap = last.as_micros() as f64 / n as f64;
        assert!(
            (800.0..1_200.0).contains(&mean_gap),
            "mean gap {mean_gap} off the configured 1000µs"
        );
        let p = PoissonArrivals::new(Duration::from_micros(1_000), 3);
        assert!((p.rate_per_sec() - 1_000.0).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "zero mean")]
    fn poisson_rejects_zero_mean() {
        let _ = PoissonArrivals::new(Duration::ZERO, 0);
    }
}
