//! Samplers used by the generator.

use safetx_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Distribution of the number of queries per transaction (`u`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryCount {
    /// Every transaction has exactly this many queries.
    Fixed(usize),
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Minimum queries (inclusive), at least 1.
        lo: usize,
        /// Maximum queries (inclusive).
        hi: usize,
    },
}

impl QueryCount {
    /// Draws a query count (always ≥ 1).
    pub fn sample(self, rng: &mut SimRng) -> usize {
        match self {
            QueryCount::Fixed(u) => u.max(1),
            QueryCount::Uniform { lo, hi } => {
                let lo = lo.max(1);
                let hi = hi.max(lo);
                rng.range_u64(lo as u64, hi as u64 + 1) as usize
            }
        }
    }

    /// The mean of the distribution.
    #[must_use]
    pub fn mean(self) -> f64 {
        match self {
            QueryCount::Fixed(u) => u.max(1) as f64,
            QueryCount::Uniform { lo, hi } => (lo.max(1) + hi.max(lo.max(1))) as f64 / 2.0,
        }
    }
}

/// Zipf-distributed selection over `0..n` (rank 0 most popular), the
/// standard model for skewed data access.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `s` (`s = 0` is
    /// uniform; larger is more skewed).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over zero items");
        assert!(s >= 0.0 && s.is_finite(), "invalid zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never true: the constructor rejects `n == 0`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_query_count_is_fixed_and_positive() {
        let mut rng = SimRng::new(0);
        assert_eq!(QueryCount::Fixed(5).sample(&mut rng), 5);
        assert_eq!(QueryCount::Fixed(0).sample(&mut rng), 1, "clamped to 1");
        assert_eq!(QueryCount::Fixed(5).mean(), 5.0);
    }

    #[test]
    fn uniform_query_count_stays_in_bounds() {
        let mut rng = SimRng::new(1);
        for _ in 0..1_000 {
            let u = QueryCount::Uniform { lo: 2, hi: 6 }.sample(&mut rng);
            assert!((2..=6).contains(&u));
        }
        assert_eq!(QueryCount::Uniform { lo: 2, hi: 6 }.mean(), 4.0);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = SimRng::new(2);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipf_skew_prefers_low_ranks() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = SimRng::new(3);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        assert!(
            head > n / 2,
            "top-10 of 100 should draw most samples, got {head}/{n}"
        );
    }

    #[test]
    fn zipf_samples_are_in_range() {
        let zipf = Zipf::new(7, 0.9);
        let mut rng = SimRng::new(4);
        for _ in 0..1_000 {
            assert!(zipf.sample(&mut rng) < 7);
        }
        assert_eq!(zipf.len(), 7);
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zipf_rejects_empty_domain() {
        let _ = Zipf::new(0, 1.0);
    }
}
