//! End-to-end scenario runner for the Section VI-B trade-off study.
//!
//! A scenario runs a generated workload under one scheme × consistency
//! level while a Poisson **policy-update process** bumps the policy version
//! (optionally with *breaking* updates that temporarily deny the workload's
//! role) and an optional **revocation process** invalidates some
//! transactions' credentials mid-flight. The result aggregates the numbers
//! the paper's decision guidance is about: commit latency, abort rate,
//! wasted work on rollbacks, messages and proofs.

use crate::gen::{TxnGenerator, WorkloadConfig};
use safetx_core::{Experiment, ExperimentConfig, ExperimentReport};
use safetx_metrics::Histogram;
use safetx_policy::{Atom, Constant, PolicyBuilder, RuleSet};
use safetx_sim::SimRng;
use safetx_types::{CaId, Duration, PolicyId, PolicyVersion, Timestamp, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The background policy-update process.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PolicyChurn {
    /// Mean time between policy updates (`None` = frozen policy).
    pub mean_update_interval: Option<Duration>,
    /// Fraction of updates that are *breaking*: they deny the workload's
    /// role for [`PolicyChurn::break_duration`], after which a restoring
    /// version is published.
    pub breaking_fraction: f64,
    /// How long a breaking update stays in force before the administrator
    /// publishes the restoring version.
    pub break_duration: Duration,
}

impl Default for PolicyChurn {
    fn default() -> Self {
        PolicyChurn {
            mean_update_interval: None,
            breaking_fraction: 0.0,
            break_duration: Duration::from_millis(3),
        }
    }
}

/// Full scenario configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Deployment/protocol settings (server count is taken from the
    /// workload).
    pub experiment: ExperimentConfig,
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// Policy-update process.
    pub churn: PolicyChurn,
    /// Fraction of transactions whose credential is revoked shortly after
    /// submission.
    pub revoke_fraction: f64,
    /// How long after submission the revocation lands.
    pub revoke_after: Duration,
    /// Modeled cost of undoing one already-executed query when a
    /// transaction rolls back ("early detections of unsafe transactions can
    /// save the system from going into expensive undo operations").
    pub undo_cost_per_query: Duration,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            experiment: ExperimentConfig::default(),
            workload: WorkloadConfig::default(),
            churn: PolicyChurn::default(),
            revoke_fraction: 0.0,
            revoke_after: Duration::from_millis(2),
            undo_cost_per_query: Duration::ZERO,
        }
    }
}

/// Aggregated results of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Raw per-transaction records and counters.
    pub report: ExperimentReport,
    /// Latency of committed transactions, in milliseconds.
    pub commit_latency_ms: Histogram,
    /// Time spent on transactions that ended up aborting, in milliseconds.
    pub wasted_ms: Histogram,
    /// Aborts by reason.
    pub aborts_by_reason: BTreeMap<String, usize>,
}

impl ScenarioResult {
    /// Fraction of transactions that aborted.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let n = self.report.records.len();
        if n == 0 {
            0.0
        } else {
            self.report.aborts() as f64 / n as f64
        }
    }

    /// Mean commit latency in milliseconds (`None` when nothing committed).
    #[must_use]
    pub fn mean_commit_latency_ms(&self) -> Option<f64> {
        self.commit_latency_ms.mean()
    }

    /// Total milliseconds burned by aborted transactions.
    #[must_use]
    pub fn total_wasted_ms(&self) -> f64 {
        self.wasted_ms.count() as f64 * self.wasted_ms.mean().unwrap_or(0.0)
    }

    /// Mean paper-model messages per transaction.
    #[must_use]
    pub fn mean_messages(&self) -> f64 {
        let n = self.report.records.len();
        if n == 0 {
            0.0
        } else {
            self.report.totals().messages as f64 / n as f64
        }
    }

    /// Mean proof evaluations per transaction.
    #[must_use]
    pub fn mean_proofs(&self) -> f64 {
        let n = self.report.records.len();
        if n == 0 {
            0.0
        } else {
            self.report.totals().proofs as f64 / n as f64
        }
    }

    /// The decision metric used by the trade-off bench: average cost of one
    /// *successful* transaction — total time invested (including wasted
    /// aborts) divided by commits. Lower is better.
    #[must_use]
    pub fn cost_per_commit_ms(&self) -> f64 {
        let commits = self.report.commits();
        if commits == 0 {
            return f64::INFINITY;
        }
        let committed_ms =
            self.commit_latency_ms.count() as f64 * self.commit_latency_ms.mean().unwrap_or(0.0);
        (committed_ms + self.total_wasted_ms()) / commits as f64
    }
}

/// The permissive rule set: any `member` may read or write `records`.
fn member_rules() -> RuleSet {
    "grant(read, records) :- role(U, member).\n\
     grant(write, records) :- role(U, member)."
        .parse()
        .expect("static rules parse")
}

/// The breaking rule set: only `auditor`s may touch `records` (the
/// workload's members are denied).
fn auditor_rules() -> RuleSet {
    "grant(read, records) :- role(U, auditor).\n\
     grant(write, records) :- role(U, auditor)."
        .parse()
        .expect("static rules parse")
}

/// Runs one scenario to completion.
///
/// # Panics
///
/// Panics on configuration errors (zero servers, unparseable rules).
#[must_use]
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioResult {
    let mut exp_config = config.experiment.clone();
    exp_config.servers = config.workload.servers;
    let mut exp = Experiment::new(exp_config);

    // Base policy v1, installed everywhere.
    let policy_id = PolicyId::new(0);
    let base = PolicyBuilder::new(policy_id, safetx_types::AdminDomain::new(0))
        .rules(member_rules())
        .build();
    exp.catalog().publish(base.clone());
    exp.install_everywhere(policy_id, PolicyVersion::INITIAL);

    // Seed data.
    let mut generator = TxnGenerator::new(config.workload.clone(), config.experiment.seed ^ 0xA5);
    let seeds: Vec<_> = generator.initial_items().collect();
    for (server, item, value) in seeds {
        exp.seed_item(server, item, value);
    }

    // Policy-update schedule over the expected workload horizon.
    let horizon = config
        .workload
        .mean_interarrival
        .saturating_mul(config.workload.transactions as u64 + 10);
    if let Some(mean) = config.churn.mean_update_interval {
        let mut rng = SimRng::new(config.experiment.seed ^ 0xC0FFEE);
        // Each Poisson update publishes a new version; breaking ones are
        // restored by an extra publish `break_duration` later.
        let mut events: Vec<(Duration, bool)> = Vec::new(); // (time, is_breaking)
        let mut at = Duration::ZERO;
        loop {
            let gap = rng.exponential(mean.as_micros() as f64);
            at += Duration::from_micros(gap.max(1.0) as u64);
            if at > horizon {
                break;
            }
            if rng.chance(config.churn.breaking_fraction) {
                events.push((at, true));
                events.push((at + config.churn.break_duration, false));
            } else {
                events.push((at, false));
            }
        }
        events.sort_by_key(|&(t, _)| t);
        let mut current = base.clone();
        for (t, breaking) in events {
            let rules = if breaking {
                auditor_rules()
            } else {
                member_rules()
            };
            current = current.updated(rules);
            exp.publish_policy(current.clone(), t);
        }
    }

    // Transactions: one credential per transaction so revocations are
    // independent.
    let user = UserId::new(1);
    let statement = Atom::fact(
        "role",
        vec![Constant::symbol("u1"), Constant::symbol("member")],
    );
    let schedule = generator.schedule(user);
    let mut revoke_rng = SimRng::new(config.experiment.seed ^ 0xDEAD);
    for (arrival, spec) in schedule {
        let credential = exp.issue_credential(
            user,
            statement.clone(),
            Timestamp::ZERO,
            Timestamp::ZERO + horizon + horizon,
        );
        if config.revoke_fraction > 0.0 && revoke_rng.chance(config.revoke_fraction) {
            let revoke_at = Timestamp::ZERO + arrival + config.revoke_after;
            let id = credential.id();
            exp.cas().with_mut(|registry| {
                registry.revoke(CaId::new(0), id, revoke_at);
            });
        }
        exp.submit(spec, vec![credential], arrival);
    }

    exp.run();
    let report = exp.report();

    let mut commit_latency_ms = Histogram::new();
    let mut wasted_ms = Histogram::new();
    let mut aborts_by_reason: BTreeMap<String, usize> = BTreeMap::new();
    for record in &report.records {
        let ms = record
            .finished_at
            .duration_since(record.started_at)
            .as_micros() as f64
            / 1_000.0;
        if record.outcome.is_commit() {
            commit_latency_ms.record(ms);
        } else {
            let undo_ms = config.undo_cost_per_query.as_micros() as f64 / 1_000.0
                * record.queries_executed as f64;
            wasted_ms.record(ms + undo_ms);
            if let Some(reason) = record.outcome.abort_reason() {
                *aborts_by_reason.entry(reason.to_string()).or_insert(0) += 1;
            }
        }
    }

    ScenarioResult {
        report,
        commit_latency_ms,
        wasted_ms,
        aborts_by_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetx_core::{ConsistencyLevel, ProofScheme};

    fn quick_config(scheme: ProofScheme, level: ConsistencyLevel) -> ScenarioConfig {
        ScenarioConfig {
            experiment: ExperimentConfig {
                scheme,
                consistency: level,
                seed: 11,
                ..Default::default()
            },
            workload: WorkloadConfig {
                transactions: 30,
                servers: 3,
                mean_interarrival: Duration::from_millis(20),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn quiet_scenario_commits_everything() {
        for scheme in ProofScheme::ALL {
            let result = run_scenario(&quick_config(scheme, ConsistencyLevel::View));
            assert_eq!(result.report.records.len(), 30, "{scheme}");
            assert!(
                result.abort_rate() < 0.2,
                "{scheme}: abort rate {} (only lock conflicts expected)",
                result.abort_rate()
            );
            assert!(result.mean_commit_latency_ms().unwrap() > 0.0);
        }
    }

    #[test]
    fn breaking_churn_causes_aborts_without_unsafe_commits() {
        let mut config = quick_config(ProofScheme::Deferred, ConsistencyLevel::View);
        config.churn = PolicyChurn {
            mean_update_interval: Some(Duration::from_millis(15)),
            breaking_fraction: 0.5,
            break_duration: Duration::from_millis(8),
        };
        let result = run_scenario(&config);
        assert!(
            result.report.aborts() > 0,
            "breaking updates must cause rollbacks"
        );
        assert!(result
            .aborts_by_reason
            .contains_key("proof of authorization false"));
    }

    #[test]
    fn revocations_abort_deferred_transactions() {
        let mut config = quick_config(ProofScheme::Deferred, ConsistencyLevel::View);
        config.revoke_fraction = 1.0;
        config.revoke_after = Duration::ZERO;
        let result = run_scenario(&config);
        assert_eq!(result.report.commits(), 0, "every credential was revoked");
    }

    #[test]
    fn continuous_pays_more_messages_than_deferred() {
        let deferred = run_scenario(&quick_config(ProofScheme::Deferred, ConsistencyLevel::View));
        let continuous = run_scenario(&quick_config(
            ProofScheme::Continuous,
            ConsistencyLevel::View,
        ));
        assert!(
            continuous.mean_messages() > deferred.mean_messages(),
            "continuous {} <= deferred {}",
            continuous.mean_messages(),
            deferred.mean_messages()
        );
    }

    #[test]
    fn cost_metric_is_infinite_without_commits() {
        let mut config = quick_config(ProofScheme::Punctual, ConsistencyLevel::View);
        config.revoke_fraction = 1.0;
        config.revoke_after = Duration::ZERO;
        let result = run_scenario(&config);
        assert!(result.cost_per_commit_ms().is_infinite());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_scenario(&quick_config(
            ProofScheme::Punctual,
            ConsistencyLevel::Global,
        ));
        let b = run_scenario(&quick_config(
            ProofScheme::Punctual,
            ConsistencyLevel::Global,
        ));
        assert_eq!(a.report.records.len(), b.report.records.len());
        assert_eq!(a.report.totals(), b.report.totals());
        assert_eq!(a.abort_rate(), b.abort_rate());
    }
}
