//! Versioned authorization policies and policy stores.
//!
//! The paper defines a policy as the mapping `P : S × 2^D → 2^R × A × N`: a
//! server and a set of data items map to inference rules `R`, an
//! administrative domain `A` and a version number. [`Policy`] captures the
//! right-hand side; [`PolicyStore`] holds the versions known at one site (a
//! server replica or the authoritative master).

use crate::error::PolicyError;
use crate::rule::Rule;
use safetx_types::{AdminDomain, PolicyId, PolicyVersion};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::str::FromStr;

/// An ordered collection of inference rules, parseable from text.
///
/// # Examples
///
/// ```
/// use safetx_policy::RuleSet;
///
/// # fn main() -> Result<(), safetx_policy::PolicyError> {
/// let rules: RuleSet = "grant(read, t) :- role(U, rep).".parse()?;
/// assert_eq!(rules.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Creates an empty rule set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when there are no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over the rules.
    pub fn iter(&self) -> std::slice::Iter<'_, Rule> {
        self.rules.iter()
    }

    /// The rules as a slice, in declaration order.
    #[must_use]
    pub fn as_slice(&self) -> &[Rule] {
        &self.rules
    }

    /// Appends a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }
}

impl FromStr for RuleSet {
    type Err = PolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(RuleSet {
            rules: crate::parser::parse_rules(s)?,
        })
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for RuleSet {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        RuleSet {
            rules: iter.into_iter().collect(),
        }
    }
}

impl Extend<Rule> for RuleSet {
    fn extend<I: IntoIterator<Item = Rule>>(&mut self, iter: I) {
        self.rules.extend(iter);
    }
}

impl<'a> IntoIterator for &'a RuleSet {
    type Item = &'a Rule;
    type IntoIter = std::slice::Iter<'a, Rule>;

    fn into_iter(self) -> Self::IntoIter {
        self.rules.iter()
    }
}

/// One version of an authorization policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    id: PolicyId,
    admin: AdminDomain,
    version: PolicyVersion,
    rules: RuleSet,
}

impl Policy {
    /// The policy identifier (stable across versions).
    #[must_use]
    pub fn id(&self) -> PolicyId {
        self.id
    }

    /// The administrative domain `A` that owns the policy.
    #[must_use]
    pub fn admin(&self) -> AdminDomain {
        self.admin
    }

    /// The version number `ver(P)`.
    #[must_use]
    pub fn version(&self) -> PolicyVersion {
        self.version
    }

    /// The inference rules of this version.
    #[must_use]
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Produces the successor version with replacement rules.
    ///
    /// This is the administrator's "policy update" operation: `P` becomes
    /// `P'` with `ver(P') = ver(P) + 1`.
    #[must_use]
    pub fn updated(&self, rules: RuleSet) -> Policy {
        Policy {
            id: self.id,
            admin: self.admin,
            version: self.version.next(),
            rules,
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({} rules, domain {})",
            self.id,
            self.version,
            self.rules.len(),
            self.admin
        )
    }
}

/// Builder for the first version of a policy.
#[derive(Debug)]
pub struct PolicyBuilder {
    id: PolicyId,
    admin: AdminDomain,
    version: PolicyVersion,
    rules: RuleSet,
}

impl PolicyBuilder {
    /// Starts building a policy owned by `admin`.
    #[must_use]
    pub fn new(id: PolicyId, admin: AdminDomain) -> Self {
        PolicyBuilder {
            id,
            admin,
            version: PolicyVersion::INITIAL,
            rules: RuleSet::new(),
        }
    }

    /// Sets the rule set.
    #[must_use]
    pub fn rules(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// Parses and sets the rule set from text.
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn rules_text(mut self, text: &str) -> Result<Self, PolicyError> {
        self.rules = text.parse()?;
        Ok(self)
    }

    /// Overrides the starting version (defaults to
    /// [`PolicyVersion::INITIAL`]).
    #[must_use]
    pub fn version(mut self, version: PolicyVersion) -> Self {
        self.version = version;
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> Policy {
        Policy {
            id: self.id,
            admin: self.admin,
            version: self.version,
            rules: self.rules,
        }
    }
}

/// All policy versions known at one site.
///
/// Used for both a server's (possibly stale) replica and the authoritative
/// master consulted under global consistency.
#[derive(Debug, Clone, Default)]
pub struct PolicyStore {
    versions: HashMap<PolicyId, BTreeMap<PolicyVersion, Policy>>,
}

impl PolicyStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a policy version. Older versions are retained so that stale
    /// proofs remain auditable. Returns `true` when this version is the new
    /// latest for its id.
    pub fn install(&mut self, policy: Policy) -> bool {
        let id = policy.id();
        let version = policy.version();
        let by_version = self.versions.entry(id).or_default();
        let was_latest = by_version
            .last_key_value()
            .is_none_or(|(&v, _)| version > v);
        by_version.insert(version, policy);
        was_latest
    }

    /// The latest version of a policy, if any version is known.
    #[must_use]
    pub fn latest(&self, id: PolicyId) -> Option<&Policy> {
        self.versions
            .get(&id)
            .and_then(|m| m.last_key_value())
            .map(|(_, p)| p)
    }

    /// The latest version *number* of a policy.
    #[must_use]
    pub fn latest_version(&self, id: PolicyId) -> Option<PolicyVersion> {
        self.latest(id).map(Policy::version)
    }

    /// A specific version of a policy.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnknownPolicy`] /
    /// [`PolicyError::UnknownPolicyVersion`] accordingly.
    pub fn get(&self, id: PolicyId, version: PolicyVersion) -> Result<&Policy, PolicyError> {
        let by_version = self
            .versions
            .get(&id)
            .ok_or(PolicyError::UnknownPolicy { policy: id })?;
        by_version
            .get(&version)
            .ok_or(PolicyError::UnknownPolicyVersion {
                policy: id,
                version,
            })
    }

    /// Iterates over the latest version of every known policy.
    pub fn latest_policies(&self) -> impl Iterator<Item = &Policy> {
        self.versions
            .values()
            .filter_map(|m| m.last_key_value().map(|(_, p)| p))
    }

    /// Number of distinct policy ids known.
    #[must_use]
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when no policy is known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy_v1() -> Policy {
        PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text("grant(read, customers) :- role(U, sales_rep).")
            .unwrap()
            .build()
    }

    #[test]
    fn builder_starts_at_initial_version() {
        let p = policy_v1();
        assert_eq!(p.version(), PolicyVersion::INITIAL);
        assert_eq!(p.rules().len(), 1);
    }

    #[test]
    fn updated_increments_version_and_replaces_rules() {
        let p1 = policy_v1();
        let p2 = p1.updated(
            "grant(read, customers) :- role(U, manager)."
                .parse()
                .unwrap(),
        );
        assert_eq!(p2.version(), PolicyVersion(2));
        assert_eq!(p2.id(), p1.id());
        assert_eq!(p2.admin(), p1.admin());
        assert_ne!(p2.rules(), p1.rules());
    }

    #[test]
    fn store_tracks_latest_and_history() {
        let mut store = PolicyStore::new();
        let p1 = policy_v1();
        let p2 = p1.updated(RuleSet::new());
        assert!(store.install(p1.clone()));
        assert!(store.install(p2.clone()));
        assert_eq!(store.latest(p1.id()).unwrap().version(), p2.version());
        assert_eq!(store.get(p1.id(), p1.version()).unwrap(), &p1);
        assert_eq!(store.latest_version(p1.id()), Some(PolicyVersion(2)));
    }

    #[test]
    fn installing_an_older_version_does_not_regress_latest() {
        let mut store = PolicyStore::new();
        let p1 = policy_v1();
        let p2 = p1.updated(RuleSet::new());
        assert!(store.install(p2.clone()));
        assert!(!store.install(p1.clone()), "v1 arrives late via gossip");
        assert_eq!(store.latest_version(p1.id()), Some(p2.version()));
    }

    #[test]
    fn unknown_lookups_error() {
        let store = PolicyStore::new();
        let err = store.get(PolicyId::new(9), PolicyVersion(1)).unwrap_err();
        assert!(matches!(err, PolicyError::UnknownPolicy { .. }));

        let mut store = PolicyStore::new();
        store.install(policy_v1());
        let err = store.get(PolicyId::new(0), PolicyVersion(9)).unwrap_err();
        assert!(matches!(err, PolicyError::UnknownPolicyVersion { .. }));
    }

    #[test]
    fn ruleset_parse_display_round_trip() {
        let text = "grant(read, customers) :- role(U, sales_rep).\n";
        let rules: RuleSet = text.parse().unwrap();
        assert_eq!(rules.to_string(), text);
    }

    #[test]
    fn ruleset_collects_from_iterator() {
        let rules: RuleSet = "a. b. c(1)."
            .parse::<RuleSet>()
            .unwrap()
            .iter()
            .cloned()
            .collect();
        assert_eq!(rules.len(), 3);
    }
}
