//! Certificate authorities and online credential status checking.
//!
//! The paper assumes "each CA offers an online method that allows any server
//! to check the current status of a particular credential" (an OCSP-style
//! responder, RFC 2560). [`CertificateAuthority`] plays both roles: issuer
//! and responder. [`CaRegistry`] aggregates the CAs known to a deployment and
//! is the [`StatusOracle`] servers consult while evaluating proofs.

use crate::credential::{Credential, CredentialBuilder, SyntacticCheck};
use crate::fact::Atom;
use safetx_types::{CaId, CredentialId, Timestamp, UserId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of an online status check for one credential at a query time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CredentialStatus {
    /// Issued by this CA and not revoked at any instant up to the query time.
    Good,
    /// Revoked at the contained instant (which is ≤ the query time).
    Revoked(Timestamp),
    /// The CA has no record of this credential (or the responder is not the
    /// issuer).
    Unknown,
}

impl CredentialStatus {
    /// True only for [`CredentialStatus::Good`].
    #[must_use]
    pub fn is_good(self) -> bool {
        self == CredentialStatus::Good
    }
}

impl std::fmt::Display for CredentialStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CredentialStatus::Good => write!(f, "good"),
            CredentialStatus::Revoked(at) => write!(f, "revoked at {at}"),
            CredentialStatus::Unknown => write!(f, "unknown"),
        }
    }
}

/// An online source of credential status, consulted during semantic
/// validation of proofs of authorization.
pub trait StatusOracle {
    /// Reports the status of `credential` as of instant `at`.
    ///
    /// A credential revoked at `t_r ≤ at` must be reported
    /// [`CredentialStatus::Revoked`]; a revocation scheduled *after* `at` is
    /// not yet visible and the credential is still
    /// [`CredentialStatus::Good`]. This matches the paper's semantic
    /// validity: valid at `t` iff not revoked at any `t'` with
    /// `t_i ≤ t' ≤ t`.
    fn status(&self, credential: CredentialId, at: Timestamp) -> CredentialStatus;

    /// Verifies the signature on a credential, if this oracle can.
    fn verify(&self, credential: &Credential, at: Timestamp) -> SyntacticCheck;
}

/// A certificate authority: issues, revokes and vouches for credentials.
///
/// # Examples
///
/// ```
/// use safetx_policy::{Atom, CertificateAuthority, Constant, CredentialStatus, StatusOracle};
/// use safetx_types::{CaId, Timestamp, UserId};
///
/// let mut ca = CertificateAuthority::new(CaId::new(0), 0xfeed);
/// let stmt = Atom::fact("role", vec![Constant::symbol("bob"), Constant::symbol("rep")]);
/// let cred = ca.issue(UserId::new(1), stmt, Timestamp::ZERO, Timestamp::from_millis(1000));
/// assert!(ca.status(cred.id(), Timestamp::from_millis(5)).is_good());
/// ```
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    id: CaId,
    key: u64,
    next_serial: u64,
    issued: HashMap<CredentialId, Timestamp>,
    revoked: HashMap<CredentialId, Timestamp>,
}

impl CertificateAuthority {
    /// Creates a CA with the given identifier and signing key.
    #[must_use]
    pub fn new(id: CaId, key: u64) -> Self {
        CertificateAuthority {
            id,
            key,
            next_serial: 0,
            issued: HashMap::new(),
            revoked: HashMap::new(),
        }
    }

    /// The CA's identifier.
    #[must_use]
    pub fn id(&self) -> CaId {
        self.id
    }

    /// Issues a signed credential asserting `statement` about `subject`,
    /// valid during `[issued_at, expires_at)`.
    ///
    /// Credential ids are unique per CA: `serial * num_ca_slots + ca_index`
    /// style packing is avoided by namespacing with the CA index in the high
    /// bits.
    pub fn issue(
        &mut self,
        subject: UserId,
        statement: Atom,
        issued_at: Timestamp,
        expires_at: Timestamp,
    ) -> Credential {
        let serial = self.next_serial;
        self.next_serial += 1;
        let id = CredentialId::new((self.id.index() << 40) | serial);
        self.issued.insert(id, issued_at);
        CredentialBuilder::new(id, subject, statement, self.id)
            .issued_at(issued_at)
            .expires_at(expires_at)
            .sign(self.key)
    }

    /// Revokes a credential at instant `at`.
    ///
    /// Revocation is permanent; only the earliest revocation instant is
    /// retained. Revoking an unknown credential is a no-op returning `false`.
    pub fn revoke(&mut self, credential: CredentialId, at: Timestamp) -> bool {
        if !self.issued.contains_key(&credential) {
            return false;
        }
        let entry = self.revoked.entry(credential).or_insert(at);
        if at < *entry {
            *entry = at;
        }
        true
    }

    /// Number of credentials issued so far.
    #[must_use]
    pub fn issued_count(&self) -> usize {
        self.issued.len()
    }

    /// The recorded revocation instant for `credential`, if any — including
    /// instants still in the future (a revocation scheduled for `t_r > now`
    /// is already on the books but not yet visible to [`StatusOracle::status`]).
    ///
    /// Proof caches use this to bound how long a `Good` answer stays valid.
    #[must_use]
    pub fn revocation_instant(&self, credential: CredentialId) -> Option<Timestamp> {
        self.revoked.get(&credential).copied()
    }
}

impl StatusOracle for CertificateAuthority {
    fn status(&self, credential: CredentialId, at: Timestamp) -> CredentialStatus {
        if !self.issued.contains_key(&credential) {
            return CredentialStatus::Unknown;
        }
        match self.revoked.get(&credential) {
            Some(&revoked_at) if revoked_at <= at => CredentialStatus::Revoked(revoked_at),
            _ => CredentialStatus::Good,
        }
    }

    fn verify(&self, credential: &Credential, at: Timestamp) -> SyntacticCheck {
        if credential.issuer() != self.id {
            return SyntacticCheck::BadSignature;
        }
        credential.syntactic_check(self.key, at)
    }
}

/// The set of certificate authorities known to a deployment.
///
/// Dispatches status and verification queries to the issuing CA.
#[derive(Debug, Clone, Default)]
pub struct CaRegistry {
    cas: HashMap<CaId, CertificateAuthority>,
}

impl CaRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a CA.
    pub fn register(&mut self, ca: CertificateAuthority) {
        self.cas.insert(ca.id(), ca);
    }

    /// Looks up a CA by id.
    #[must_use]
    pub fn ca(&self, id: CaId) -> Option<&CertificateAuthority> {
        self.cas.get(&id)
    }

    /// Mutable lookup, e.g. for issuing or revoking.
    #[must_use]
    pub fn ca_mut(&mut self, id: CaId) -> Option<&mut CertificateAuthority> {
        self.cas.get_mut(&id)
    }

    /// Number of registered CAs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cas.len()
    }

    /// True when no CA is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cas.is_empty()
    }

    /// Revokes a credential through its issuing CA.
    ///
    /// Returns `false` when the issuer is unknown or never issued it.
    pub fn revoke(&mut self, issuer: CaId, credential: CredentialId, at: Timestamp) -> bool {
        match self.cas.get_mut(&issuer) {
            Some(ca) => ca.revoke(credential, at),
            None => false,
        }
    }

    /// The recorded revocation instant for `credential` across all CAs
    /// (exactly one CA can have issued it). Includes future-dated
    /// revocations; see [`CertificateAuthority::revocation_instant`].
    #[must_use]
    pub fn revocation_instant(&self, credential: CredentialId) -> Option<Timestamp> {
        self.cas
            .values()
            .find_map(|ca| ca.revocation_instant(credential))
    }
}

impl StatusOracle for CaRegistry {
    fn status(&self, credential: CredentialId, at: Timestamp) -> CredentialStatus {
        // Credential ids are namespaced by issuing CA in the high bits, but a
        // robust responder just asks every CA; exactly one can know it.
        for ca in self.cas.values() {
            let s = ca.status(credential, at);
            if s != CredentialStatus::Unknown {
                return s;
            }
        }
        CredentialStatus::Unknown
    }

    fn verify(&self, credential: &Credential, at: Timestamp) -> SyntacticCheck {
        match self.cas.get(&credential.issuer()) {
            Some(ca) => ca.verify(credential, at),
            None => SyntacticCheck::BadSignature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Constant;

    fn stmt(role: &str) -> Atom {
        Atom::fact(
            "role",
            vec![Constant::symbol("bob"), Constant::symbol(role)],
        )
    }

    fn ca_with_credential() -> (CertificateAuthority, Credential) {
        let mut ca = CertificateAuthority::new(CaId::new(1), 0xdead_beef);
        let cred = ca.issue(
            UserId::new(3),
            stmt("sales_rep"),
            Timestamp::from_millis(0),
            Timestamp::from_millis(1_000),
        );
        (ca, cred)
    }

    #[test]
    fn issued_credential_verifies_and_is_good() {
        let (ca, cred) = ca_with_credential();
        assert!(ca.verify(&cred, Timestamp::from_millis(10)).is_valid());
        assert!(ca.status(cred.id(), Timestamp::from_millis(10)).is_good());
    }

    #[test]
    fn revocation_is_visible_only_from_its_instant() {
        let (mut ca, cred) = ca_with_credential();
        assert!(ca.revoke(cred.id(), Timestamp::from_millis(50)));
        assert!(ca.status(cred.id(), Timestamp::from_millis(49)).is_good());
        assert_eq!(
            ca.status(cred.id(), Timestamp::from_millis(50)),
            CredentialStatus::Revoked(Timestamp::from_millis(50))
        );
        assert_eq!(
            ca.status(cred.id(), Timestamp::from_millis(999)),
            CredentialStatus::Revoked(Timestamp::from_millis(50))
        );
    }

    #[test]
    fn earliest_revocation_wins() {
        let (mut ca, cred) = ca_with_credential();
        ca.revoke(cred.id(), Timestamp::from_millis(80));
        ca.revoke(cred.id(), Timestamp::from_millis(40));
        ca.revoke(cred.id(), Timestamp::from_millis(60));
        assert_eq!(
            ca.status(cred.id(), Timestamp::from_millis(100)),
            CredentialStatus::Revoked(Timestamp::from_millis(40))
        );
    }

    #[test]
    fn unknown_credential_is_unknown_and_unrevocable() {
        let (mut ca, _) = ca_with_credential();
        let ghost = CredentialId::new(999_999);
        assert_eq!(
            ca.status(ghost, Timestamp::from_millis(1)),
            CredentialStatus::Unknown
        );
        assert!(!ca.revoke(ghost, Timestamp::from_millis(1)));
    }

    #[test]
    fn registry_dispatches_to_issuing_ca() {
        let mut registry = CaRegistry::new();
        let mut ca0 = CertificateAuthority::new(CaId::new(0), 1);
        let mut ca1 = CertificateAuthority::new(CaId::new(1), 2);
        let c0 = ca0.issue(
            UserId::new(1),
            stmt("rep"),
            Timestamp::ZERO,
            Timestamp::from_millis(10),
        );
        let c1 = ca1.issue(
            UserId::new(1),
            stmt("manager"),
            Timestamp::ZERO,
            Timestamp::from_millis(10),
        );
        registry.register(ca0);
        registry.register(ca1);

        assert!(registry.verify(&c0, Timestamp::from_millis(1)).is_valid());
        assert!(registry.verify(&c1, Timestamp::from_millis(1)).is_valid());
        assert!(registry
            .status(c0.id(), Timestamp::from_millis(1))
            .is_good());
        assert!(registry.revoke(CaId::new(1), c1.id(), Timestamp::from_millis(2)));
        assert!(matches!(
            registry.status(c1.id(), Timestamp::from_millis(3)),
            CredentialStatus::Revoked(_)
        ));
    }

    #[test]
    fn registry_rejects_credential_from_unregistered_ca() {
        let registry = CaRegistry::new();
        let mut rogue = CertificateAuthority::new(CaId::new(9), 123);
        let cred = rogue.issue(
            UserId::new(1),
            stmt("rep"),
            Timestamp::ZERO,
            Timestamp::from_millis(10),
        );
        assert_eq!(
            registry.verify(&cred, Timestamp::from_millis(1)),
            SyntacticCheck::BadSignature
        );
        assert_eq!(
            registry.status(cred.id(), Timestamp::from_millis(1)),
            CredentialStatus::Unknown
        );
    }

    #[test]
    fn credential_ids_are_namespaced_per_ca() {
        let mut ca_a = CertificateAuthority::new(CaId::new(0), 1);
        let mut ca_b = CertificateAuthority::new(CaId::new(1), 2);
        let a = ca_a.issue(UserId::new(1), stmt("r"), Timestamp::ZERO, Timestamp::MAX);
        let b = ca_b.issue(UserId::new(1), stmt("r"), Timestamp::ZERO, Timestamp::MAX);
        assert_ne!(a.id(), b.id());
    }
}
