//! Atoms, terms and constants of the rule language.
//!
//! Policies are sets of Datalog-style inference rules over atoms such as
//! `role(bob, sales_rep)` or `grant(read, customers)`. Facts are ground atoms
//! (no variables); rule bodies and heads may contain variables, written with
//! a leading uppercase letter (`X`, `Region`).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A constant symbol: an interned lowercase identifier or an integer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Constant {
    /// A symbolic constant such as `bob` or `sales_rep`.
    Symbol(String),
    /// An integer constant.
    Int(i64),
}

impl Constant {
    /// Creates a symbolic constant.
    ///
    /// # Examples
    ///
    /// ```
    /// use safetx_policy::Constant;
    /// assert_eq!(Constant::symbol("bob").to_string(), "bob");
    /// ```
    #[must_use]
    pub fn symbol(name: impl Into<String>) -> Self {
        Constant::Symbol(name.into())
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Symbol(s) => write!(f, "{s}"),
            Constant::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<&str> for Constant {
    fn from(s: &str) -> Self {
        Constant::Symbol(s.to_owned())
    }
}

impl From<i64> for Constant {
    fn from(i: i64) -> Self {
        Constant::Int(i)
    }
}

/// A term appearing as an argument of an atom: a constant or a variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A constant term.
    Const(Constant),
    /// A variable, named with a leading uppercase letter by convention.
    Var(String),
}

impl Term {
    /// Creates a variable term.
    #[must_use]
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Creates a symbolic constant term.
    #[must_use]
    pub fn symbol(name: impl Into<String>) -> Self {
        Term::Const(Constant::symbol(name))
    }

    /// True when the term is a variable.
    #[must_use]
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Applies a substitution, returning the (possibly unchanged) term.
    #[must_use]
    pub fn substitute(&self, bindings: &Bindings) -> Term {
        match self {
            Term::Const(_) => self.clone(),
            Term::Var(name) => match bindings.get(name) {
                Some(c) => Term::Const(c.clone()),
                None => self.clone(),
            },
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var(v) => write!(f, "{v}"),
        }
    }
}

impl From<Constant> for Term {
    fn from(c: Constant) -> Self {
        Term::Const(c)
    }
}

/// A substitution mapping variable names to constants.
pub type Bindings = BTreeMap<String, Constant>;

/// An atom `predicate(t1, ..., tk)`.
///
/// Ground atoms (all arguments constant) are *facts*; atoms with variables
/// occur in rules and queries.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Atom {
    predicate: String,
    args: Vec<Term>,
}

impl Atom {
    /// Creates an atom from a predicate name and argument terms.
    ///
    /// # Examples
    ///
    /// ```
    /// use safetx_policy::{Atom, Term};
    /// let a = Atom::new("role", vec![Term::symbol("bob"), Term::var("R")]);
    /// assert_eq!(a.to_string(), "role(bob, R)");
    /// ```
    #[must_use]
    pub fn new(predicate: impl Into<String>, args: Vec<Term>) -> Self {
        Atom {
            predicate: predicate.into(),
            args,
        }
    }

    /// Creates a ground atom from constants only.
    #[must_use]
    pub fn fact(predicate: impl Into<String>, args: Vec<Constant>) -> Self {
        Atom {
            predicate: predicate.into(),
            args: args.into_iter().map(Term::Const).collect(),
        }
    }

    /// The predicate name.
    #[must_use]
    pub fn predicate(&self) -> &str {
        &self.predicate
    }

    /// The argument terms.
    #[must_use]
    pub fn args(&self) -> &[Term] {
        &self.args
    }

    /// Number of arguments (the predicate's arity as used here).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// True when every argument is a constant.
    #[must_use]
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }

    /// Iterates over the names of variables occurring in this atom.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.args.iter().filter_map(|t| match t {
            Term::Var(v) => Some(v.as_str()),
            Term::Const(_) => None,
        })
    }

    /// Applies a substitution to every argument.
    #[must_use]
    pub fn substitute(&self, bindings: &Bindings) -> Atom {
        Atom {
            predicate: self.predicate.clone(),
            args: self.args.iter().map(|t| t.substitute(bindings)).collect(),
        }
    }

    /// Attempts to unify this (possibly non-ground) atom against a ground
    /// atom, extending `bindings`. Returns `None` on mismatch; on success the
    /// returned bindings extend the input consistently.
    #[must_use]
    pub fn match_ground(&self, ground: &Atom, bindings: &Bindings) -> Option<Bindings> {
        if self.predicate != ground.predicate || self.args.len() != ground.args.len() {
            return None;
        }
        let mut out = bindings.clone();
        for (pat, g) in self.args.iter().zip(ground.args.iter()) {
            let gc = match g {
                Term::Const(c) => c,
                Term::Var(_) => return None,
            };
            match pat {
                Term::Const(c) => {
                    if c != gc {
                        return None;
                    }
                }
                Term::Var(v) => match out.get(v) {
                    Some(bound) if bound != gc => return None,
                    Some(_) => {}
                    None => {
                        out.insert(v.clone(), gc.clone());
                    }
                },
            }
        }
        Some(out)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Zero-arity atoms print bare (`maintenance`), matching the parser,
        // which rejects empty parentheses.
        if self.args.is_empty() {
            return write!(f, "{}", self.predicate);
        }
        write!(f, "{}(", self.predicate)?;
        for (i, arg) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{arg}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ground(p: &str, args: &[&str]) -> Atom {
        Atom::fact(p, args.iter().map(|&a| Constant::symbol(a)).collect())
    }

    #[test]
    fn ground_atom_has_no_variables() {
        let a = ground("role", &["bob", "sales_rep"]);
        assert!(a.is_ground());
        assert_eq!(a.variables().count(), 0);
        assert_eq!(a.arity(), 2);
    }

    #[test]
    fn match_ground_binds_variables() {
        let pattern = Atom::new("role", vec![Term::var("U"), Term::symbol("sales_rep")]);
        let fact = ground("role", &["bob", "sales_rep"]);
        let b = pattern.match_ground(&fact, &Bindings::new()).unwrap();
        assert_eq!(b.get("U"), Some(&Constant::symbol("bob")));
    }

    #[test]
    fn match_ground_rejects_conflicting_binding() {
        let pattern = Atom::new("pair", vec![Term::var("X"), Term::var("X")]);
        let ok = ground("pair", &["a", "a"]);
        let bad = ground("pair", &["a", "b"]);
        assert!(pattern.match_ground(&ok, &Bindings::new()).is_some());
        assert!(pattern.match_ground(&bad, &Bindings::new()).is_none());
    }

    #[test]
    fn match_ground_rejects_predicate_and_arity_mismatch() {
        let pattern = Atom::new("role", vec![Term::var("U")]);
        assert!(pattern
            .match_ground(&ground("role", &["bob", "x"]), &Bindings::new())
            .is_none());
        assert!(pattern
            .match_ground(&ground("region", &["bob"]), &Bindings::new())
            .is_none());
    }

    #[test]
    fn substitute_replaces_bound_variables_only() {
        let a = Atom::new("region", vec![Term::var("U"), Term::var("R")]);
        let mut b = Bindings::new();
        b.insert("U".into(), Constant::symbol("bob"));
        let s = a.substitute(&b);
        assert_eq!(s.to_string(), "region(bob, R)");
        assert!(!s.is_ground());
    }

    #[test]
    fn integer_constants_display() {
        let a = Atom::fact("limit", vec![Constant::Int(100)]);
        assert_eq!(a.to_string(), "limit(100)");
    }
}
