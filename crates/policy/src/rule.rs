//! Inference rules.

use crate::error::PolicyError;
use crate::fact::Atom;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A Datalog-style inference rule `head :- body1, ..., bodyk.`
///
/// A rule with an empty body asserts its head unconditionally (the head must
/// then be ground). Rules must be *range-restricted*: every variable in the
/// head occurs somewhere in the body, which guarantees that forward chaining
/// only derives ground facts.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rule {
    head: Atom,
    body: Vec<Atom>,
}

impl Rule {
    /// Creates a rule after checking range restriction.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnboundHeadVariable`] when a head variable does
    /// not occur in the body, and [`PolicyError::NonGroundFact`] when an
    /// empty-bodied rule has a non-ground head.
    pub fn new(head: Atom, body: Vec<Atom>) -> Result<Self, PolicyError> {
        let body_vars: BTreeSet<&str> = body.iter().flat_map(Atom::variables).collect();
        for v in head.variables() {
            if !body_vars.contains(v) {
                return Err(PolicyError::UnboundHeadVariable {
                    variable: v.to_owned(),
                    predicate: head.predicate().to_owned(),
                });
            }
        }
        if body.is_empty() && !head.is_ground() {
            return Err(PolicyError::NonGroundFact {
                predicate: head.predicate().to_owned(),
            });
        }
        Ok(Rule { head, body })
    }

    /// The rule head.
    #[must_use]
    pub fn head(&self) -> &Atom {
        &self.head
    }

    /// The rule body (conjunction of atoms).
    #[must_use]
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// True when the rule is a bare fact (empty body).
    #[must_use]
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, atom) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{atom}")?;
            }
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::{Constant, Term};

    #[test]
    fn range_restriction_is_enforced() {
        let head = Atom::new("grant", vec![Term::var("X")]);
        let err = Rule::new(head, vec![]).unwrap_err();
        assert!(matches!(err, PolicyError::UnboundHeadVariable { .. }));

        let head = Atom::new("grant", vec![Term::var("X")]);
        let body = vec![Atom::new("role", vec![Term::var("Y")])];
        let err = Rule::new(head, body).unwrap_err();
        assert!(matches!(
            err,
            PolicyError::UnboundHeadVariable { ref variable, .. } if variable == "X"
        ));
    }

    #[test]
    fn valid_rule_displays_in_source_syntax() {
        let head = Atom::new(
            "grant",
            vec![Term::symbol("read"), Term::symbol("customers")],
        );
        let body = vec![Atom::new(
            "role",
            vec![Term::var("U"), Term::symbol("sales_rep")],
        )];
        let rule = Rule::new(head, body).unwrap();
        assert_eq!(
            rule.to_string(),
            "grant(read, customers) :- role(U, sales_rep)."
        );
        assert!(!rule.is_fact());
    }

    #[test]
    fn ground_fact_rule_is_accepted() {
        let head = Atom::fact("open", vec![Constant::symbol("lobby")]);
        let rule = Rule::new(head, vec![]).unwrap();
        assert!(rule.is_fact());
        assert_eq!(rule.to_string(), "open(lobby).");
    }
}
