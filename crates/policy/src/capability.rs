//! Server-issued access credentials (capabilities).
//!
//! "Different cloud servers can also issue access credentials that act as
//! capabilities allowing the user to continue submitting queries to other
//! servers during the transaction lifetime" (Section III-A) — Bob's "read
//! credential" in the motivating example. Servers can verify capabilities
//! issued by each other because they share the deployment's capability key
//! ring (one key per server, distributed out of band).

use crate::credential::sign;
use safetx_types::{ServerId, Timestamp, TxnId, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A capability: server `issuer` certifies that `user` satisfied the policy
/// for `action` on `resource` at `issued_at`, within transaction `txn`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessCapability {
    issuer: ServerId,
    user: UserId,
    txn: TxnId,
    action: String,
    resource: String,
    issued_at: Timestamp,
    expires_at: Timestamp,
    signature: u64,
}

impl AccessCapability {
    /// Issues a capability signed with the issuing server's key.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn issue(
        issuer: ServerId,
        issuer_key: u64,
        user: UserId,
        txn: TxnId,
        action: impl Into<String>,
        resource: impl Into<String>,
        issued_at: Timestamp,
        expires_at: Timestamp,
    ) -> Self {
        let mut cap = AccessCapability {
            issuer,
            user,
            txn,
            action: action.into(),
            resource: resource.into(),
            issued_at,
            expires_at,
            signature: 0,
        };
        cap.signature = sign(issuer_key, &cap.canonical_bytes());
        cap
    }

    /// Reassembles a capability from its transported fields, carrying the
    /// original signature unchanged (the wire-decoding counterpart of
    /// [`AccessCapability::issue`]; decoding never validates — a tampered
    /// field fails [`AccessCapability::verify`] later).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn from_parts(
        issuer: ServerId,
        user: UserId,
        txn: TxnId,
        action: String,
        resource: String,
        issued_at: Timestamp,
        expires_at: Timestamp,
        signature: u64,
    ) -> Self {
        AccessCapability {
            issuer,
            user,
            txn,
            action,
            resource,
            issued_at,
            expires_at,
            signature,
        }
    }

    /// The signature tag over the canonical byte encoding.
    #[must_use]
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// The issuing server.
    #[must_use]
    pub fn issuer(&self) -> ServerId {
        self.issuer
    }

    /// The holder.
    #[must_use]
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The transaction the capability was issued within.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The certified action.
    #[must_use]
    pub fn action(&self) -> &str {
        &self.action
    }

    /// The certified resource.
    #[must_use]
    pub fn resource(&self) -> &str {
        &self.resource
    }

    /// When the capability was issued.
    #[must_use]
    pub fn issued_at(&self) -> Timestamp {
        self.issued_at
    }

    /// When the capability lapses.
    #[must_use]
    pub fn expires_at(&self) -> Timestamp {
        self.expires_at
    }

    fn canonical_bytes(&self) -> Vec<u8> {
        format!(
            "cap|{}|{}|{}|{}|{}|{}|{}",
            self.issuer,
            self.user,
            self.txn,
            self.action,
            self.resource,
            self.issued_at.as_micros(),
            self.expires_at.as_micros()
        )
        .into_bytes()
    }

    /// Verifies the signature under the issuer's key and the validity window
    /// at instant `at`.
    #[must_use]
    pub fn verify(&self, issuer_key: u64, at: Timestamp) -> bool {
        sign(issuer_key, &self.canonical_bytes()) == self.signature
            && self.issued_at <= at
            && at < self.expires_at
    }
}

impl fmt::Display for AccessCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "capability: {} may {}({}) per {} (txn {}, until {})",
            self.user, self.action, self.resource, self.issuer, self.txn, self.expires_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(key: u64) -> AccessCapability {
        AccessCapability::issue(
            ServerId::new(2),
            key,
            UserId::new(1),
            TxnId::new(9),
            "read",
            "customers",
            Timestamp::from_millis(10),
            Timestamp::from_millis(60),
        )
    }

    #[test]
    fn verifies_within_window_under_correct_key() {
        let c = cap(0x51);
        assert!(c.verify(0x51, Timestamp::from_millis(30)));
    }

    #[test]
    fn rejects_wrong_key() {
        let c = cap(0x51);
        assert!(!c.verify(0x52, Timestamp::from_millis(30)));
    }

    #[test]
    fn rejects_outside_window() {
        let c = cap(0x51);
        assert!(!c.verify(0x51, Timestamp::from_millis(9)));
        assert!(!c.verify(0x51, Timestamp::from_millis(60)));
    }

    #[test]
    fn accessors_expose_the_grant() {
        let c = cap(1);
        assert_eq!(c.action(), "read");
        assert_eq!(c.resource(), "customers");
        assert_eq!(c.issuer(), ServerId::new(2));
        assert_eq!(c.txn(), TxnId::new(9));
        assert!(c.to_string().contains("read(customers)"));
    }
}
