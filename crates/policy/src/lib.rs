//! Authorization substrate: credentials, certificate authorities, versioned
//! Datalog-style policies and proofs of authorization.
//!
//! This crate implements Section III of *Enforcing Policy and Data
//! Consistency of Cloud Transactions* (ICDCS 2011):
//!
//! * [`Credential`]s are certified statements about a user, issued by a
//!   [`CertificateAuthority`]; they are **syntactically** valid when well
//!   formed, correctly signed and within their `[α(c), ω(c)]` window, and
//!   **semantically** valid when an online status check confirms they were
//!   never revoked up to the evaluation instant.
//! * A [`Policy`] is a versioned set of inference [`Rule`]s owned by an
//!   administrative domain `A`, exactly the paper's mapping
//!   `P : S × 2^D → 2^R × A × N`.
//! * A [`ProofOfAuthorization`] records `f = ⟨q, s, P(m(q)), t, C⟩`; the
//!   paper's predicate `eval(f, t)` is [`evaluate_proof`].
//!
//! # Examples
//!
//! ```
//! use safetx_policy::{PolicyBuilder, RuleSet};
//! use safetx_types::{AdminDomain, PolicyId};
//!
//! # fn main() -> Result<(), safetx_policy::PolicyError> {
//! let rules: RuleSet = "grant(read, customers) :- role(U, sales_rep).".parse()?;
//! let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
//!     .rules(rules)
//!     .build();
//! assert_eq!(policy.version().get(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ca;
mod capability;
mod credential;
mod engine;
mod error;
mod fact;
mod parser;
mod policy;
mod proof;
mod rule;

pub use ca::{CaRegistry, CertificateAuthority, CredentialStatus, StatusOracle};
pub use capability::AccessCapability;
pub use credential::{Credential, CredentialBuilder, SyntacticCheck};
pub use engine::{Engine, FactBase};
pub use error::PolicyError;
pub use fact::{Atom, Bindings, Constant, Term};
pub use policy::{Policy, PolicyBuilder, PolicyStore, RuleSet};
pub use proof::{
    credential_fact_base, evaluate_proof, AccessRequest, CredentialCheck, ProofContext,
    ProofOfAuthorization, ProofOutcome,
};
pub use rule::Rule;
