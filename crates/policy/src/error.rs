//! Error type for the policy crate.

use std::fmt;

/// Errors produced while parsing or evaluating policies and credentials.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyError {
    /// The rule or fact text could not be parsed.
    Parse {
        /// Byte offset of the failure within the input.
        offset: usize,
        /// Human-readable description of what was expected.
        message: String,
    },
    /// A rule contains a head variable that never appears in its body, so the
    /// rule could derive infinitely many facts (it is not range-restricted).
    UnboundHeadVariable {
        /// The offending variable name.
        variable: String,
        /// The predicate of the rule head.
        predicate: String,
    },
    /// A fact (ground atom) was required but the atom contains variables.
    NonGroundFact {
        /// The predicate of the offending atom.
        predicate: String,
    },
    /// The inference engine exceeded its derivation budget.
    DerivationBudgetExceeded {
        /// Maximum number of derived facts allowed.
        budget: usize,
    },
    /// A referenced policy version does not exist in the store.
    UnknownPolicyVersion {
        /// The policy that was looked up.
        policy: safetx_types::PolicyId,
        /// The version that was requested.
        version: safetx_types::PolicyVersion,
    },
    /// A referenced policy does not exist in the store.
    UnknownPolicy {
        /// The policy that was looked up.
        policy: safetx_types::PolicyId,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            PolicyError::UnboundHeadVariable {
                variable,
                predicate,
            } => write!(
                f,
                "rule for `{predicate}` is not range-restricted: head variable `{variable}` \
                 does not occur in the body"
            ),
            PolicyError::NonGroundFact { predicate } => {
                write!(f, "fact for `{predicate}` contains variables")
            }
            PolicyError::DerivationBudgetExceeded { budget } => {
                write!(
                    f,
                    "inference exceeded the derivation budget of {budget} facts"
                )
            }
            PolicyError::UnknownPolicyVersion { policy, version } => {
                write!(f, "policy {policy} has no version {version}")
            }
            PolicyError::UnknownPolicy { policy } => {
                write!(f, "unknown policy {policy}")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let err = PolicyError::Parse {
            offset: 3,
            message: "expected `:-`".into(),
        };
        let text = err.to_string();
        assert!(text.starts_with("parse error at byte 3"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<PolicyError>();
    }
}
