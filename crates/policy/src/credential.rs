//! Certified credentials.
//!
//! A credential `c` is a signed, time-bounded statement about a subject —
//! e.g. "CA 0 asserts `role(bob, sales_rep)` from α(c) until ω(c)". Following
//! the paper (and Lee & Winslett's definitions it cites), a credential is
//! **syntactically** valid at time `t` when it is well formed, carries a
//! valid signature, `α(c)` has passed and `ω(c)` has not; it is
//! **semantically** valid when the issuing CA's online status check reports
//! it unrevoked through `t`.

use crate::fact::Atom;
use safetx_types::{CaId, CredentialId, Timestamp, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A certified credential issued by a certificate authority.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Credential {
    id: CredentialId,
    subject: UserId,
    statement: Atom,
    issuer: CaId,
    issued_at: Timestamp,
    expires_at: Timestamp,
    signature: u64,
}

impl Credential {
    /// The credential's unique identifier.
    #[must_use]
    pub fn id(&self) -> CredentialId {
        self.id
    }

    /// The subject (principal) the statement is about.
    #[must_use]
    pub fn subject(&self) -> UserId {
        self.subject
    }

    /// The certified ground statement, e.g. `role(bob, sales_rep)`.
    #[must_use]
    pub fn statement(&self) -> &Atom {
        &self.statement
    }

    /// The issuing certificate authority.
    #[must_use]
    pub fn issuer(&self) -> CaId {
        self.issuer
    }

    /// Issue time `α(c)`.
    #[must_use]
    pub fn issued_at(&self) -> Timestamp {
        self.issued_at
    }

    /// Expiration time `ω(c)`.
    #[must_use]
    pub fn expires_at(&self) -> Timestamp {
        self.expires_at
    }

    /// The signature tag over the canonical byte encoding.
    #[must_use]
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// Canonical byte encoding covered by the signature.
    #[must_use]
    pub fn canonical_bytes(&self) -> Vec<u8> {
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.id,
            self.subject,
            self.statement,
            self.issuer,
            self.issued_at.as_micros(),
            self.expires_at.as_micros()
        )
        .into_bytes()
    }

    /// Checks the paper's four syntactic conditions at time `t`:
    /// (i) properly formatted, (ii) valid signature under `key`,
    /// (iii) `α(c) ≤ t`, (iv) `t < ω(c)`.
    #[must_use]
    pub fn syntactic_check(&self, key: u64, at: Timestamp) -> SyntacticCheck {
        if !self.statement.is_ground() || self.statement.predicate().is_empty() {
            return SyntacticCheck::Malformed;
        }
        if self.expires_at <= self.issued_at {
            return SyntacticCheck::Malformed;
        }
        if sign(key, &self.canonical_bytes()) != self.signature {
            return SyntacticCheck::BadSignature;
        }
        if at < self.issued_at {
            return SyntacticCheck::NotYetValid;
        }
        if at >= self.expires_at {
            return SyntacticCheck::Expired;
        }
        SyntacticCheck::Valid
    }

    /// Reassembles a credential from its transported fields, carrying the
    /// original signature unchanged.
    ///
    /// This is the wire-decoding counterpart of
    /// [`CredentialBuilder::sign`]: a receiver cannot re-sign (it does not
    /// hold the CA's key), so it reconstructs the exact bytes the issuer
    /// signed. A tampered field simply fails [`Credential::syntactic_check`]
    /// later — decoding never validates.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn from_parts(
        id: CredentialId,
        subject: UserId,
        statement: Atom,
        issuer: CaId,
        issued_at: Timestamp,
        expires_at: Timestamp,
        signature: u64,
    ) -> Credential {
        Credential {
            id,
            subject,
            statement,
            issuer,
            issued_at,
            expires_at,
            signature,
        }
    }

    /// Returns a copy with a tampered statement (signature left unchanged);
    /// useful in tests and failure-injection scenarios.
    #[must_use]
    pub fn with_forged_statement(&self, statement: Atom) -> Credential {
        Credential {
            statement,
            ..self.clone()
        }
    }
}

impl fmt::Display for Credential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} asserts {} for {} during [{}, {})",
            self.id, self.issuer, self.statement, self.subject, self.issued_at, self.expires_at
        )
    }
}

/// Outcome of the syntactic validity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntacticCheck {
    /// All four conditions hold.
    Valid,
    /// The credential is not properly formatted.
    Malformed,
    /// The signature does not verify under the issuer's key.
    BadSignature,
    /// `α(c)` has not yet passed.
    NotYetValid,
    /// `ω(c)` has passed.
    Expired,
}

impl SyntacticCheck {
    /// True only for [`SyntacticCheck::Valid`].
    #[must_use]
    pub fn is_valid(self) -> bool {
        self == SyntacticCheck::Valid
    }
}

impl fmt::Display for SyntacticCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            SyntacticCheck::Valid => "valid",
            SyntacticCheck::Malformed => "malformed",
            SyntacticCheck::BadSignature => "bad signature",
            SyntacticCheck::NotYetValid => "not yet valid",
            SyntacticCheck::Expired => "expired",
        };
        write!(f, "{text}")
    }
}

/// Builder used by certificate authorities to assemble and sign credentials.
///
/// Not exported for direct use by applications: obtain credentials from
/// [`CertificateAuthority::issue`](crate::CertificateAuthority::issue).
#[derive(Debug)]
pub struct CredentialBuilder {
    id: CredentialId,
    subject: UserId,
    statement: Atom,
    issuer: CaId,
    issued_at: Timestamp,
    expires_at: Timestamp,
}

impl CredentialBuilder {
    /// Starts a builder with the mandatory fields.
    #[must_use]
    pub fn new(id: CredentialId, subject: UserId, statement: Atom, issuer: CaId) -> Self {
        CredentialBuilder {
            id,
            subject,
            statement,
            issuer,
            issued_at: Timestamp::ZERO,
            expires_at: Timestamp::MAX,
        }
    }

    /// Sets the issue time `α(c)`.
    #[must_use]
    pub fn issued_at(mut self, t: Timestamp) -> Self {
        self.issued_at = t;
        self
    }

    /// Sets the expiration time `ω(c)`.
    #[must_use]
    pub fn expires_at(mut self, t: Timestamp) -> Self {
        self.expires_at = t;
        self
    }

    /// Signs with `key` and produces the credential.
    #[must_use]
    pub fn sign(self, key: u64) -> Credential {
        let mut cred = Credential {
            id: self.id,
            subject: self.subject,
            statement: self.statement,
            issuer: self.issuer,
            issued_at: self.issued_at,
            expires_at: self.expires_at,
            signature: 0,
        };
        cred.signature = sign(key, &cred.canonical_bytes());
        cred
    }
}

/// Keyed tag over `bytes` — an FNV-1a-style mix, *not* a cryptographic MAC.
///
/// The simulation only needs signatures that are deterministic, key-dependent
/// and broken by any byte change; see DESIGN.md §5 (Substitutions).
#[must_use]
pub fn sign(key: u64, bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ key.rotate_left(17);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= key;
    h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^ (h >> 29)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Constant;

    fn statement() -> Atom {
        Atom::fact(
            "role",
            vec![Constant::symbol("bob"), Constant::symbol("sales_rep")],
        )
    }

    fn sample(key: u64) -> Credential {
        CredentialBuilder::new(
            CredentialId::new(1),
            UserId::new(7),
            statement(),
            CaId::new(0),
        )
        .issued_at(Timestamp::from_millis(10))
        .expires_at(Timestamp::from_millis(100))
        .sign(key)
    }

    #[test]
    fn valid_within_window() {
        let c = sample(42);
        assert_eq!(
            c.syntactic_check(42, Timestamp::from_millis(50)),
            SyntacticCheck::Valid
        );
    }

    #[test]
    fn invalid_before_alpha_and_after_omega() {
        let c = sample(42);
        assert_eq!(
            c.syntactic_check(42, Timestamp::from_millis(5)),
            SyntacticCheck::NotYetValid
        );
        assert_eq!(
            c.syntactic_check(42, Timestamp::from_millis(100)),
            SyntacticCheck::Expired,
            "omega itself is already expired (t < omega required)"
        );
    }

    #[test]
    fn wrong_key_fails_signature() {
        let c = sample(42);
        assert_eq!(
            c.syntactic_check(43, Timestamp::from_millis(50)),
            SyntacticCheck::BadSignature
        );
    }

    #[test]
    fn tampered_statement_fails_signature() {
        let c = sample(42);
        let forged = c.with_forged_statement(Atom::fact(
            "role",
            vec![Constant::symbol("bob"), Constant::symbol("admin")],
        ));
        assert_eq!(
            forged.syntactic_check(42, Timestamp::from_millis(50)),
            SyntacticCheck::BadSignature
        );
    }

    #[test]
    fn empty_window_is_malformed() {
        let c = CredentialBuilder::new(
            CredentialId::new(2),
            UserId::new(7),
            statement(),
            CaId::new(0),
        )
        .issued_at(Timestamp::from_millis(10))
        .expires_at(Timestamp::from_millis(10))
        .sign(1);
        assert_eq!(
            c.syntactic_check(1, Timestamp::from_millis(10)),
            SyntacticCheck::Malformed
        );
    }

    #[test]
    fn signatures_differ_across_keys_and_bytes() {
        assert_ne!(sign(1, b"abc"), sign(2, b"abc"));
        assert_ne!(sign(1, b"abc"), sign(1, b"abd"));
        assert_eq!(sign(9, b"xyz"), sign(9, b"xyz"));
    }

    #[test]
    fn display_mentions_issuer_and_window() {
        let c = sample(42);
        let text = c.to_string();
        assert!(text.contains("CA0"));
        assert!(text.contains("role(bob, sales_rep)"));
    }
}
