//! Text parser for the rule language.
//!
//! Grammar (whitespace and `%`/`#` line comments allowed anywhere between
//! tokens):
//!
//! ```text
//! program := rule*
//! rule    := atom (":-" atom ("," atom)*)? "."
//! atom    := ident ("(" term ("," term)* ")")?
//! term    := VARIABLE | SYMBOL | INTEGER
//! ```
//!
//! Variables start with an uppercase letter or `_`; symbols with a lowercase
//! letter. Integers are optionally signed decimal.

use crate::error::PolicyError;
use crate::fact::{Atom, Constant, Term};
use crate::rule::Rule;

/// Parses a full program: zero or more rules.
///
/// # Errors
///
/// Returns [`PolicyError::Parse`] on malformed input and the rule-validity
/// errors of [`Rule::new`] on range-restriction violations.
pub fn parse_rules(input: &str) -> Result<Vec<Rule>, PolicyError> {
    let mut p = Parser::new(input);
    let mut rules = Vec::new();
    p.skip_trivia();
    while !p.at_end() {
        rules.push(p.rule()?);
        p.skip_trivia();
    }
    Ok(rules)
}

/// Parses a single ground atom (a fact) such as `role(bob, sales_rep)`.
///
/// A trailing `.` is permitted but not required.
///
/// # Errors
///
/// Returns [`PolicyError::Parse`] on malformed input and
/// [`PolicyError::NonGroundFact`] when the atom contains variables.
pub fn parse_fact(input: &str) -> Result<Atom, PolicyError> {
    let mut p = Parser::new(input);
    p.skip_trivia();
    let atom = p.atom()?;
    p.skip_trivia();
    if p.peek() == Some('.') {
        p.bump();
        p.skip_trivia();
    }
    if !p.at_end() {
        return Err(p.error("unexpected trailing input"));
    }
    if !atom.is_ground() {
        return Err(PolicyError::NonGroundFact {
            predicate: atom.predicate().to_owned(),
        });
    }
    Ok(atom)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn error(&self, message: impl Into<String>) -> PolicyError {
        PolicyError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('%') | Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), PolicyError> {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}`")))
        }
    }

    fn ident(&mut self) -> Result<String, PolicyError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                self.bump();
            }
            _ => return Err(self.error("expected identifier")),
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    fn term(&mut self) -> Result<Term, PolicyError> {
        match self.peek() {
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = self.pos;
                if c == '-' {
                    self.bump();
                    if !matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                        return Err(self.error("expected digit after `-`"));
                    }
                }
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    self.bump();
                }
                let text = &self.input[start..self.pos];
                let value: i64 = text
                    .parse()
                    .map_err(|_| self.error("integer literal out of range"))?;
                Ok(Term::Const(Constant::Int(value)))
            }
            Some(c) if c.is_ascii_uppercase() || c == '_' => Ok(Term::Var(self.ident()?)),
            Some(c) if c.is_ascii_lowercase() => Ok(Term::Const(Constant::Symbol(self.ident()?))),
            _ => Err(self.error("expected term")),
        }
    }

    fn atom(&mut self) -> Result<Atom, PolicyError> {
        let c = self
            .peek()
            .ok_or_else(|| self.error("expected predicate"))?;
        if !c.is_ascii_lowercase() {
            return Err(self.error("predicate must start with a lowercase letter"));
        }
        let predicate = self.ident()?;
        self.skip_trivia();
        let mut args = Vec::new();
        if self.peek() == Some('(') {
            self.bump();
            self.skip_trivia();
            if self.peek() == Some(')') {
                return Err(self.error("empty argument list; omit the parentheses instead"));
            }
            loop {
                args.push(self.term()?);
                self.skip_trivia();
                match self.peek() {
                    Some(',') => {
                        self.bump();
                        self.skip_trivia();
                    }
                    Some(')') => {
                        self.bump();
                        break;
                    }
                    _ => return Err(self.error("expected `,` or `)`")),
                }
            }
        }
        Ok(Atom::new(predicate, args))
    }

    fn rule(&mut self) -> Result<Rule, PolicyError> {
        let head = self.atom()?;
        self.skip_trivia();
        let mut body = Vec::new();
        if self.rest().starts_with(":-") {
            self.expect(":-")?;
            self.skip_trivia();
            loop {
                body.push(self.atom()?);
                self.skip_trivia();
                if self.peek() == Some(',') {
                    self.bump();
                    self.skip_trivia();
                } else {
                    break;
                }
            }
        }
        self.expect(".")?;
        Rule::new(head, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rule_with_body() {
        let rules = parse_rules(
            "grant(read, customers) :- role(U, sales_rep), region(U, R), located(U, R).",
        )
        .unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].body().len(), 3);
        assert_eq!(
            rules[0].to_string(),
            "grant(read, customers) :- role(U, sales_rep), region(U, R), located(U, R)."
        );
    }

    #[test]
    fn parses_multiple_rules_with_comments() {
        let src = "% customers table\n\
                   grant(read, customers) :- role(U, sales_rep).\n\
                   # inventory table\n\
                   grant(write, inventory) :- role(U, manager).\n";
        let rules = parse_rules(src).unwrap();
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn parses_zero_arity_and_integers() {
        let rules = parse_rules("maintenance. grant(read, logs) :- clearance(U, 3).").unwrap();
        assert_eq!(rules.len(), 2);
        assert!(rules[0].is_fact());
        assert_eq!(rules[1].body()[0].to_string(), "clearance(U, 3)");
    }

    #[test]
    fn parses_negative_integers() {
        let atom = parse_fact("offset(-7)").unwrap();
        assert_eq!(atom.to_string(), "offset(-7)");
    }

    #[test]
    fn rejects_missing_dot() {
        let err = parse_rules("grant(read, x) :- role(U, r)").unwrap_err();
        assert!(matches!(err, PolicyError::Parse { .. }));
    }

    #[test]
    fn rejects_uppercase_predicate() {
        let err = parse_rules("Grant(read, x).").unwrap_err();
        assert!(matches!(err, PolicyError::Parse { .. }));
    }

    #[test]
    fn rejects_empty_argument_list() {
        let err = parse_rules("grant().").unwrap_err();
        assert!(matches!(err, PolicyError::Parse { .. }));
    }

    #[test]
    fn fact_parser_rejects_variables_and_trailing_garbage() {
        assert!(matches!(
            parse_fact("role(U, sales_rep)").unwrap_err(),
            PolicyError::NonGroundFact { .. }
        ));
        assert!(matches!(
            parse_fact("role(bob, rep) extra").unwrap_err(),
            PolicyError::Parse { .. }
        ));
    }

    #[test]
    fn fact_parser_accepts_optional_dot() {
        assert_eq!(
            parse_fact("role(bob, sales_rep).").unwrap(),
            parse_fact("role(bob, sales_rep)").unwrap()
        );
    }

    #[test]
    fn range_restriction_violation_reported_from_parser() {
        let err = parse_rules("grant(X).").unwrap_err();
        assert!(matches!(err, PolicyError::UnboundHeadVariable { .. }));
    }

    #[test]
    fn round_trip_display_then_parse() {
        let src = "grant(read, customers) :- role(U, sales_rep), clearance(U, 2).";
        let rules = parse_rules(src).unwrap();
        let printed = rules[0].to_string();
        let reparsed = parse_rules(&printed).unwrap();
        assert_eq!(rules, reparsed);
    }
}
