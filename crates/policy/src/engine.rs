//! The inference engine: semi-naive forward chaining over ground facts.
//!
//! The paper's validity condition (2) — "the inference rules are satisfiable"
//! — is decided here: given a policy's rules and the facts contributed by a
//! user's credentials, the engine computes the least fixpoint and checks
//! whether the requested `grant(...)` goal is derivable.

use crate::error::PolicyError;
use crate::fact::{Atom, Bindings};
use crate::rule::Rule;
use std::collections::BTreeSet;

/// Default cap on the number of derived facts, protecting against
/// pathological rule sets.
pub const DEFAULT_DERIVATION_BUDGET: usize = 100_000;

/// A set of ground facts.
///
/// # Examples
///
/// ```
/// use safetx_policy::FactBase;
///
/// # fn main() -> Result<(), safetx_policy::PolicyError> {
/// let mut facts = FactBase::new();
/// facts.insert_text("role(bob, sales_rep)")?;
/// assert_eq!(facts.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FactBase {
    facts: BTreeSet<Atom>,
}

impl FactBase {
    /// Creates an empty fact base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a ground atom. Returns `true` when it was not already present.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::NonGroundFact`] when the atom has variables.
    pub fn insert(&mut self, atom: Atom) -> Result<bool, PolicyError> {
        if !atom.is_ground() {
            return Err(PolicyError::NonGroundFact {
                predicate: atom.predicate().to_owned(),
            });
        }
        Ok(self.facts.insert(atom))
    }

    /// Parses and inserts a fact written in rule-language syntax.
    ///
    /// # Errors
    ///
    /// Propagates parse and groundness errors.
    pub fn insert_text(&mut self, text: &str) -> Result<bool, PolicyError> {
        let atom = crate::parser::parse_fact(text)?;
        self.insert(atom)
    }

    /// True when the ground atom is present.
    #[must_use]
    pub fn contains(&self, atom: &Atom) -> bool {
        self.facts.contains(atom)
    }

    /// Number of facts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when no facts are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterates over all facts in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Atom> {
        self.facts.iter()
    }
}

impl Extend<Atom> for FactBase {
    fn extend<I: IntoIterator<Item = Atom>>(&mut self, iter: I) {
        for atom in iter {
            // Non-ground atoms are silently rejected by Extend; use `insert`
            // for error reporting.
            if atom.is_ground() {
                self.facts.insert(atom);
            }
        }
    }
}

impl FromIterator<Atom> for FactBase {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        let mut fb = FactBase::new();
        fb.extend(iter);
        fb
    }
}

/// The forward-chaining engine.
#[derive(Debug, Clone)]
pub struct Engine {
    budget: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            budget: DEFAULT_DERIVATION_BUDGET,
        }
    }
}

impl Engine {
    /// Creates an engine with the default derivation budget.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine with a custom cap on derived facts.
    #[must_use]
    pub fn with_budget(budget: usize) -> Self {
        Engine { budget }
    }

    /// Computes the least fixpoint of `rules` over `base` and returns the
    /// saturated fact base.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::DerivationBudgetExceeded`] when more than the
    /// configured number of facts would be derived.
    pub fn saturate(&self, rules: &[Rule], base: &FactBase) -> Result<FactBase, PolicyError> {
        let mut all = base.clone();
        // Seed with bare-fact rules.
        for rule in rules.iter().filter(|r| r.is_fact()) {
            all.insert(rule.head().clone())?;
        }
        // Semi-naive iteration: only join against facts derived in the last
        // round (delta), re-deriving nothing.
        let mut delta: BTreeSet<Atom> = all.facts.clone();
        while !delta.is_empty() {
            let mut next_delta: BTreeSet<Atom> = BTreeSet::new();
            for rule in rules.iter().filter(|r| !r.is_fact()) {
                self.fire(rule, &all, &delta, &mut next_delta)?;
            }
            next_delta.retain(|a| !all.facts.contains(a));
            for atom in &next_delta {
                all.facts.insert(atom.clone());
                if all.facts.len() > self.budget {
                    return Err(PolicyError::DerivationBudgetExceeded {
                        budget: self.budget,
                    });
                }
            }
            delta = next_delta;
        }
        Ok(all)
    }

    /// True when `goal` (which may contain variables) is satisfiable from
    /// `rules` and `base`.
    ///
    /// # Errors
    ///
    /// Propagates [`PolicyError::DerivationBudgetExceeded`].
    pub fn prove(&self, rules: &[Rule], base: &FactBase, goal: &Atom) -> Result<bool, PolicyError> {
        let saturated = self.saturate(rules, base)?;
        if goal.is_ground() {
            return Ok(saturated.contains(goal));
        }
        let provable = saturated
            .iter()
            .any(|f| goal.match_ground(f, &Bindings::new()).is_some());
        Ok(provable)
    }

    /// Fires one rule against the current database, requiring at least one
    /// body atom to match within `delta` (semi-naive restriction).
    fn fire(
        &self,
        rule: &Rule,
        all: &FactBase,
        delta: &BTreeSet<Atom>,
        out: &mut BTreeSet<Atom>,
    ) -> Result<(), PolicyError> {
        let body = rule.body();
        // For each position that is forced to match the delta:
        for delta_pos in 0..body.len() {
            self.join(
                rule,
                body,
                0,
                delta_pos,
                false,
                all,
                delta,
                &Bindings::new(),
                out,
            )?;
        }
        Ok(())
    }

    /// Recursive nested-loop join over the body atoms.
    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        rule: &Rule,
        body: &[Atom],
        index: usize,
        delta_pos: usize,
        _used_delta: bool,
        all: &FactBase,
        delta: &BTreeSet<Atom>,
        bindings: &Bindings,
        out: &mut BTreeSet<Atom>,
    ) -> Result<(), PolicyError> {
        if index == body.len() {
            let derived = rule.head().substitute(bindings);
            debug_assert!(
                derived.is_ground(),
                "range restriction guarantees ground heads"
            );
            out.insert(derived);
            return Ok(());
        }
        let pattern = body[index].substitute(bindings);
        let candidates: Box<dyn Iterator<Item = &Atom>> = if index == delta_pos {
            Box::new(delta.iter())
        } else {
            Box::new(all.iter())
        };
        for fact in candidates {
            if let Some(next) = pattern.match_ground(fact, bindings) {
                self.join(
                    rule,
                    body,
                    index + 1,
                    delta_pos,
                    true,
                    all,
                    delta,
                    &next,
                    out,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_fact, parse_rules};

    fn base(facts: &[&str]) -> FactBase {
        let mut fb = FactBase::new();
        for f in facts {
            fb.insert(parse_fact(f).unwrap()).unwrap();
        }
        fb
    }

    #[test]
    fn direct_rule_fires() {
        let rules = parse_rules("grant(read, customers) :- role(U, sales_rep).").unwrap();
        let fb = base(&["role(bob, sales_rep)"]);
        let goal = parse_fact("grant(read, customers)").unwrap();
        assert!(Engine::new().prove(&rules, &fb, &goal).unwrap());
    }

    #[test]
    fn join_across_shared_variables() {
        let rules = parse_rules(
            "grant(read, customers) :- role(U, sales_rep), region(U, R), located(U, R).",
        )
        .unwrap();
        let engine = Engine::new();
        let goal = parse_fact("grant(read, customers)").unwrap();

        let matching = base(&[
            "role(bob, sales_rep)",
            "region(bob, east)",
            "located(bob, east)",
        ]);
        assert!(engine.prove(&rules, &matching, &goal).unwrap());

        // Region mismatch: bob assigned east, located west.
        let mismatched = base(&[
            "role(bob, sales_rep)",
            "region(bob, east)",
            "located(bob, west)",
        ]);
        assert!(!engine.prove(&rules, &mismatched, &goal).unwrap());
    }

    #[test]
    fn transitive_closure_terminates() {
        let rules = parse_rules(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Z) :- reach(X, Y), edge(Y, Z).",
        )
        .unwrap();
        let fb = base(&["edge(a, b)", "edge(b, c)", "edge(c, a)"]);
        let engine = Engine::new();
        let sat = engine.saturate(&rules, &fb).unwrap();
        // 3 edges + 9 reachability facts (complete digraph closure on a cycle).
        assert_eq!(sat.len(), 12);
        assert!(engine
            .prove(&rules, &fb, &parse_fact("reach(a, a)").unwrap())
            .unwrap());
    }

    #[test]
    fn bare_fact_rules_seed_the_database() {
        let rules = parse_rules("maintenance. grant(read, logs) :- maintenance.").unwrap();
        let engine = Engine::new();
        assert!(engine
            .prove(
                &rules,
                &FactBase::new(),
                &parse_fact("grant(read, logs)").unwrap()
            )
            .unwrap());
    }

    #[test]
    fn non_ground_goal_matches_any_instance() {
        let rules = parse_rules("grant(read, T) :- table(T).").unwrap();
        let fb = base(&["table(customers)", "table(inventory)"]);
        let goal = Atom::new(
            "grant",
            vec![
                crate::fact::Term::symbol("read"),
                crate::fact::Term::var("T"),
            ],
        );
        assert!(Engine::new().prove(&rules, &fb, &goal).unwrap());
    }

    #[test]
    fn unprovable_goal_is_false_not_error() {
        let rules = parse_rules("grant(read, x) :- role(U, admin).").unwrap();
        let fb = base(&["role(bob, guest)"]);
        assert!(!Engine::new()
            .prove(&rules, &fb, &parse_fact("grant(read, x)").unwrap())
            .unwrap());
    }

    #[test]
    fn budget_exceeded_is_reported() {
        // pair/2 over n symbols derives n^2 facts; budget 4 with 3 symbols
        // (9 pairs) must trip.
        let rules = parse_rules("pair(X, Y) :- sym(X), sym(Y).").unwrap();
        let fb = base(&["sym(a)", "sym(b)", "sym(c)"]);
        let err = Engine::with_budget(4).saturate(&rules, &fb).unwrap_err();
        assert!(matches!(
            err,
            PolicyError::DerivationBudgetExceeded { budget: 4 }
        ));
    }

    #[test]
    fn saturation_is_monotone_in_facts() {
        let rules = parse_rules("grant(read, t) :- role(U, rep), active(U).").unwrap();
        let engine = Engine::new();
        let goal = parse_fact("grant(read, t)").unwrap();
        let small = base(&["role(bob, rep)"]);
        let mut big = small.clone();
        big.insert(parse_fact("active(bob)").unwrap()).unwrap();
        assert!(!engine.prove(&rules, &small, &goal).unwrap());
        assert!(engine.prove(&rules, &big, &goal).unwrap());
    }
}
