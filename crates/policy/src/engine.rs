//! The inference engine: semi-naive forward chaining over ground facts.
//!
//! The paper's validity condition (2) — "the inference rules are satisfiable"
//! — is decided here: given a policy's rules and the facts contributed by a
//! user's credentials, the engine computes the least fixpoint and checks
//! whether the requested `grant(...)` goal is derivable.
//!
//! Two layers keep the hot path cheap:
//!
//! * [`FactBase`] stores atoms grouped by predicate and arity, so the join
//!   in [`Engine::saturate`] scans only atoms that could possibly unify
//!   with a body pattern instead of the whole database.
//! * [`Engine::prove`] memoizes recent saturations: the Continuous scheme
//!   re-proves the same `(rules, fact base)` pair `u(u+1)/2` times per
//!   transaction, and every repeat reduces to a goal lookup.

use crate::error::PolicyError;
use crate::fact::{Atom, Bindings};
use crate::rule::Rule;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Mutex;

/// Default cap on the number of derived facts, protecting against
/// pathological rule sets.
pub const DEFAULT_DERIVATION_BUDGET: usize = 100_000;

/// How many recent saturations [`Engine::prove`] keeps. A server evaluates
/// proofs for a handful of concurrently active `(policy, user)` pairs at a
/// time; entries are small (the saturated bases of authorization policies).
const SATURATION_MEMO_CAPACITY: usize = 16;

/// A set of ground facts, indexed by predicate name and arity.
///
/// # Examples
///
/// ```
/// use safetx_policy::FactBase;
///
/// # fn main() -> Result<(), safetx_policy::PolicyError> {
/// let mut facts = FactBase::new();
/// facts.insert_text("role(bob, sales_rep)")?;
/// assert_eq!(facts.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FactBase {
    // Invariant: no empty arity map and no empty atom set is ever stored,
    // so the derived `PartialEq` is exactly content equality.
    groups: BTreeMap<String, BTreeMap<usize, BTreeSet<Atom>>>,
    len: usize,
}

impl FactBase {
    /// Creates an empty fact base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a ground atom. Returns `true` when it was not already present.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::NonGroundFact`] when the atom has variables.
    pub fn insert(&mut self, atom: Atom) -> Result<bool, PolicyError> {
        if !atom.is_ground() {
            return Err(PolicyError::NonGroundFact {
                predicate: atom.predicate().to_owned(),
            });
        }
        Ok(self.insert_ground(atom))
    }

    /// Inserts an atom already known to be ground.
    fn insert_ground(&mut self, atom: Atom) -> bool {
        let inserted = self
            .groups
            .entry(atom.predicate().to_owned())
            .or_default()
            .entry(atom.arity())
            .or_default()
            .insert(atom);
        if inserted {
            self.len += 1;
        }
        inserted
    }

    /// Parses and inserts a fact written in rule-language syntax.
    ///
    /// # Errors
    ///
    /// Propagates parse and groundness errors.
    pub fn insert_text(&mut self, text: &str) -> Result<bool, PolicyError> {
        let atom = crate::parser::parse_fact(text)?;
        self.insert(atom)
    }

    /// True when the ground atom is present.
    #[must_use]
    pub fn contains(&self, atom: &Atom) -> bool {
        self.groups
            .get(atom.predicate())
            .and_then(|arities| arities.get(&atom.arity()))
            .is_some_and(|set| set.contains(atom))
    }

    /// Number of facts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no facts are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over all facts in deterministic order (predicate, then
    /// arity, then argument order).
    pub fn iter(&self) -> impl Iterator<Item = &Atom> {
        self.groups
            .values()
            .flat_map(BTreeMap::values)
            .flat_map(BTreeSet::iter)
    }

    /// Iterates over the atoms that could unify with a pattern of the given
    /// predicate and arity — the index probe used by the join.
    pub fn candidates(&self, predicate: &str, arity: usize) -> impl Iterator<Item = &Atom> {
        self.groups
            .get(predicate)
            .and_then(|arities| arities.get(&arity))
            .into_iter()
            .flat_map(BTreeSet::iter)
    }
}

impl Extend<Atom> for FactBase {
    fn extend<I: IntoIterator<Item = Atom>>(&mut self, iter: I) {
        for atom in iter {
            // Non-ground atoms are silently rejected by Extend; use `insert`
            // for error reporting.
            if atom.is_ground() {
                self.insert_ground(atom);
            }
        }
    }
}

impl FromIterator<Atom> for FactBase {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        let mut fb = FactBase::new();
        fb.extend(iter);
        fb
    }
}

/// One remembered saturation: the inputs by value (needed to validate a
/// probe) and the resulting fixpoint.
#[derive(Debug)]
struct MemoEntry {
    rules: Vec<Rule>,
    base: FactBase,
    saturated: FactBase,
}

/// Bounded MRU memo of recent saturations plus hit accounting.
#[derive(Debug, Default)]
struct SaturationMemo {
    entries: VecDeque<MemoEntry>,
    hits: u64,
    misses: u64,
}

/// The forward-chaining engine.
#[derive(Debug)]
pub struct Engine {
    budget: usize,
    memo: Mutex<SaturationMemo>,
}

impl Clone for Engine {
    fn clone(&self) -> Self {
        // The memo is a per-instance cache; clones start cold.
        Engine::with_budget(self.budget)
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::with_budget(DEFAULT_DERIVATION_BUDGET)
    }
}

impl Engine {
    /// Creates an engine with the default derivation budget.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine with a custom cap on derived facts.
    #[must_use]
    pub fn with_budget(budget: usize) -> Self {
        Engine {
            budget,
            memo: Mutex::new(SaturationMemo::default()),
        }
    }

    /// Saturation-memo accounting: `(hits, misses)` observed by
    /// [`Engine::prove`] since construction.
    #[must_use]
    pub fn memo_stats(&self) -> (u64, u64) {
        let memo = self
            .memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (memo.hits, memo.misses)
    }

    /// Computes the least fixpoint of `rules` over `base` and returns the
    /// saturated fact base. Always recomputes; see [`Engine::prove`] for the
    /// memoized entry point.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::DerivationBudgetExceeded`] when more than the
    /// configured number of facts would be derived.
    pub fn saturate(&self, rules: &[Rule], base: &FactBase) -> Result<FactBase, PolicyError> {
        let mut all = base.clone();
        // Seed with bare-fact rules.
        for rule in rules.iter().filter(|r| r.is_fact()) {
            all.insert(rule.head().clone())?;
        }
        // Semi-naive iteration: only join against facts derived in the last
        // round (delta), re-deriving nothing.
        let mut delta = all.clone();
        while !delta.is_empty() {
            let mut next_delta: BTreeSet<Atom> = BTreeSet::new();
            for rule in rules.iter().filter(|r| !r.is_fact()) {
                Self::fire(rule, &all, &delta, &mut next_delta);
            }
            next_delta.retain(|a| !all.contains(a));
            let mut fresh = FactBase::new();
            for atom in next_delta {
                all.insert_ground(atom.clone());
                if all.len() > self.budget {
                    return Err(PolicyError::DerivationBudgetExceeded {
                        budget: self.budget,
                    });
                }
                fresh.insert_ground(atom);
            }
            delta = fresh;
        }
        Ok(all)
    }

    /// True when `goal` (which may contain variables) is satisfiable from
    /// `rules` and `base`.
    ///
    /// Saturations are memoized: re-proving over an unchanged `(rules,
    /// base)` pair skips the fixpoint and goes straight to the goal lookup.
    ///
    /// # Errors
    ///
    /// Propagates [`PolicyError::DerivationBudgetExceeded`].
    pub fn prove(&self, rules: &[Rule], base: &FactBase, goal: &Atom) -> Result<bool, PolicyError> {
        let mut memo = self
            .memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let position = memo
            .entries
            .iter()
            .position(|e| e.rules == rules && &e.base == base);
        let entry = match position {
            Some(found) => {
                memo.hits += 1;
                // Move to the back: most-recently used.
                let entry = memo.entries.remove(found).expect("position is in bounds");
                memo.entries.push_back(entry);
                memo.entries.back().expect("just pushed")
            }
            None => {
                memo.misses += 1;
                let saturated = self.saturate(rules, base)?;
                if memo.entries.len() >= SATURATION_MEMO_CAPACITY {
                    memo.entries.pop_front();
                }
                memo.entries.push_back(MemoEntry {
                    rules: rules.to_vec(),
                    base: base.clone(),
                    saturated,
                });
                memo.entries.back().expect("just pushed")
            }
        };
        Ok(Self::goal_holds(&entry.saturated, goal))
    }

    /// Goal lookup against an **already saturated** base — the cheap half
    /// of [`Engine::prove`] for callers that hold a saturation computed
    /// once (e.g. [`Engine::saturate`] shared across a batch of proofs) and
    /// probe it with many goals.
    #[must_use]
    pub fn holds(saturated: &FactBase, goal: &Atom) -> bool {
        Self::goal_holds(saturated, goal)
    }

    /// Goal lookup against a saturated base.
    fn goal_holds(saturated: &FactBase, goal: &Atom) -> bool {
        if goal.is_ground() {
            return saturated.contains(goal);
        }
        saturated
            .candidates(goal.predicate(), goal.arity())
            .any(|f| goal.match_ground(f, &Bindings::new()).is_some())
    }

    /// Fires one rule against the current database, requiring at least one
    /// body atom to match within `delta` (semi-naive restriction).
    fn fire(rule: &Rule, all: &FactBase, delta: &FactBase, out: &mut BTreeSet<Atom>) {
        let body = rule.body();
        // For each position that is forced to match the delta:
        for delta_pos in 0..body.len() {
            Self::join(rule, body, 0, delta_pos, all, delta, &Bindings::new(), out);
        }
    }

    /// Recursive indexed nested-loop join over the body atoms: each level
    /// probes only the `(predicate, arity)` group its pattern can match.
    #[allow(clippy::too_many_arguments)]
    fn join(
        rule: &Rule,
        body: &[Atom],
        index: usize,
        delta_pos: usize,
        all: &FactBase,
        delta: &FactBase,
        bindings: &Bindings,
        out: &mut BTreeSet<Atom>,
    ) {
        if index == body.len() {
            let derived = rule.head().substitute(bindings);
            debug_assert!(
                derived.is_ground(),
                "range restriction guarantees ground heads"
            );
            out.insert(derived);
            return;
        }
        let pattern = body[index].substitute(bindings);
        let source = if index == delta_pos { delta } else { all };
        for fact in source.candidates(pattern.predicate(), pattern.arity()) {
            if let Some(next) = pattern.match_ground(fact, bindings) {
                Self::join(rule, body, index + 1, delta_pos, all, delta, &next, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_fact, parse_rules};

    fn base(facts: &[&str]) -> FactBase {
        let mut fb = FactBase::new();
        for f in facts {
            fb.insert(parse_fact(f).unwrap()).unwrap();
        }
        fb
    }

    #[test]
    fn direct_rule_fires() {
        let rules = parse_rules("grant(read, customers) :- role(U, sales_rep).").unwrap();
        let fb = base(&["role(bob, sales_rep)"]);
        let goal = parse_fact("grant(read, customers)").unwrap();
        assert!(Engine::new().prove(&rules, &fb, &goal).unwrap());
    }

    #[test]
    fn join_across_shared_variables() {
        let rules = parse_rules(
            "grant(read, customers) :- role(U, sales_rep), region(U, R), located(U, R).",
        )
        .unwrap();
        let engine = Engine::new();
        let goal = parse_fact("grant(read, customers)").unwrap();

        let matching = base(&[
            "role(bob, sales_rep)",
            "region(bob, east)",
            "located(bob, east)",
        ]);
        assert!(engine.prove(&rules, &matching, &goal).unwrap());

        // Region mismatch: bob assigned east, located west.
        let mismatched = base(&[
            "role(bob, sales_rep)",
            "region(bob, east)",
            "located(bob, west)",
        ]);
        assert!(!engine.prove(&rules, &mismatched, &goal).unwrap());
    }

    #[test]
    fn transitive_closure_terminates() {
        let rules = parse_rules(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Z) :- reach(X, Y), edge(Y, Z).",
        )
        .unwrap();
        let fb = base(&["edge(a, b)", "edge(b, c)", "edge(c, a)"]);
        let engine = Engine::new();
        let sat = engine.saturate(&rules, &fb).unwrap();
        // 3 edges + 9 reachability facts (complete digraph closure on a cycle).
        assert_eq!(sat.len(), 12);
        assert!(engine
            .prove(&rules, &fb, &parse_fact("reach(a, a)").unwrap())
            .unwrap());
    }

    #[test]
    fn bare_fact_rules_seed_the_database() {
        let rules = parse_rules("maintenance. grant(read, logs) :- maintenance.").unwrap();
        let engine = Engine::new();
        assert!(engine
            .prove(
                &rules,
                &FactBase::new(),
                &parse_fact("grant(read, logs)").unwrap()
            )
            .unwrap());
    }

    #[test]
    fn non_ground_goal_matches_any_instance() {
        let rules = parse_rules("grant(read, T) :- table(T).").unwrap();
        let fb = base(&["table(customers)", "table(inventory)"]);
        let goal = Atom::new(
            "grant",
            vec![
                crate::fact::Term::symbol("read"),
                crate::fact::Term::var("T"),
            ],
        );
        assert!(Engine::new().prove(&rules, &fb, &goal).unwrap());
    }

    #[test]
    fn unprovable_goal_is_false_not_error() {
        let rules = parse_rules("grant(read, x) :- role(U, admin).").unwrap();
        let fb = base(&["role(bob, guest)"]);
        assert!(!Engine::new()
            .prove(&rules, &fb, &parse_fact("grant(read, x)").unwrap())
            .unwrap());
    }

    #[test]
    fn budget_exceeded_is_reported() {
        // pair/2 over n symbols derives n^2 facts; budget 4 with 3 symbols
        // (9 pairs) must trip.
        let rules = parse_rules("pair(X, Y) :- sym(X), sym(Y).").unwrap();
        let fb = base(&["sym(a)", "sym(b)", "sym(c)"]);
        let err = Engine::with_budget(4).saturate(&rules, &fb).unwrap_err();
        assert!(matches!(
            err,
            PolicyError::DerivationBudgetExceeded { budget: 4 }
        ));
    }

    #[test]
    fn saturation_is_monotone_in_facts() {
        let rules = parse_rules("grant(read, t) :- role(U, rep), active(U).").unwrap();
        let engine = Engine::new();
        let goal = parse_fact("grant(read, t)").unwrap();
        let small = base(&["role(bob, rep)"]);
        let mut big = small.clone();
        big.insert(parse_fact("active(bob)").unwrap()).unwrap();
        assert!(!engine.prove(&rules, &small, &goal).unwrap());
        assert!(engine.prove(&rules, &big, &goal).unwrap());
    }

    #[test]
    fn index_groups_by_predicate_and_arity() {
        let fb = base(&["p(a)", "p(a, b)", "p(a, c)", "q(a)"]);
        assert_eq!(fb.len(), 4);
        assert_eq!(fb.candidates("p", 2).count(), 2);
        assert_eq!(fb.candidates("p", 1).count(), 1);
        assert_eq!(fb.candidates("q", 1).count(), 1);
        assert_eq!(fb.candidates("q", 2).count(), 0);
        assert_eq!(fb.candidates("missing", 1).count(), 0);
        assert_eq!(fb.iter().count(), 4);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let forward = base(&["a(x)", "b(y)", "c(z)"]);
        let backward = base(&["c(z)", "b(y)", "a(x)"]);
        assert_eq!(forward, backward);
        assert_ne!(forward, base(&["a(x)"]));
    }

    #[test]
    fn prove_memoizes_repeated_saturations() {
        let rules = parse_rules(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Z) :- reach(X, Y), edge(Y, Z).",
        )
        .unwrap();
        let fb = base(&["edge(a, b)", "edge(b, c)"]);
        let engine = Engine::new();
        let goal = parse_fact("reach(a, c)").unwrap();
        for _ in 0..5 {
            assert!(engine.prove(&rules, &fb, &goal).unwrap());
        }
        assert_eq!(engine.memo_stats(), (4, 1));

        // A changed base is a different memo key, never a stale answer.
        let mut grown = fb.clone();
        grown.insert(parse_fact("edge(c, d)").unwrap()).unwrap();
        assert!(engine
            .prove(&rules, &grown, &parse_fact("reach(a, d)").unwrap())
            .unwrap());
        assert!(!engine
            .prove(&rules, &fb, &parse_fact("reach(a, d)").unwrap())
            .unwrap());
        assert_eq!(engine.memo_stats(), (5, 2));
    }

    #[test]
    fn memo_respects_rule_changes() {
        let fb = base(&["role(bob, rep)"]);
        let engine = Engine::new();
        let goal = parse_fact("grant(read, t)").unwrap();
        let permissive = parse_rules("grant(read, t) :- role(U, rep).").unwrap();
        let restrictive = parse_rules("grant(read, t) :- role(U, admin).").unwrap();
        assert!(engine.prove(&permissive, &fb, &goal).unwrap());
        assert!(!engine.prove(&restrictive, &fb, &goal).unwrap());
        assert!(engine.prove(&permissive, &fb, &goal).unwrap());
        assert_eq!(engine.memo_stats(), (1, 2));
    }

    #[test]
    fn memo_evicts_least_recently_used() {
        let engine = Engine::new();
        let goal = parse_fact("p(x)").unwrap();
        // Fill well past capacity with distinct bases.
        for i in 0..(SATURATION_MEMO_CAPACITY + 4) {
            let fb = base(&[&format!("q(s{i})")]);
            let _ = engine.prove(&[], &fb, &goal).unwrap();
        }
        let (hits, misses) = engine.memo_stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, (SATURATION_MEMO_CAPACITY + 4) as u64);
        // The oldest base fell out; re-proving it is a miss, while the
        // newest is still a hit.
        let newest = base(&[&format!("q(s{})", SATURATION_MEMO_CAPACITY + 3)]);
        let _ = engine.prove(&[], &newest, &goal).unwrap();
        let oldest = base(&["q(s0)"]);
        let _ = engine.prove(&[], &oldest, &goal).unwrap();
        assert_eq!(
            engine.memo_stats(),
            (1, (SATURATION_MEMO_CAPACITY + 5) as u64)
        );
    }
}
