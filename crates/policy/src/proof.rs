//! Proofs of authorization and their evaluation.
//!
//! The paper defines a proof of authorization as the tuple
//! `f_si = ⟨qi, si, P_si(m(qi)), ti, C⟩` and a validity predicate
//! `eval(f, t)` that holds when (1) every credential in `C` is syntactically
//! and semantically valid and (2) the policy's inference rules are
//! satisfiable from those credentials. [`evaluate_proof`] implements exactly
//! that, recording the outcome in a [`ProofOfAuthorization`] so that views
//! (Definition 1) can be audited after the fact.

use crate::ca::{CredentialStatus, StatusOracle};
use crate::credential::Credential;
use crate::engine::{Engine, FactBase};
use crate::error::PolicyError;
use crate::fact::{Atom, Term};
use crate::policy::Policy;
use safetx_types::{CredentialId, PolicyId, PolicyVersion, ServerId, Timestamp, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a query wants to do, mapped to the rule-language goal
/// `grant(action, resource)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessRequest {
    /// The requesting principal.
    pub user: UserId,
    /// Action symbol, e.g. `read` or `write`.
    pub action: String,
    /// Resource symbol, e.g. `customers`.
    pub resource: String,
}

impl AccessRequest {
    /// Creates a request.
    #[must_use]
    pub fn new(user: UserId, action: impl Into<String>, resource: impl Into<String>) -> Self {
        AccessRequest {
            user,
            action: action.into(),
            resource: resource.into(),
        }
    }

    /// The goal atom the policy must derive.
    #[must_use]
    pub fn goal(&self) -> Atom {
        Atom::new(
            "grant",
            vec![
                Term::symbol(self.action.clone()),
                Term::symbol(self.resource.clone()),
            ],
        )
    }
}

impl fmt::Display for AccessRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} wants {}({})", self.user, self.action, self.resource)
    }
}

/// Why a proof evaluated to false (or that it evaluated to true).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProofOutcome {
    /// The access is authorized: all credentials valid and the goal
    /// derivable.
    Granted,
    /// A credential failed the syntactic check.
    InvalidCredential {
        /// The failing credential.
        credential: CredentialId,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A credential was revoked on or before the evaluation instant.
    RevokedCredential {
        /// The revoked credential.
        credential: CredentialId,
        /// When it was revoked.
        revoked_at: Timestamp,
    },
    /// All credentials valid but the inference rules are not satisfiable.
    NotDerivable,
}

impl ProofOutcome {
    /// True only for [`ProofOutcome::Granted`]; this is the truth value the
    /// participant reports in 2PV/2PVC.
    #[must_use]
    pub fn is_granted(&self) -> bool {
        matches!(self, ProofOutcome::Granted)
    }
}

impl fmt::Display for ProofOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofOutcome::Granted => write!(f, "granted"),
            ProofOutcome::InvalidCredential { credential, detail } => {
                write!(f, "credential {credential} invalid: {detail}")
            }
            ProofOutcome::RevokedCredential {
                credential,
                revoked_at,
            } => write!(f, "credential {credential} revoked at {revoked_at}"),
            ProofOutcome::NotDerivable => write!(f, "policy goal not derivable"),
        }
    }
}

/// The recorded proof `f = ⟨q, s, P(m(q)), t, C⟩` plus its outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProofOfAuthorization {
    /// The access request (stands in for the query `q`).
    pub request: AccessRequest,
    /// The server `s` that evaluated the proof.
    pub server: ServerId,
    /// The policy used.
    pub policy_id: PolicyId,
    /// The policy version `ver(P_s)` used — the datum 2PV reconciles.
    pub policy_version: PolicyVersion,
    /// The evaluation instant `t`.
    pub evaluated_at: Timestamp,
    /// The credentials `C` presented by the querier.
    pub credentials: Vec<CredentialId>,
    /// The evaluation outcome.
    pub outcome: ProofOutcome,
}

impl ProofOfAuthorization {
    /// The truth value reported to the transaction manager.
    #[must_use]
    pub fn truth(&self) -> bool {
        self.outcome.is_granted()
    }
}

impl fmt::Display for ProofOfAuthorization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{}, {}, {} {}, {}, {} creds⟩ = {}",
            self.request,
            self.server,
            self.policy_id,
            self.policy_version,
            self.evaluated_at,
            self.credentials.len(),
            self.outcome
        )
    }
}

/// Everything a server needs to evaluate proofs locally.
pub struct ProofContext<'a> {
    /// The policy version this server currently enforces.
    pub policy: &'a Policy,
    /// Online credential status source (the CAs).
    pub oracle: &'a dyn StatusOracle,
    /// The inference engine.
    pub engine: &'a Engine,
    /// Extra ambient facts the server contributes (e.g. the user's current
    /// location as observed by the server).
    pub ambient_facts: &'a FactBase,
}

/// Evaluates `eval(f, t)` for an access request at server `server`.
///
/// Performs, in order: syntactic checks on each credential (format,
/// signature, `α`/`ω` window), semantic checks (online revocation status
/// through `at`), then satisfiability of the policy's rules from the valid
/// credentials' statements plus ambient facts.
///
/// # Errors
///
/// Returns [`PolicyError::DerivationBudgetExceeded`] when the policy's rules
/// blow the inference budget; credential failures are *not* errors, they are
/// recorded as a false [`ProofOutcome`].
pub fn evaluate_proof(
    ctx: &ProofContext<'_>,
    server: ServerId,
    request: &AccessRequest,
    credentials: &[Credential],
    at: Timestamp,
) -> Result<ProofOfAuthorization, PolicyError> {
    let ids: Vec<CredentialId> = credentials.iter().map(Credential::id).collect();
    let mut proof = ProofOfAuthorization {
        request: request.clone(),
        server,
        policy_id: ctx.policy.id(),
        policy_version: ctx.policy.version(),
        evaluated_at: at,
        credentials: ids,
        outcome: ProofOutcome::NotDerivable,
    };

    match credential_fact_base(ctx.oracle, ctx.ambient_facts, credentials, at)? {
        CredentialCheck::Refused(outcome) => {
            proof.outcome = outcome;
            Ok(proof)
        }
        CredentialCheck::Valid(facts) => {
            let goal = request.goal();
            let derivable = ctx
                .engine
                .prove(ctx.policy.rules().as_slice(), &facts, &goal)?;
            proof.outcome = if derivable {
                ProofOutcome::Granted
            } else {
                ProofOutcome::NotDerivable
            };
            Ok(proof)
        }
    }
}

/// The credential-check half of [`evaluate_proof`], factored out so batch
/// evaluation can run it once per credential list and share the resulting
/// fact base across every query that presents the same wallet.
#[derive(Debug, Clone)]
pub enum CredentialCheck {
    /// All credentials passed: the ambient facts extended with each
    /// credential's statement, ready to saturate under a policy's rules.
    Valid(FactBase),
    /// Evaluation short-circuits with this false outcome (the first
    /// invalid, revoked, or status-unknown credential, in presentation
    /// order — exactly [`evaluate_proof`]'s behaviour).
    Refused(ProofOutcome),
}

/// Runs the syntactic and semantic (online status) checks on `credentials`
/// in presentation order and builds the fact base their statements extend
/// `ambient` with. Policy-independent: the result can be saturated under
/// any policy's rules.
///
/// # Errors
///
/// Propagates fact-insertion failures (non-ground credential statements).
pub fn credential_fact_base(
    oracle: &dyn StatusOracle,
    ambient: &FactBase,
    credentials: &[Credential],
    at: Timestamp,
) -> Result<CredentialCheck, PolicyError> {
    let mut facts = ambient.clone();
    for cred in credentials {
        let syntactic = oracle.verify(cred, at);
        if !syntactic.is_valid() {
            return Ok(CredentialCheck::Refused(ProofOutcome::InvalidCredential {
                credential: cred.id(),
                detail: syntactic.to_string(),
            }));
        }
        match oracle.status(cred.id(), at) {
            CredentialStatus::Good => {}
            CredentialStatus::Revoked(revoked_at) => {
                return Ok(CredentialCheck::Refused(ProofOutcome::RevokedCredential {
                    credential: cred.id(),
                    revoked_at,
                }));
            }
            CredentialStatus::Unknown => {
                return Ok(CredentialCheck::Refused(ProofOutcome::InvalidCredential {
                    credential: cred.id(),
                    detail: "no online status available".into(),
                }));
            }
        }
        facts.insert(cred.statement().clone())?;
    }
    Ok(CredentialCheck::Valid(facts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::{CaRegistry, CertificateAuthority};
    use crate::fact::Constant;
    use crate::policy::PolicyBuilder;
    use safetx_types::{AdminDomain, CaId};

    struct Fixture {
        policy: Policy,
        registry: CaRegistry,
        engine: Engine,
        ambient: FactBase,
        credential: Credential,
    }

    fn fixture() -> Fixture {
        let policy = PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text(
                "grant(read, customers) :- role(U, sales_rep), located(U, R), region(U, R).",
            )
            .unwrap()
            .build();
        let mut ca = CertificateAuthority::new(CaId::new(0), 0xabc);
        let credential = ca.issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("bob"), Constant::symbol("sales_rep")],
            ),
            Timestamp::ZERO,
            Timestamp::from_millis(1_000),
        );
        let mut registry = CaRegistry::new();
        registry.register(ca);
        let mut ambient = FactBase::new();
        ambient.insert_text("located(bob, east)").unwrap();
        ambient.insert_text("region(bob, east)").unwrap();
        Fixture {
            policy,
            registry,
            engine: Engine::new(),
            ambient,
            credential,
        }
    }

    fn eval(fx: &Fixture, creds: &[Credential], at_ms: u64) -> ProofOfAuthorization {
        let ctx = ProofContext {
            policy: &fx.policy,
            oracle: &fx.registry,
            engine: &fx.engine,
            ambient_facts: &fx.ambient,
        };
        evaluate_proof(
            &ctx,
            ServerId::new(0),
            &AccessRequest::new(UserId::new(1), "read", "customers"),
            creds,
            Timestamp::from_millis(at_ms),
        )
        .unwrap()
    }

    #[test]
    fn grants_with_valid_credentials() {
        let fx = fixture();
        let proof = eval(&fx, std::slice::from_ref(&fx.credential), 10);
        assert!(proof.truth());
        assert_eq!(proof.policy_version, PolicyVersion::INITIAL);
    }

    #[test]
    fn denies_without_the_supporting_credential() {
        let fx = fixture();
        let proof = eval(&fx, &[], 10);
        assert_eq!(proof.outcome, ProofOutcome::NotDerivable);
        assert!(!proof.truth());
    }

    #[test]
    fn denies_expired_credential() {
        let fx = fixture();
        let proof = eval(&fx, std::slice::from_ref(&fx.credential), 1_000);
        assert!(matches!(
            proof.outcome,
            ProofOutcome::InvalidCredential { .. }
        ));
    }

    #[test]
    fn denies_revoked_credential_from_revocation_instant() {
        let mut fx = fixture();
        fx.registry
            .revoke(CaId::new(0), fx.credential.id(), Timestamp::from_millis(50));
        assert!(eval(&fx, std::slice::from_ref(&fx.credential), 49).truth());
        let proof = eval(&fx, std::slice::from_ref(&fx.credential), 50);
        assert!(matches!(
            proof.outcome,
            ProofOutcome::RevokedCredential { .. }
        ));
    }

    #[test]
    fn denies_forged_credential() {
        let fx = fixture();
        let forged = fx.credential.with_forged_statement(Atom::fact(
            "role",
            vec![Constant::symbol("bob"), Constant::symbol("admin")],
        ));
        let proof = eval(&fx, &[forged], 10);
        assert!(matches!(
            proof.outcome,
            ProofOutcome::InvalidCredential { .. }
        ));
    }

    #[test]
    fn policy_update_can_flip_a_decision() {
        // P' requires manager role; Bob's sales_rep credential no longer
        // suffices — exactly the Fig. 1 hazard.
        let mut fx = fixture();
        let p2 = fx.policy.updated(
            "grant(read, customers) :- role(U, manager)."
                .parse()
                .unwrap(),
        );
        assert!(eval(&fx, std::slice::from_ref(&fx.credential), 10).truth());
        fx.policy = p2;
        assert!(!eval(&fx, std::slice::from_ref(&fx.credential), 10).truth());
    }

    #[test]
    fn proof_records_the_tuple_fields() {
        let fx = fixture();
        let proof = eval(&fx, std::slice::from_ref(&fx.credential), 10);
        assert_eq!(proof.server, ServerId::new(0));
        assert_eq!(proof.policy_id, PolicyId::new(0));
        assert_eq!(proof.evaluated_at, Timestamp::from_millis(10));
        assert_eq!(proof.credentials, vec![fx.credential.id()]);
        let shown = proof.to_string();
        assert!(shown.contains("granted"));
    }
}
