//! Frame conservation on a clean run.
//!
//! Both ends of every TM↔server edge account framed sizes the same way
//! (length prefix included), so on a run with no disconnects and no
//! decode errors the counters must balance exactly: every frame the TM
//! sends is a frame that server receives, byte for byte, and vice versa.

use safetx_core::{ConsistencyLevel, ProofScheme};
use safetx_net::NetCluster;
use safetx_policy::{Atom, Constant, Credential, PolicyBuilder};
use safetx_runtime::ClusterConfig;
use safetx_store::Value;
use safetx_txn::{Operation, QuerySpec, TransactionSpec};
use safetx_types::{AdminDomain, CaId, DataItemId, PolicyId, ServerId, Timestamp, UserId};
use std::time::{Duration, Instant};

const SERVERS: usize = 3;

fn build() -> NetCluster {
    let cluster = NetCluster::new(ClusterConfig {
        servers: SERVERS,
        scheme: ProofScheme::Continuous,
        consistency: ConsistencyLevel::Global,
        ..Default::default()
    });
    cluster.publish_policy(
        PolicyBuilder::new(PolicyId::new(0), AdminDomain::new(0))
            .rules_text("grant(write, records) :- role(U, member).")
            .expect("rules parse")
            .build(),
    );
    for s in 0..SERVERS as u64 {
        cluster.configure_server(ServerId::new(s), move |core| {
            for j in 0..8 {
                core.store_mut().write(
                    DataItemId::new(s * 100 + j),
                    Value::Int(10),
                    Timestamp::ZERO,
                );
            }
        });
    }
    cluster
}

fn member(cluster: &NetCluster) -> Credential {
    cluster.cas().with_mut(|registry| {
        registry.ca_mut(CaId::new(0)).unwrap().issue(
            UserId::new(1),
            Atom::fact(
                "role",
                vec![Constant::symbol("u1"), Constant::symbol("member")],
            ),
            Timestamp::ZERO,
            Timestamp::MAX,
        )
    })
}

fn spec(cluster: &NetCluster, slot: u64) -> TransactionSpec {
    let queries = (0..SERVERS as u64)
        .map(|s| {
            QuerySpec::new(
                ServerId::new(s),
                "write",
                "records",
                vec![Operation::Add(DataItemId::new(s * 100 + slot % 8), 1)],
            )
        })
        .collect();
    TransactionSpec::new(cluster.next_txn_id(), UserId::new(1), queries)
}

/// Receive counters are bumped on reader threads, so give in-flight
/// frames a moment to land before declaring an imbalance.
fn edges_balance(cluster: &NetCluster) -> bool {
    (0..SERVERS as u64).all(|s| {
        let (tm, srv) = cluster.edge_counters(ServerId::new(s));
        tm.frames_sent == srv.frames_received
            && tm.bytes_sent == srv.bytes_received
            && srv.frames_sent == tm.frames_received
            && srv.bytes_sent == tm.bytes_received
    })
}

#[test]
fn clean_run_conserves_frames_and_bytes_per_edge() {
    let cluster = build();
    let credentials = vec![member(&cluster)];
    let mut commits = 0;
    for i in 0..20 {
        let result = cluster.execute(&spec(&cluster, i), &credentials);
        if matches!(result.outcome, safetx_core::TxnOutcome::Committed { .. }) {
            commits += 1;
        }
    }
    assert!(commits > 0, "workload never committed");

    let deadline = Instant::now() + Duration::from_secs(5);
    while !edges_balance(&cluster) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    for s in 0..SERVERS as u64 {
        let (tm, srv) = cluster.edge_counters(ServerId::new(s));
        assert!(tm.frames_sent > 0, "edge {s}: no traffic at all");
        assert_eq!(
            tm.frames_sent, srv.frames_received,
            "edge {s}: TM→server frames leaked (tm={tm:?} srv={srv:?})"
        );
        assert_eq!(
            tm.bytes_sent, srv.bytes_received,
            "edge {s}: TM→server bytes leaked (tm={tm:?} srv={srv:?})"
        );
        assert_eq!(
            srv.frames_sent, tm.frames_received,
            "edge {s}: server→TM frames leaked (tm={tm:?} srv={srv:?})"
        );
        assert_eq!(
            srv.bytes_sent, tm.bytes_received,
            "edge {s}: server→TM bytes leaked (tm={tm:?} srv={srv:?})"
        );
        assert_eq!(tm.decode_errors, 0, "edge {s}: TM saw undecodable frames");
        assert_eq!(
            srv.decode_errors, 0,
            "edge {s}: server saw undecodable frames"
        );
        assert_eq!(
            tm.reconnects + srv.reconnects,
            0,
            "edge {s}: unexpected churn"
        );
    }

    // The cluster-wide aggregate (both sides of every edge summed) must
    // balance too — this is the figure ServiceStats::to_json exports.
    let total = cluster.transport_counters();
    assert_eq!(total.frames_sent, total.frames_received);
    assert_eq!(total.bytes_sent, total.bytes_received);
    cluster.shutdown();
}
