//! Length-prefixed, versioned binary codec for [`Msg`].
//!
//! The sim and threaded runtimes move `Msg` values through in-process
//! channels; this module is what lets the same values cross a process
//! boundary. The encoding is hand-rolled (the vendored serde is a stub)
//! and deliberately boring:
//!
//! ```text
//! frame   := len:u32le payload              (len = payload byte count)
//! payload := version:u8 tag:u8 body
//! ```
//!
//! * every integer is little-endian and fixed-width (`u8`/`u32`/`u64`/`i64`);
//! * strings are `u32` byte length + UTF-8 bytes;
//! * `Vec<T>`/maps are `u32` element count + elements;
//! * `Option<T>` is a presence byte (0/1) + payload;
//! * enums are a `u8` tag + variant fields in declaration order.
//!
//! Decoding is total: any malformed, truncated, oversized or
//! wrong-version input yields a [`WireError`], never a panic. Signed
//! payloads ([`Credential`], [`AccessCapability`]) are reassembled with
//! their transported signature bytes — the decoder never re-signs and
//! never validates; tampering surfaces later at the existing syntactic
//! checks, exactly as it would for a forged in-process value.
//!
//! [`Msg::Batch`] encodes its inner messages as nested `tag + body`
//! payloads (no inner length prefix or version byte); nesting a batch
//! inside a batch is rejected, mirroring the in-process invariant.

use safetx_core::{Msg, ValidationReply, VersionMap};
use safetx_policy::{
    AccessCapability, AccessRequest, Atom, Constant, Credential, Policy, PolicyBuilder,
    ProofOfAuthorization, ProofOutcome, Rule, RuleSet, Term,
};
use safetx_txn::{Decision, InquiryAnswer, Operation, QuerySpec, TransactionSpec, Vote};
use safetx_types::{
    AdminDomain, CaId, CredentialId, DataItemId, PolicyId, PolicyVersion, ServerId, Timestamp,
    TxnId, UserId,
};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Format version carried in every payload. Bump on any layout change.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a single frame's payload, in bytes. Anything larger is
/// rejected before allocation — a corrupted length prefix must not turn
/// into a multi-gigabyte `Vec`.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Why a payload failed to decode.
///
/// Decoding never panics: every defect in the input maps onto one of
/// these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the value it promised.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The payload's format version is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// An enum tag outside the known range.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Bytes remained after the message body was fully decoded.
    TrailingBytes(usize),
    /// A structurally invalid value (e.g. a rule with a non-ground fact
    /// head, or a batch nested inside a batch).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds MAX_FRAME_LEN"),
            WireError::BadVersion(v) => {
                write!(f, "wire version {v} (this build speaks {WIRE_VERSION})")
            }
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message body"),
            WireError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for WireError {}

type Result<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool")),
        }
    }

    /// Element count for a sequence. Bounded by the bytes actually
    /// available so a corrupted count cannot drive a huge allocation.
    fn count(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String> {
        let n = self.count()?;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Malformed("usize"))
    }

    fn timestamp(&mut self) -> Result<Timestamp> {
        Ok(Timestamp::from_micros(self.u64()?))
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_ts(out: &mut Vec<u8>, t: Timestamp) {
    put_u64(out, t.as_micros());
}

// ---------------------------------------------------------------------------
// Domain types
// ---------------------------------------------------------------------------

fn put_constant(out: &mut Vec<u8>, c: &Constant) {
    match c {
        Constant::Symbol(s) => {
            out.push(0);
            put_str(out, s);
        }
        Constant::Int(i) => {
            out.push(1);
            put_i64(out, *i);
        }
    }
}

fn get_constant(r: &mut Reader<'_>) -> Result<Constant> {
    match r.u8()? {
        0 => Ok(Constant::Symbol(r.string()?)),
        1 => Ok(Constant::Int(r.i64()?)),
        tag => Err(WireError::BadTag {
            what: "Constant",
            tag,
        }),
    }
}

fn put_term(out: &mut Vec<u8>, t: &Term) {
    match t {
        Term::Const(c) => {
            out.push(0);
            put_constant(out, c);
        }
        Term::Var(v) => {
            out.push(1);
            put_str(out, v);
        }
    }
}

fn get_term(r: &mut Reader<'_>) -> Result<Term> {
    match r.u8()? {
        0 => Ok(Term::Const(get_constant(r)?)),
        1 => Ok(Term::Var(r.string()?)),
        tag => Err(WireError::BadTag { what: "Term", tag }),
    }
}

fn put_atom(out: &mut Vec<u8>, a: &Atom) {
    put_str(out, a.predicate());
    put_u32(out, a.args().len() as u32);
    for t in a.args() {
        put_term(out, t);
    }
}

fn get_atom(r: &mut Reader<'_>) -> Result<Atom> {
    let predicate = r.string()?;
    let n = r.count()?;
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        args.push(get_term(r)?);
    }
    Ok(Atom::new(predicate, args))
}

fn put_credential(out: &mut Vec<u8>, c: &Credential) {
    put_u64(out, c.id().index());
    put_u64(out, c.subject().index());
    put_atom(out, c.statement());
    put_u64(out, c.issuer().index());
    put_ts(out, c.issued_at());
    put_ts(out, c.expires_at());
    put_u64(out, c.signature());
}

fn get_credential(r: &mut Reader<'_>) -> Result<Credential> {
    Ok(Credential::from_parts(
        CredentialId::new(r.u64()?),
        UserId::new(r.u64()?),
        get_atom(r)?,
        CaId::new(r.u64()?),
        r.timestamp()?,
        r.timestamp()?,
        r.u64()?,
    ))
}

fn put_capability(out: &mut Vec<u8>, c: &AccessCapability) {
    put_u64(out, c.issuer().index());
    put_u64(out, c.user().index());
    put_u64(out, c.txn().index());
    put_str(out, c.action());
    put_str(out, c.resource());
    put_ts(out, c.issued_at());
    put_ts(out, c.expires_at());
    put_u64(out, c.signature());
}

fn get_capability(r: &mut Reader<'_>) -> Result<AccessCapability> {
    Ok(AccessCapability::from_parts(
        ServerId::new(r.u64()?),
        UserId::new(r.u64()?),
        TxnId::new(r.u64()?),
        r.string()?,
        r.string()?,
        r.timestamp()?,
        r.timestamp()?,
        r.u64()?,
    ))
}

fn put_outcome(out: &mut Vec<u8>, o: &ProofOutcome) {
    match o {
        ProofOutcome::Granted => out.push(0),
        ProofOutcome::InvalidCredential { credential, detail } => {
            out.push(1);
            put_u64(out, credential.index());
            put_str(out, detail);
        }
        ProofOutcome::RevokedCredential {
            credential,
            revoked_at,
        } => {
            out.push(2);
            put_u64(out, credential.index());
            put_ts(out, *revoked_at);
        }
        ProofOutcome::NotDerivable => out.push(3),
    }
}

fn get_outcome(r: &mut Reader<'_>) -> Result<ProofOutcome> {
    match r.u8()? {
        0 => Ok(ProofOutcome::Granted),
        1 => Ok(ProofOutcome::InvalidCredential {
            credential: CredentialId::new(r.u64()?),
            detail: r.string()?,
        }),
        2 => Ok(ProofOutcome::RevokedCredential {
            credential: CredentialId::new(r.u64()?),
            revoked_at: r.timestamp()?,
        }),
        3 => Ok(ProofOutcome::NotDerivable),
        tag => Err(WireError::BadTag {
            what: "ProofOutcome",
            tag,
        }),
    }
}

fn put_proof(out: &mut Vec<u8>, p: &ProofOfAuthorization) {
    put_u64(out, p.request.user.index());
    put_str(out, &p.request.action);
    put_str(out, &p.request.resource);
    put_u64(out, p.server.index());
    put_u64(out, p.policy_id.index());
    put_u64(out, p.policy_version.0);
    put_ts(out, p.evaluated_at);
    put_u32(out, p.credentials.len() as u32);
    for c in &p.credentials {
        put_u64(out, c.index());
    }
    put_outcome(out, &p.outcome);
}

fn get_proof(r: &mut Reader<'_>) -> Result<ProofOfAuthorization> {
    let request = AccessRequest::new(UserId::new(r.u64()?), r.string()?, r.string()?);
    let server = ServerId::new(r.u64()?);
    let policy_id = PolicyId::new(r.u64()?);
    let policy_version = PolicyVersion(r.u64()?);
    let evaluated_at = r.timestamp()?;
    let n = r.count()?;
    let mut credentials = Vec::with_capacity(n);
    for _ in 0..n {
        credentials.push(CredentialId::new(r.u64()?));
    }
    Ok(ProofOfAuthorization {
        request,
        server,
        policy_id,
        policy_version,
        evaluated_at,
        credentials,
        outcome: get_outcome(r)?,
    })
}

fn put_versions(out: &mut Vec<u8>, m: &VersionMap) {
    put_u32(out, m.len() as u32);
    for (p, v) in m {
        put_u64(out, p.index());
        put_u64(out, v.0);
    }
}

fn get_versions(r: &mut Reader<'_>) -> Result<VersionMap> {
    let n = r.count()?;
    let mut m = VersionMap::new();
    for _ in 0..n {
        m.insert(PolicyId::new(r.u64()?), PolicyVersion(r.u64()?));
    }
    Ok(m)
}

fn put_vote(out: &mut Vec<u8>, v: Vote) {
    out.push(match v {
        Vote::Yes => 0,
        Vote::No => 1,
    });
}

fn get_vote(r: &mut Reader<'_>) -> Result<Vote> {
    match r.u8()? {
        0 => Ok(Vote::Yes),
        1 => Ok(Vote::No),
        tag => Err(WireError::BadTag { what: "Vote", tag }),
    }
}

fn put_reply(out: &mut Vec<u8>, reply: &ValidationReply) {
    put_vote(out, reply.vote);
    put_bool(out, reply.truth);
    put_bool(out, reply.conflict);
    put_versions(out, &reply.versions);
    put_u32(out, reply.proofs.len() as u32);
    for p in &reply.proofs {
        put_proof(out, p);
    }
}

fn get_reply(r: &mut Reader<'_>) -> Result<ValidationReply> {
    let vote = get_vote(r)?;
    let truth = r.bool()?;
    let conflict = r.bool()?;
    let versions = get_versions(r)?;
    let n = r.count()?;
    let mut proofs = Vec::with_capacity(n);
    for _ in 0..n {
        proofs.push(get_proof(r)?);
    }
    Ok(ValidationReply {
        vote,
        truth,
        conflict,
        versions,
        proofs,
    })
}

fn put_operation(out: &mut Vec<u8>, op: &Operation) {
    match op {
        Operation::Read(item) => {
            out.push(0);
            put_u64(out, item.index());
        }
        Operation::Write(item, value) => {
            out.push(1);
            put_u64(out, item.index());
            put_value(out, value);
        }
        Operation::Add(item, delta) => {
            out.push(2);
            put_u64(out, item.index());
            put_i64(out, *delta);
        }
    }
}

fn get_operation(r: &mut Reader<'_>) -> Result<Operation> {
    match r.u8()? {
        0 => Ok(Operation::Read(DataItemId::new(r.u64()?))),
        1 => {
            let item = DataItemId::new(r.u64()?);
            Ok(Operation::Write(item, get_value(r)?))
        }
        2 => {
            let item = DataItemId::new(r.u64()?);
            Ok(Operation::Add(item, r.i64()?))
        }
        tag => Err(WireError::BadTag {
            what: "Operation",
            tag,
        }),
    }
}

fn put_value(out: &mut Vec<u8>, v: &safetx_store::Value) {
    match v {
        safetx_store::Value::Int(i) => {
            out.push(0);
            put_i64(out, *i);
        }
        safetx_store::Value::Str(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn get_value(r: &mut Reader<'_>) -> Result<safetx_store::Value> {
    match r.u8()? {
        0 => Ok(safetx_store::Value::Int(r.i64()?)),
        1 => Ok(safetx_store::Value::Str(r.string()?)),
        tag => Err(WireError::BadTag { what: "Value", tag }),
    }
}

fn put_query(out: &mut Vec<u8>, q: &QuerySpec) {
    put_u64(out, q.server.index());
    put_str(out, &q.action);
    put_str(out, &q.resource);
    put_u32(out, q.ops.len() as u32);
    for op in &q.ops {
        put_operation(out, op);
    }
}

fn get_query(r: &mut Reader<'_>) -> Result<QuerySpec> {
    let server = ServerId::new(r.u64()?);
    let action = r.string()?;
    let resource = r.string()?;
    let n = r.count()?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(get_operation(r)?);
    }
    Ok(QuerySpec::new(server, action, resource, ops))
}

fn put_spec(out: &mut Vec<u8>, spec: &TransactionSpec) {
    put_u64(out, spec.id.index());
    put_u64(out, spec.user.index());
    put_u32(out, spec.queries.len() as u32);
    for q in &spec.queries {
        put_query(out, q);
    }
}

fn get_spec(r: &mut Reader<'_>) -> Result<TransactionSpec> {
    let id = TxnId::new(r.u64()?);
    let user = UserId::new(r.u64()?);
    let n = r.count()?;
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        queries.push(get_query(r)?);
    }
    Ok(TransactionSpec::new(id, user, queries))
}

fn put_credentials(out: &mut Vec<u8>, creds: &[Credential]) {
    put_u32(out, creds.len() as u32);
    for c in creds {
        put_credential(out, c);
    }
}

fn get_credentials(r: &mut Reader<'_>) -> Result<Vec<Credential>> {
    let n = r.count()?;
    let mut creds = Vec::with_capacity(n);
    for _ in 0..n {
        creds.push(get_credential(r)?);
    }
    Ok(creds)
}

fn put_decision(out: &mut Vec<u8>, d: Decision) {
    out.push(match d {
        Decision::Commit => 0,
        Decision::Abort => 1,
    });
}

fn get_decision(r: &mut Reader<'_>) -> Result<Decision> {
    match r.u8()? {
        0 => Ok(Decision::Commit),
        1 => Ok(Decision::Abort),
        tag => Err(WireError::BadTag {
            what: "Decision",
            tag,
        }),
    }
}

fn put_policy(out: &mut Vec<u8>, p: &Policy) {
    put_u64(out, p.id().index());
    put_u64(out, p.admin().index());
    put_u64(out, p.version().0);
    put_u32(out, p.rules().len() as u32);
    for rule in p.rules().iter() {
        put_atom(out, rule.head());
        put_u32(out, rule.body().len() as u32);
        for atom in rule.body() {
            put_atom(out, atom);
        }
    }
}

fn get_policy(r: &mut Reader<'_>) -> Result<Policy> {
    let id = PolicyId::new(r.u64()?);
    let admin = AdminDomain::new(r.u64()?);
    let version = PolicyVersion(r.u64()?);
    let n = r.count()?;
    let mut rules = Vec::with_capacity(n);
    for _ in 0..n {
        let head = get_atom(r)?;
        let m = r.count()?;
        let mut body = Vec::with_capacity(m);
        for _ in 0..m {
            body.push(get_atom(r)?);
        }
        rules.push(Rule::new(head, body).map_err(|_| WireError::Malformed("rule"))?);
    }
    Ok(PolicyBuilder::new(id, admin)
        .version(version)
        .rules(rules.into_iter().collect::<RuleSet>())
        .build())
}

// ---------------------------------------------------------------------------
// Msg
// ---------------------------------------------------------------------------

const TAG_BEGIN: u8 = 0;
const TAG_EXEC_QUERY: u8 = 1;
const TAG_QUERY_DONE: u8 = 2;
const TAG_PREPARE_TO_VALIDATE: u8 = 3;
const TAG_VALIDATE_REPLY: u8 = 4;
const TAG_PREPARE_TO_COMMIT: u8 = 5;
const TAG_COMMIT_REPLY: u8 = 6;
const TAG_UPDATE: u8 = 7;
const TAG_DECISION: u8 = 8;
const TAG_ACK: u8 = 9;
const TAG_VERSION_REQUEST: u8 = 10;
const TAG_VERSION_REPLY: u8 = 11;
const TAG_POLICY_GOSSIP: u8 = 12;
const TAG_ADMIN_PUBLISH: u8 = 13;
const TAG_ADMIN_PUBLISH_POLICY: u8 = 14;
const TAG_BATCH: u8 = 15;
const TAG_INQUIRY: u8 = 16;
const TAG_INQUIRY_REPLY: u8 = 17;

fn put_msg(out: &mut Vec<u8>, msg: &Msg, nested: bool) {
    match msg {
        Msg::Begin { spec, credentials } => {
            out.push(TAG_BEGIN);
            put_spec(out, spec);
            put_credentials(out, credentials);
        }
        Msg::ExecQuery {
            txn,
            query_index,
            query,
            user,
            credentials,
            evaluate_proof,
            pin_versions,
            capabilities,
        } => {
            out.push(TAG_EXEC_QUERY);
            put_u64(out, txn.index());
            put_u64(out, *query_index as u64);
            put_query(out, query);
            put_u64(out, user.index());
            put_credentials(out, credentials);
            put_bool(out, *evaluate_proof);
            put_versions(out, pin_versions);
            put_u32(out, capabilities.len() as u32);
            for cap in capabilities {
                put_capability(out, cap);
            }
        }
        Msg::QueryDone {
            txn,
            query_index,
            ok,
            proof,
            capability,
        } => {
            out.push(TAG_QUERY_DONE);
            put_u64(out, txn.index());
            put_u64(out, *query_index as u64);
            put_bool(out, *ok);
            match proof {
                Some(p) => {
                    out.push(1);
                    put_proof(out, p);
                }
                None => out.push(0),
            }
            match capability {
                Some(c) => {
                    out.push(1);
                    put_capability(out, c);
                }
                None => out.push(0),
            }
        }
        Msg::PrepareToValidate {
            txn,
            new_query,
            user,
            credentials,
        } => {
            out.push(TAG_PREPARE_TO_VALIDATE);
            put_u64(out, txn.index());
            match new_query {
                Some((index, query)) => {
                    out.push(1);
                    put_u64(out, *index as u64);
                    put_query(out, query);
                }
                None => out.push(0),
            }
            put_u64(out, user.index());
            put_credentials(out, credentials);
        }
        Msg::ValidateReply { txn, reply } => {
            out.push(TAG_VALIDATE_REPLY);
            put_u64(out, txn.index());
            put_reply(out, reply);
        }
        Msg::PrepareToCommit {
            txn,
            validate,
            expected_queries,
        } => {
            out.push(TAG_PREPARE_TO_COMMIT);
            put_u64(out, txn.index());
            put_bool(out, *validate);
            put_u32(out, expected_queries.len() as u32);
            for q in expected_queries {
                put_u64(out, *q as u64);
            }
        }
        Msg::CommitReply { txn, reply } => {
            out.push(TAG_COMMIT_REPLY);
            put_u64(out, txn.index());
            put_reply(out, reply);
        }
        Msg::Update {
            txn,
            targets,
            in_commit,
        } => {
            out.push(TAG_UPDATE);
            put_u64(out, txn.index());
            put_versions(out, targets);
            put_bool(out, *in_commit);
        }
        Msg::Decision { txn, decision } => {
            out.push(TAG_DECISION);
            put_u64(out, txn.index());
            put_decision(out, *decision);
        }
        Msg::Ack { txn } => {
            out.push(TAG_ACK);
            put_u64(out, txn.index());
        }
        Msg::VersionRequest { txn } => {
            out.push(TAG_VERSION_REQUEST);
            put_u64(out, txn.index());
        }
        Msg::VersionReply { txn, versions } => {
            out.push(TAG_VERSION_REPLY);
            put_u64(out, txn.index());
            put_versions(out, versions);
        }
        Msg::PolicyGossip { policy_id, version } => {
            out.push(TAG_POLICY_GOSSIP);
            put_u64(out, policy_id.index());
            put_u64(out, version.0);
        }
        Msg::AdminPublish { policy_id, version } => {
            out.push(TAG_ADMIN_PUBLISH);
            put_u64(out, policy_id.index());
            put_u64(out, version.0);
        }
        Msg::AdminPublishPolicy { policy } => {
            out.push(TAG_ADMIN_PUBLISH_POLICY);
            put_policy(out, policy);
        }
        Msg::Batch(inner) => {
            assert!(!nested, "Msg::Batch is never nested");
            out.push(TAG_BATCH);
            put_u32(out, inner.len() as u32);
            for m in inner {
                put_msg(out, m, true);
            }
        }
        Msg::Inquiry { txn, from_server } => {
            out.push(TAG_INQUIRY);
            put_u64(out, txn.index());
            put_u64(out, from_server.index());
        }
        Msg::InquiryReply { txn, answer } => {
            out.push(TAG_INQUIRY_REPLY);
            put_u64(out, txn.index());
            match answer {
                InquiryAnswer::Decided(d) => {
                    out.push(0);
                    put_decision(out, *d);
                }
                InquiryAnswer::Unknown => out.push(1),
            }
        }
    }
}

fn get_msg(r: &mut Reader<'_>, nested: bool) -> Result<Msg> {
    match r.u8()? {
        TAG_BEGIN => Ok(Msg::Begin {
            spec: get_spec(r)?,
            credentials: get_credentials(r)?,
        }),
        TAG_EXEC_QUERY => {
            let txn = TxnId::new(r.u64()?);
            let query_index = r.usize()?;
            let query = Arc::new(get_query(r)?);
            let user = UserId::new(r.u64()?);
            let credentials: Arc<[Credential]> = get_credentials(r)?.into();
            let evaluate_proof = r.bool()?;
            let pin_versions = get_versions(r)?;
            let n = r.count()?;
            let mut capabilities = Vec::with_capacity(n);
            for _ in 0..n {
                capabilities.push(get_capability(r)?);
            }
            Ok(Msg::ExecQuery {
                txn,
                query_index,
                query,
                user,
                credentials,
                evaluate_proof,
                pin_versions,
                capabilities,
            })
        }
        TAG_QUERY_DONE => {
            let txn = TxnId::new(r.u64()?);
            let query_index = r.usize()?;
            let ok = r.bool()?;
            let proof = match r.u8()? {
                0 => None,
                1 => Some(get_proof(r)?),
                _ => return Err(WireError::Malformed("option")),
            };
            let capability = match r.u8()? {
                0 => None,
                1 => Some(get_capability(r)?),
                _ => return Err(WireError::Malformed("option")),
            };
            Ok(Msg::QueryDone {
                txn,
                query_index,
                ok,
                proof,
                capability,
            })
        }
        TAG_PREPARE_TO_VALIDATE => {
            let txn = TxnId::new(r.u64()?);
            let new_query = match r.u8()? {
                0 => None,
                1 => {
                    let index = r.usize()?;
                    Some((index, Arc::new(get_query(r)?)))
                }
                _ => return Err(WireError::Malformed("option")),
            };
            let user = UserId::new(r.u64()?);
            let credentials: Arc<[Credential]> = get_credentials(r)?.into();
            Ok(Msg::PrepareToValidate {
                txn,
                new_query,
                user,
                credentials,
            })
        }
        TAG_VALIDATE_REPLY => Ok(Msg::ValidateReply {
            txn: TxnId::new(r.u64()?),
            reply: get_reply(r)?,
        }),
        TAG_PREPARE_TO_COMMIT => {
            let txn = TxnId::new(r.u64()?);
            let validate = r.bool()?;
            let n = r.count()?;
            let mut expected_queries = Vec::with_capacity(n);
            for _ in 0..n {
                expected_queries.push(r.usize()?);
            }
            Ok(Msg::PrepareToCommit {
                txn,
                validate,
                expected_queries,
            })
        }
        TAG_COMMIT_REPLY => Ok(Msg::CommitReply {
            txn: TxnId::new(r.u64()?),
            reply: get_reply(r)?,
        }),
        TAG_UPDATE => Ok(Msg::Update {
            txn: TxnId::new(r.u64()?),
            targets: get_versions(r)?,
            in_commit: r.bool()?,
        }),
        TAG_DECISION => Ok(Msg::Decision {
            txn: TxnId::new(r.u64()?),
            decision: get_decision(r)?,
        }),
        TAG_ACK => Ok(Msg::Ack {
            txn: TxnId::new(r.u64()?),
        }),
        TAG_VERSION_REQUEST => Ok(Msg::VersionRequest {
            txn: TxnId::new(r.u64()?),
        }),
        TAG_VERSION_REPLY => Ok(Msg::VersionReply {
            txn: TxnId::new(r.u64()?),
            versions: get_versions(r)?,
        }),
        TAG_POLICY_GOSSIP => Ok(Msg::PolicyGossip {
            policy_id: PolicyId::new(r.u64()?),
            version: PolicyVersion(r.u64()?),
        }),
        TAG_ADMIN_PUBLISH => Ok(Msg::AdminPublish {
            policy_id: PolicyId::new(r.u64()?),
            version: PolicyVersion(r.u64()?),
        }),
        TAG_ADMIN_PUBLISH_POLICY => Ok(Msg::AdminPublishPolicy {
            policy: get_policy(r)?,
        }),
        TAG_BATCH => {
            if nested {
                return Err(WireError::Malformed("nested batch"));
            }
            let n = r.count()?;
            let mut inner = Vec::with_capacity(n);
            for _ in 0..n {
                inner.push(get_msg(r, true)?);
            }
            Ok(Msg::Batch(inner))
        }
        TAG_INQUIRY => Ok(Msg::Inquiry {
            txn: TxnId::new(r.u64()?),
            from_server: ServerId::new(r.u64()?),
        }),
        TAG_INQUIRY_REPLY => {
            let txn = TxnId::new(r.u64()?);
            let answer = match r.u8()? {
                0 => InquiryAnswer::Decided(get_decision(r)?),
                1 => InquiryAnswer::Unknown,
                tag => {
                    return Err(WireError::BadTag {
                        what: "InquiryAnswer",
                        tag,
                    })
                }
            };
            Ok(Msg::InquiryReply { txn, answer })
        }
        tag => Err(WireError::BadTag { what: "Msg", tag }),
    }
}

/// Encodes a message into a payload (version byte + tag + body), without
/// the frame length prefix.
#[must_use]
pub fn encode_msg(msg: &Msg) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(WIRE_VERSION);
    put_msg(&mut out, msg, false);
    out
}

/// Decodes one payload produced by [`encode_msg`].
///
/// # Errors
///
/// Returns a [`WireError`] for any truncated, corrupted or wrong-version
/// payload; never panics on untrusted input.
pub fn decode_msg(payload: &[u8]) -> Result<Msg> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::TooLarge(payload.len()));
    }
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let msg = get_msg(&mut r, false)?;
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(msg)
}

/// Writes one framed message (`u32le` length + payload) to `w`.
///
/// Does not flush: callers batching several messages per round flush once
/// at the round boundary.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame(w: &mut impl Write, msg: &Msg) -> io::Result<usize> {
    let payload = encode_msg(msg);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    Ok(4 + payload.len())
}

/// Reads one frame's payload from `r`.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer closed
/// the connection between messages); EOF in the middle of a frame is an
/// [`io::ErrorKind::UnexpectedEof`] error. A length prefix beyond
/// [`MAX_FRAME_LEN`] is reported as [`io::ErrorKind::InvalidData`] before
/// any allocation.
///
/// # Errors
///
/// Propagates I/O errors from the underlying reader.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::TooLarge(len),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Msg) -> Msg {
        let payload = encode_msg(msg);
        decode_msg(&payload).expect("decodes")
    }

    #[test]
    fn ack_round_trips() {
        match round_trip(&Msg::Ack { txn: TxnId::new(7) }) {
            Msg::Ack { txn } => assert_eq!(txn, TxnId::new(7)),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn framing_round_trips_through_a_byte_stream() {
        let msgs = vec![
            Msg::VersionRequest { txn: TxnId::new(1) },
            Msg::Decision {
                txn: TxnId::new(2),
                decision: Decision::Abort,
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = io::Cursor::new(buf);
        let mut seen = 0;
        while let Some(payload) = read_frame(&mut cursor).unwrap() {
            decode_msg(&payload).unwrap();
            seen += 1;
        }
        assert_eq!(seen, msgs.len());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut payload = encode_msg(&Msg::Ack { txn: TxnId::new(1) });
        payload[0] = WIRE_VERSION + 1;
        assert_eq!(
            decode_msg(&payload).unwrap_err(),
            WireError::BadVersion(WIRE_VERSION + 1)
        );
    }

    #[test]
    fn truncation_is_rejected_not_panicking() {
        let payload = encode_msg(&Msg::VersionReply {
            txn: TxnId::new(3),
            versions: [(PolicyId::new(0), PolicyVersion(4))].into(),
        });
        for cut in 0..payload.len() {
            assert!(decode_msg(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_msg(&Msg::Ack { txn: TxnId::new(1) });
        payload.push(0);
        assert_eq!(
            decode_msg(&payload).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn nested_batch_is_rejected() {
        // Hand-build batch-in-batch bytes: the encoder refuses to produce
        // them, so splice an inner batch tag manually.
        let mut payload = vec![WIRE_VERSION, TAG_BATCH];
        put_u32(&mut payload, 1);
        payload.push(TAG_BATCH);
        put_u32(&mut payload, 0);
        assert_eq!(
            decode_msg(&payload).unwrap_err(),
            WireError::Malformed("nested batch")
        );
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn clean_eof_is_none_mid_frame_eof_is_error() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut io::Cursor::new(empty)).unwrap().is_none());
        let partial = [5u8, 0, 0, 0, 1, 2];
        let err = read_frame(&mut io::Cursor::new(&partial[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
