//! Deterministic, seeded transport fault injection for the socket runtime.
//!
//! The threaded cluster's [`FaultPlan`] perturbs messages as in-memory
//! objects; this module perturbs them as *bytes on a stream*. A
//! [`NetFaultPlan`] carries the same per-edge rule / seeded-splitmix64
//! shape (drop, duplicate, delay) plus the faults only a wire can suffer:
//! payload byte corruption, mid-frame truncation, and hard disconnects.
//! Every stream write in [`crate::NetCluster`] and [`crate::ServerHost`]
//! funnels through a `NetFabric` choke point; when no plan is armed the
//! choke point is one relaxed atomic load, so a faults-disabled run is
//! byte-identical in behaviour to a build without the layer.
//!
//! # Determinism
//!
//! As in the channel fabric, every probabilistic decision is a pure
//! function of `(plan seed, edge, edge-local sequence number, message
//! kind)` via splitmix64 — per-edge fault patterns are replayable by seed
//! even though thread and socket timing are not.
//!
//! # Corruption is always detectable
//!
//! The codec is length-prefixed with no checksum, so an arbitrary bit
//! flip *could* decode into a different valid message — which would be a
//! silent payload mutation no commit protocol can survive. Real links
//! don't work that way: Ethernet/TCP checksums turn almost every flip
//! into a *detected* loss. `corrupt_payload` models that contract: it
//! flips a seeded payload bit and, if the mutated bytes still decode, it
//! additionally clobbers the version byte so the receiver always observes
//! a [`WireError`] (counted as a decode error, mapped to the reply
//! deadline) and never a forged protocol message.
//!
//! [`FaultPlan`]: safetx_runtime::FaultPlan
//! [`WireError`]: crate::WireError

use crate::wire::decode_msg;
use safetx_metrics::FaultCounters;
use safetx_runtime::{CrashPoint, CrashRule, MsgKind, Peer, PeerMatch};
use safetx_types::ServerId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Duration;

/// A per-edge probabilistic transport fault rule. Probabilities are in
/// permille; a frame is subject to the *first* rule whose `from`/`to`
/// matchers cover its edge (same first-match semantics as the threaded
/// [`EdgeRule`](safetx_runtime::EdgeRule)).
#[derive(Debug, Clone, Copy, Default)]
pub struct NetEdgeRule {
    /// Sender matcher.
    pub from: PeerMatch,
    /// Receiver matcher.
    pub to: PeerMatch,
    /// Chance the frame is silently dropped (never written).
    pub drop_permille: u32,
    /// Chance the frame is written twice back-to-back.
    pub duplicate_permille: u32,
    /// Chance the frame is held back before being written. On a FIFO
    /// stream this delays everything behind it too — head-of-line
    /// blocking, which is exactly what a slow link does.
    pub delay_permille: u32,
    /// Lower bound of the injected delay, microseconds.
    pub delay_min_us: u64,
    /// Upper bound of the injected delay, microseconds.
    pub delay_max_us: u64,
    /// Chance the frame's payload is bit-flipped (always detected by the
    /// receiver's decoder; see the module docs).
    pub corrupt_permille: u32,
    /// Chance the frame is cut off mid-write and the stream killed — the
    /// receiver sees a framing desync / unexpected EOF.
    pub truncate_permille: u32,
    /// Chance the stream is hard-closed instead of carrying the frame.
    pub disconnect_permille: u32,
}

/// A complete seeded transport fault schedule for one net-cluster run.
///
/// Crash rules reuse the threaded runtime's [`CrashRule`]: the victim is
/// a [`ServerHost`](crate::ServerHost) event loop, and the protocol
/// moments ([`CrashPoint`]) are interpreted against the frames it
/// receives and sends.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    /// Seed for every probabilistic roll.
    pub seed: u64,
    /// Probabilistic per-edge rules (first match wins).
    pub rules: Vec<NetEdgeRule>,
    /// Fire-once server crash points.
    pub crashes: Vec<CrashRule>,
}

impl NetFaultPlan {
    /// A ready-made chaos mix mirroring [`FaultPlan::chaos`]: one
    /// `Any → Any` rule whose probabilities derive from `seed`.
    /// Drop/duplicate stay ≤ 3%, delays ≤ 2 ms, corruption ≤ 2%, and the
    /// stream-killing faults (truncate, disconnect) ≤ 1% each so runs
    /// with a sane reply timeout and bounded reconnect budget still make
    /// progress.
    ///
    /// [`FaultPlan::chaos`]: safetx_runtime::FaultPlan::chaos
    #[must_use]
    pub fn chaos(seed: u64) -> NetFaultPlan {
        let r = |salt: u64, modulo: u64| splitmix64(seed ^ salt.wrapping_mul(0x9e37_79b9)) % modulo;
        NetFaultPlan {
            seed,
            rules: vec![NetEdgeRule {
                from: PeerMatch::Any,
                to: PeerMatch::Any,
                drop_permille: r(1, 31) as u32,
                duplicate_permille: r(2, 31) as u32,
                delay_permille: 20 + r(3, 60) as u32,
                delay_min_us: 20,
                delay_max_us: 200 + r(4, 1800),
                corrupt_permille: r(5, 21) as u32,
                truncate_permille: r(6, 11) as u32,
                disconnect_permille: r(7, 11) as u32,
            }],
            crashes: Vec::new(),
        }
    }

    /// The fault decision for one frame on `from → to`, given the
    /// edge-local sequence number of that frame. Same base-hash shape as
    /// the threaded fabric so edges roll identically across runtimes.
    pub(crate) fn roll(&self, from: Peer, to: Peer, kind: MsgKind, seq: u64) -> NetVerdict {
        let Some(rule) = self
            .rules
            .iter()
            .find(|r| r.from.matches(from) && r.to.matches(to))
        else {
            return NetVerdict::Deliver;
        };
        let base = self
            .seed
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add((from.index() as u64) << 32)
            .wrapping_add((to.index() as u64) << 16)
            .wrapping_add(kind.salt())
            ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let sub = |salt: u64| splitmix64(base.wrapping_add(salt));
        if sub(1) % 1000 < u64::from(rule.drop_permille) {
            return NetVerdict::Drop;
        }
        if sub(2) % 1000 < u64::from(rule.duplicate_permille) {
            return NetVerdict::Duplicate;
        }
        if sub(3) % 1000 < u64::from(rule.delay_permille) {
            let span = rule.delay_max_us.saturating_sub(rule.delay_min_us) + 1;
            let us = rule.delay_min_us + sub(4) % span;
            return NetVerdict::Delay(Duration::from_micros(us));
        }
        if sub(5) % 1000 < u64::from(rule.corrupt_permille) {
            return NetVerdict::Corrupt { roll: sub(6) };
        }
        if sub(7) % 1000 < u64::from(rule.truncate_permille) {
            return NetVerdict::Truncate { roll: sub(8) };
        }
        if sub(9) % 1000 < u64::from(rule.disconnect_permille) {
            return NetVerdict::Disconnect;
        }
        NetVerdict::Deliver
    }
}

/// What the frame-layer choke point does with one outbound frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NetVerdict {
    /// Write the frame as-is.
    Deliver,
    /// Never write the frame (silent loss).
    Drop,
    /// Write the frame twice back-to-back.
    Duplicate,
    /// Sleep, then write the frame (head-of-line blocking).
    Delay(Duration),
    /// Flip payload bits (guaranteed-detectable; see module docs).
    Corrupt {
        /// Seeded roll choosing which bit to flip.
        roll: u64,
    },
    /// Write a strict prefix of the frame, then kill the stream.
    Truncate {
        /// Seeded roll choosing the cut point.
        roll: u64,
    },
    /// Kill the stream without writing the frame.
    Disconnect,
}

/// Flips one seeded payload bit, then guarantees the receiver's decoder
/// refuses the result: if the mutated payload still decodes (the codec
/// has no checksum), the version byte is clobbered too — modeling a
/// link-layer CRC that converts corruption into detected loss.
pub(crate) fn corrupt_payload(payload: &mut [u8], roll: u64) {
    if payload.is_empty() {
        return;
    }
    let pos = (roll as usize) % payload.len();
    let bit = 1u8 << ((roll >> 32) % 8);
    payload[pos] ^= bit;
    if decode_msg(payload).is_ok() {
        payload[0] ^= 0x80;
    }
}

/// The cut point for a truncated frame of `total` bytes: a strict prefix
/// length in `[1, total - 1]` (partial length prefix or partial payload,
/// both desync the receiver's framing).
pub(crate) fn truncate_len(total: usize, roll: u64) -> usize {
    debug_assert!(total >= 2);
    1 + (roll as usize) % (total - 1)
}

/// An armed plan plus its fire-once crash flags (mirror of the threaded
/// `ArmedPlan`).
struct ArmedNetPlan {
    plan: NetFaultPlan,
    fired: Vec<AtomicBool>,
}

impl ArmedNetPlan {
    fn new(plan: NetFaultPlan) -> ArmedNetPlan {
        let fired = plan
            .crashes
            .iter()
            .map(|_| AtomicBool::new(false))
            .collect();
        ArmedNetPlan { plan, fired }
    }

    fn take_crash(
        &self,
        server: ServerId,
        pred: impl Fn(CrashPoint) -> bool,
    ) -> Option<CrashPoint> {
        for (rule, fired) in self.plan.crashes.iter().zip(&self.fired) {
            if rule.server == server && pred(rule.point) && !fired.swap(true, Ordering::AcqRel) {
                return Some(rule.point);
            }
        }
        None
    }
}

/// Lock-free transport-fault counters, merged into
/// [`safetx_metrics::FaultCounters`] by the cluster.
#[derive(Debug, Default)]
pub(crate) struct NetFaultStats {
    pub(crate) dropped: AtomicU64,
    pub(crate) delayed: AtomicU64,
    pub(crate) duplicated: AtomicU64,
    pub(crate) corrupted: AtomicU64,
    pub(crate) truncated: AtomicU64,
    pub(crate) disconnects: AtomicU64,
    /// Host event loops torn down by a crash (scheduled or harness-driven).
    pub(crate) server_crashes: AtomicU64,
    /// Hosts rebuilt from their WAL after a crash.
    pub(crate) recoveries: AtomicU64,
}

impl NetFaultStats {
    pub(crate) fn snapshot(&self) -> FaultCounters {
        FaultCounters {
            faults_dropped: self.dropped.load(Ordering::Relaxed),
            faults_delayed: self.delayed.load(Ordering::Relaxed),
            faults_duplicated: self.duplicated.load(Ordering::Relaxed),
            faults_corrupted: self.corrupted.load(Ordering::Relaxed),
            faults_truncated: self.truncated.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            server_crashes: self.server_crashes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            ..FaultCounters::default()
        }
    }
}

/// The shared frame-layer choke point: every stream write in the net
/// runtime consults this fabric. Disarmed (the default), `verdict` is one
/// relaxed atomic load and an early return.
#[derive(Debug, Default)]
pub(crate) struct NetFabric {
    enabled: AtomicBool,
    armed: RwLock<Option<ArmedNetPlan>>,
    pub(crate) stats: NetFaultStats,
}

impl std::fmt::Debug for ArmedNetPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArmedNetPlan")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl NetFabric {
    /// Arms `plan`; subsequent writes roll against it.
    pub(crate) fn arm(&self, plan: NetFaultPlan) {
        *self.armed.write().expect("fabric lock") = Some(ArmedNetPlan::new(plan));
        self.enabled.store(true, Ordering::Release);
    }

    /// Disarms the fabric; writes pass through untouched again.
    pub(crate) fn disarm(&self) {
        self.enabled.store(false, Ordering::Release);
        *self.armed.write().expect("fabric lock") = None;
    }

    /// The fault decision for one outbound frame.
    pub(crate) fn verdict(&self, from: Peer, to: Peer, kind: MsgKind, seq: u64) -> NetVerdict {
        if !self.enabled.load(Ordering::Relaxed) {
            return NetVerdict::Deliver;
        }
        let guard = self.armed.read().expect("fabric lock");
        match guard.as_ref() {
            Some(armed) => armed.plan.roll(from, to, kind, seq),
            None => NetVerdict::Deliver,
        }
    }

    /// Consumes (at most once) a crash rule for `server` matching `pred`.
    pub(crate) fn take_crash(
        &self,
        server: ServerId,
        pred: impl Fn(CrashPoint) -> bool,
    ) -> Option<CrashPoint> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let guard = self.armed.read().expect("fabric lock");
        guard
            .as_ref()
            .and_then(|armed| armed.take_crash(server, pred))
    }
}

/// splitmix64 — local copy of the runtime crate's seeded generator (the
/// original is crate-private; the constants must stay in lockstep so the
/// same seed explores comparable intensities across fabrics).
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_msg;
    use safetx_core::Msg;
    use safetx_types::TxnId;

    #[test]
    fn rolls_are_deterministic_per_edge() {
        let plan = NetFaultPlan::chaos(7);
        let a = Peer::Coordinator;
        let b = Peer::Server(ServerId::new(1));
        for seq in 0..200 {
            assert_eq!(
                plan.roll(a, b, MsgKind::ExecQuery, seq),
                plan.roll(a, b, MsgKind::ExecQuery, seq),
            );
        }
    }

    #[test]
    fn chaos_plans_differ_by_seed_and_stay_bounded() {
        let a = NetFaultPlan::chaos(1);
        let b = NetFaultPlan::chaos(2);
        assert!(
            (a.rules[0].drop_permille, a.rules[0].corrupt_permille)
                != (b.rules[0].drop_permille, b.rules[0].corrupt_permille)
        );
        for plan in [a, b] {
            let r = plan.rules[0];
            assert!(r.drop_permille <= 30);
            assert!(r.duplicate_permille <= 30);
            assert!(r.delay_max_us <= 2000);
            assert!(r.corrupt_permille <= 20);
            assert!(r.truncate_permille <= 10);
            assert!(r.disconnect_permille <= 10);
        }
    }

    #[test]
    fn corruption_is_always_refused_by_the_decoder() {
        let msgs = [
            Msg::Ack { txn: TxnId::new(7) },
            Msg::Inquiry {
                txn: TxnId::new(9),
                from_server: ServerId::new(0),
            },
        ];
        for msg in &msgs {
            for roll in 0..512u64 {
                let mut payload = encode_msg(msg);
                corrupt_payload(&mut payload, splitmix64(roll));
                assert!(
                    decode_msg(&payload).is_err(),
                    "corrupted payload decoded: roll {roll}"
                );
            }
        }
    }

    #[test]
    fn truncation_always_yields_a_strict_prefix() {
        for total in 2..64 {
            for roll in 0..64u64 {
                let cut = truncate_len(total, roll);
                assert!(cut >= 1 && cut < total, "cut {cut} of {total}");
            }
        }
    }

    #[test]
    fn disarmed_fabric_delivers_and_never_crashes() {
        let fabric = NetFabric::default();
        let v = fabric.verdict(
            Peer::Coordinator,
            Peer::Server(ServerId::new(0)),
            MsgKind::Decision,
            0,
        );
        assert_eq!(v, NetVerdict::Deliver);
        assert!(fabric.take_crash(ServerId::new(0), |_| true).is_none());
    }

    #[test]
    fn armed_crash_rules_fire_once_and_disarm_clears() {
        let fabric = NetFabric::default();
        fabric.arm(NetFaultPlan {
            seed: 0,
            rules: Vec::new(),
            crashes: vec![CrashRule {
                server: ServerId::new(1),
                point: CrashPoint::AfterSend(MsgKind::CommitReply),
            }],
        });
        let pred = |p: CrashPoint| p == CrashPoint::AfterSend(MsgKind::CommitReply);
        assert!(fabric.take_crash(ServerId::new(0), pred).is_none());
        assert!(fabric.take_crash(ServerId::new(1), pred).is_some());
        assert!(fabric.take_crash(ServerId::new(1), pred).is_none());
        fabric.disarm();
        assert_eq!(
            fabric.verdict(
                Peer::Coordinator,
                Peer::Server(ServerId::new(0)),
                MsgKind::Decision,
                0
            ),
            NetVerdict::Deliver
        );
    }
}
