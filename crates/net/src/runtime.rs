//! Unix-socket deployment of the safetx protocol state machines.
//!
//! Every protocol message crosses a real byte stream: each cloud server
//! runs as its own event loop behind a [`ServerHost`], each TM drives the
//! sans-io `TmCore` from [`NetCluster::execute`], and the two sides talk
//! exclusively through framed [`crate::wire`] messages over `UnixStream`s
//! (in-process duplex pairs by default; a multi-process deployment
//! connects the same hosts over filesystem sockets — see
//! `examples/net_processes.rs`).
//!
//! The batched-round + group-commit semantics of the threaded runtime are
//! preserved: a server drains up to `server_batch` decoded frames per
//! round, opens one WAL group around the round's protocol handling, runs
//! the round's proof evaluations as one data-plane batch, and coalesces
//! replies per peer into a single [`Msg::Batch`] frame. Peer disconnects
//! surface through the existing failure detector — a reply that never
//! arrives trips `ClusterConfig::reply_timeout` and the core aborts with
//! `AbortReason::ServerUnavailable`; reconnecting resumes traffic under
//! the peer's original logical id (see `safetx_core::coalesce_replies`
//! for why the id must survive the reconnect).

use crate::fault::{
    corrupt_payload, splitmix64, truncate_len, NetFabric, NetFaultPlan, NetVerdict,
};
use crate::wire::{decode_msg, encode_msg, read_frame, write_frame};
use crossbeam::channel::{unbounded, Receiver, Sender};
use safetx_core::{
    coalesce_replies, reply_counts_as_dropped, AbortReason, EvalSnapshot, Msg, ResourcePolicyMap,
    ServerCore, SharedCas, SharedCatalog, TmConfig, TmCore, TmEffect, TmEvent, TxnTermination,
    ValidationReply, VersionMap,
};
use safetx_metrics::{FaultCounters, TransportCounters};
use safetx_policy::{CaRegistry, CertificateAuthority, Credential};
use safetx_runtime::{
    resolve_batch, resolve_concurrency, ClusterConfig, CrashPoint, ExecutionResult, MsgKind, Peer,
};
use safetx_store::Wal;
use safetx_txn::{CoordinatorRecord, Decision, InquiryAnswer, QuerySpec, TransactionSpec, Vote};
use safetx_types::{CaId, PolicyId, PolicyVersion, ServerId, Timestamp, TxnId, UserId};
use std::collections::{BTreeSet, HashMap};
use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The logical address of a peer on a server's side of the wire: stable
/// for the peer's lifetime, including across reconnects (a replaced
/// connection keeps the id, so reply coalescing keyed by it never splits
/// or misroutes a round's envelope — the invariant documented on
/// `safetx_core::coalesce_replies`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetAddr(pub u64);

/// One side's transport accounting for one edge. Shared between the
/// thread that writes frames and the thread that reads them.
#[derive(Debug, Default)]
pub struct EdgeStats {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    reconnects: AtomicU64,
    decode_errors: AtomicU64,
}

impl EdgeStats {
    fn note_sent(&self, bytes: usize) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn note_received(&self, payload_bytes: usize) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        // The reader sees the payload; account the 4-byte length prefix so
        // both directions measure the same thing.
        self.bytes_received
            .fetch_add(payload_bytes as u64 + 4, Ordering::Relaxed);
    }

    fn note_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    fn note_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> TransportCounters {
        TransportCounters {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// A configuration closure applied on a server host's event loop.
type ConfigureFn = Box<dyn FnOnce(&mut ServerCore<NetAddr>) + Send>;

/// Inputs to a server host's event loop.
#[allow(clippy::large_enum_variant)]
enum HostInput {
    /// A decoded protocol frame from a connected peer.
    Proto(NetAddr, Msg),
    /// Harness-side configuration (seed data, install policies). Control
    /// plane only — it never crosses the wire.
    Configure(ConfigureFn, Sender<()>),
    /// Register (or replace) the connection carrying a peer's traffic.
    Attach(u64, UnixStream),
    /// A reader thread observed EOF or an I/O error on the connection of
    /// this (peer, generation); the host drops the matching writer.
    Detach(u64, u64),
    /// Protocol messages the host itself must place on the wire
    /// (post-recovery coordinator inquiries for in-doubt transactions).
    Emit(Vec<(NetAddr, Msg)>),
    /// Kill the event loop as if the process died: volatile state is
    /// lost, the core is salvaged (store + WAL) for a later restart.
    Crash,
    Shutdown,
}

/// What the fault fabric did with one outbound frame.
enum WireFate {
    /// The stream is still usable (frame written, dropped, duplicated…).
    Intact,
    /// The stream must be killed (mid-frame truncation or disconnect).
    Kill,
}

/// Writes one raw payload as a frame (`u32le` length + payload).
fn write_raw_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<usize> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(4 + payload.len())
}

/// The message kind a frame rolls under (a `Batch` envelope rolls under
/// its first inner message — one frame, one roll).
fn frame_kind(msg: &Msg) -> MsgKind {
    match msg {
        Msg::Batch(inner) => inner.first().map(MsgKind::of).unwrap_or(MsgKind::Other),
        other => MsgKind::of(other),
    }
}

/// Every protocol moment a frame carries (crash points match any inner
/// message of a coalesced envelope).
fn frame_kinds(msg: &Msg) -> Vec<MsgKind> {
    match msg {
        Msg::Batch(inner) => inner.iter().map(MsgKind::of).collect(),
        other => vec![MsgKind::of(other)],
    }
}

/// The single choke point every stream write funnels through: rolls the
/// frame against the armed fault plan and performs the verdict. Counts
/// frames it actually writes into `stats`; fault decisions are counted on
/// the fabric. `WireFate::Kill` (and any I/O error) means the caller must
/// tear the stream down — the generation-guarded reconnect paths take it
/// from there.
fn write_through_fabric<W: Write>(
    fabric: &NetFabric,
    from: Peer,
    to: Peer,
    seq: u64,
    writer: &mut W,
    msg: &Msg,
    stats: &EdgeStats,
) -> std::io::Result<WireFate> {
    match fabric.verdict(from, to, frame_kind(msg), seq) {
        NetVerdict::Deliver => {
            stats.note_sent(write_frame(writer, msg)?);
            Ok(WireFate::Intact)
        }
        NetVerdict::Drop => {
            fabric.stats.dropped.fetch_add(1, Ordering::Relaxed);
            Ok(WireFate::Intact)
        }
        NetVerdict::Duplicate => {
            fabric.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            let payload = encode_msg(msg);
            stats.note_sent(write_raw_frame(writer, &payload)?);
            stats.note_sent(write_raw_frame(writer, &payload)?);
            Ok(WireFate::Intact)
        }
        NetVerdict::Delay(by) => {
            fabric.stats.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(by);
            stats.note_sent(write_frame(writer, msg)?);
            Ok(WireFate::Intact)
        }
        NetVerdict::Corrupt { roll } => {
            fabric.stats.corrupted.fetch_add(1, Ordering::Relaxed);
            let mut payload = encode_msg(msg);
            corrupt_payload(&mut payload, roll);
            stats.note_sent(write_raw_frame(writer, &payload)?);
            Ok(WireFate::Intact)
        }
        NetVerdict::Truncate { roll } => {
            fabric.stats.truncated.fetch_add(1, Ordering::Relaxed);
            let payload = encode_msg(msg);
            let mut frame = Vec::with_capacity(4 + payload.len());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&payload);
            let cut = truncate_len(frame.len(), roll);
            writer.write_all(&frame[..cut])?;
            // Push the partial bytes onto the wire before the kill, so the
            // receiver really observes a mid-frame desync, not a clean cut.
            let _ = writer.flush();
            Ok(WireFate::Kill)
        }
        NetVerdict::Disconnect => {
            fabric.stats.disconnects.fetch_add(1, Ordering::Relaxed);
            Ok(WireFate::Kill)
        }
    }
}

/// A peer's connection as the host's event loop owns it.
struct PeerLink {
    /// Kept so shutdown can unblock the reader thread.
    stream: UnixStream,
    writer: BufWriter<UnixStream>,
    stats: Arc<EdgeStats>,
    /// Distinguishes this connection from a replaced one: a stale reader's
    /// `Detach` must not tear down the replacement.
    generation: u64,
    /// Outbound frame sequence on this connection — the fault fabric's
    /// per-frame roll input.
    seq: u64,
    reader: Option<JoinHandle<()>>,
}

/// One cloud server running as an event loop over byte streams.
///
/// The host owns the `ServerCore` and every connection to it. Frames are
/// decoded by per-connection reader threads and processed in batched
/// rounds identical to the threaded runtime's: protocol handling under one
/// WAL group, proof evaluation as one data-plane batch, replies coalesced
/// per peer into one frame.
pub struct ServerHost {
    /// The live loop's input channel; replaced on respawn after a crash.
    tx: Mutex<Sender<HostInput>>,
    handle: Mutex<Option<JoinHandle<()>>>,
    /// Server-side edge stats by peer id; survives reconnects and crashes.
    edges: Arc<Mutex<HashMap<u64, Arc<EdgeStats>>>>,
    /// Currently attached (not yet detached) connections.
    live_peers: Arc<AtomicUsize>,
    /// The fault fabric every frame this host writes rolls against.
    fabric: Arc<NetFabric>,
    /// Where a crashed loop parks its core (store + WAL — the durable
    /// state) until `respawn` picks it back up.
    salvage: Arc<Mutex<Option<ServerCore<NetAddr>>>>,
    epoch: Instant,
    batch: usize,
}

/// Spawns one host event loop, returning its input channel and handle.
fn spawn_host_loop(
    core: ServerCore<NetAddr>,
    epoch: Instant,
    batch: usize,
    edges: Arc<Mutex<HashMap<u64, Arc<EdgeStats>>>>,
    live_peers: Arc<AtomicUsize>,
    fabric: Arc<NetFabric>,
    salvage: Arc<Mutex<Option<ServerCore<NetAddr>>>>,
) -> (Sender<HostInput>, JoinHandle<()>) {
    let (tx, rx) = unbounded::<HostInput>();
    let loop_tx = tx.clone();
    let handle = std::thread::spawn(move || {
        host_loop(
            core,
            rx,
            loop_tx,
            epoch,
            batch.max(1),
            edges,
            live_peers,
            fabric,
            salvage,
        );
    });
    (tx, handle)
}

impl ServerHost {
    /// Spawns the host's event loop around a configured core, with no
    /// fault fabric armed (a standalone host injects no faults).
    #[must_use]
    pub fn spawn(core: ServerCore<NetAddr>, epoch: Instant, batch: usize) -> ServerHost {
        Self::spawn_with_fabric(core, epoch, batch, Arc::new(NetFabric::default()))
    }

    /// Spawns the host's event loop sharing the cluster's fault fabric.
    pub(crate) fn spawn_with_fabric(
        core: ServerCore<NetAddr>,
        epoch: Instant,
        batch: usize,
        fabric: Arc<NetFabric>,
    ) -> ServerHost {
        let edges: Arc<Mutex<HashMap<u64, Arc<EdgeStats>>>> = Arc::new(Mutex::new(HashMap::new()));
        let live_peers = Arc::new(AtomicUsize::new(0));
        let salvage: Arc<Mutex<Option<ServerCore<NetAddr>>>> = Arc::new(Mutex::new(None));
        let (tx, handle) = spawn_host_loop(
            core,
            epoch,
            batch,
            Arc::clone(&edges),
            Arc::clone(&live_peers),
            Arc::clone(&fabric),
            Arc::clone(&salvage),
        );
        ServerHost {
            tx: Mutex::new(tx),
            handle: Mutex::new(Some(handle)),
            edges,
            live_peers,
            fabric,
            salvage,
            epoch,
            batch,
        }
    }

    /// A clone of the live loop's sender.
    fn sender(&self) -> Sender<HostInput> {
        self.tx.lock().expect("host tx lock").clone()
    }

    /// Restarts the event loop around a recovered core. Edge stats, the
    /// fabric and the salvage slot carry over; connections do not — the
    /// process died, so every peer must re-attach.
    pub(crate) fn respawn(&self, core: ServerCore<NetAddr>) {
        let (tx, handle) = spawn_host_loop(
            core,
            self.epoch,
            self.batch,
            Arc::clone(&self.edges),
            Arc::clone(&self.live_peers),
            Arc::clone(&self.fabric),
            Arc::clone(&self.salvage),
        );
        *self.tx.lock().expect("host tx lock") = tx;
        let old = self
            .handle
            .lock()
            .expect("host handle lock")
            .replace(handle);
        if let Some(old) = old {
            // The crashed loop has already exited (or is draining its
            // links); joining here cannot block on live work.
            let _ = old.join();
        }
    }

    /// Kills the event loop as if the process died. The core lands in the
    /// salvage slot once the loop unwinds; poll [`ServerHost::crashed`].
    pub(crate) fn crash(&self) {
        let _ = self.sender().send(HostInput::Crash);
    }

    /// True once a crashed loop has parked its core for salvage.
    pub(crate) fn crashed(&self) -> bool {
        self.salvage.lock().expect("salvage lock").is_some()
    }

    /// Takes the salvaged core of a crashed loop, if it has landed.
    pub(crate) fn take_salvaged(&self) -> Option<ServerCore<NetAddr>> {
        self.salvage.lock().expect("salvage lock").take()
    }

    /// Joins the (exited) loop thread, if any.
    pub(crate) fn join_loop(&self) {
        if let Some(handle) = self.handle.lock().expect("host handle lock").take() {
            let _ = handle.join();
        }
    }

    /// Hands the host protocol messages to place on the wire itself
    /// (post-recovery coordinator inquiries). Ordered after any `attach`
    /// already sent, so the frames go out on the new connection.
    pub(crate) fn emit(&self, msgs: Vec<(NetAddr, Msg)>) {
        let _ = self.sender().send(HostInput::Emit(msgs));
    }

    /// Attaches (or replaces) the connection carrying peer `peer`'s
    /// traffic. The host reads frames from it and writes replies to it;
    /// attaching over an existing connection counts as a reconnect.
    pub fn attach(&self, peer: u64, stream: UnixStream) {
        let _ = self.sender().send(HostInput::Attach(peer, stream));
    }

    /// Applies a configuration closure on the event loop and waits for it.
    ///
    /// # Panics
    ///
    /// Panics when the host's thread has exited.
    pub fn configure(&self, f: impl FnOnce(&mut ServerCore<NetAddr>) + Send + 'static) {
        let (done_tx, done_rx) = unbounded();
        self.sender()
            .send(HostInput::Configure(Box::new(f), done_tx))
            .expect("host thread alive");
        done_rx.recv().expect("configuration applied");
    }

    /// How many connections are currently attached. A multi-process server
    /// can poll this to exit once its last client hangs up.
    #[must_use]
    pub fn live_peers(&self) -> usize {
        self.live_peers.load(Ordering::Acquire)
    }

    /// Server-side transport counters summed over this host's edges.
    #[must_use]
    pub fn transport_counters(&self) -> TransportCounters {
        let edges = self.edges.lock().expect("edges lock");
        edges.values().map(|e| e.snapshot()).sum()
    }

    /// Server-side counters for one peer's edge, if it ever attached.
    #[must_use]
    pub fn edge_counters(&self, peer: u64) -> Option<TransportCounters> {
        let edges = self.edges.lock().expect("edges lock");
        edges.get(&peer).map(|e| e.snapshot())
    }

    /// Stops the event loop and joins it (readers included).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.sender().send(HostInput::Shutdown);
        self.join_loop();
    }
}

impl Drop for ServerHost {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn now_since(epoch: Instant) -> Timestamp {
    Timestamp::from_micros(epoch.elapsed().as_micros() as u64)
}

/// Spawns the reader side of one connection: frames are decoded off the
/// stream and fed into the host's input channel; a payload that fails to
/// decode is counted and skipped (framing survives — the next length
/// prefix is still in phase); EOF or an I/O error reports a detach.
fn spawn_host_reader(
    stream: UnixStream,
    peer: u64,
    generation: u64,
    tx: Sender<HostInput>,
    stats: Arc<EdgeStats>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stream);
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            stats.note_received(payload.len());
            match decode_msg(&payload) {
                Ok(msg) => {
                    if tx.send(HostInput::Proto(NetAddr(peer), msg)).is_err() {
                        break;
                    }
                }
                Err(_) => stats.note_decode_error(),
            }
        }
        let _ = tx.send(HostInput::Detach(peer, generation));
    })
}

/// The server host's event loop: the socket-runtime analogue of the
/// threaded runtime's `server_loop` + `process_round`, with proof
/// evaluation inline (the loop is the server's single thread).
///
/// The loop exits in one of two ways. A `Shutdown` (or a closed channel)
/// is a clean stop. A crash — `HostInput::Crash` from the harness, or a
/// scheduled crash point firing inside a round — tears the loop down as
/// if the process died: `ServerCore::crash` wipes the volatile state and
/// the core (store + WAL, the durable half) lands in the salvage slot for
/// a later `respawn` + `recover_from_wal`.
#[allow(clippy::too_many_arguments)]
fn host_loop(
    mut core: ServerCore<NetAddr>,
    rx: Receiver<HostInput>,
    tx: Sender<HostInput>,
    epoch: Instant,
    batch: usize,
    edges: Arc<Mutex<HashMap<u64, Arc<EdgeStats>>>>,
    live_peers: Arc<AtomicUsize>,
    fabric: Arc<NetFabric>,
    salvage: Arc<Mutex<Option<ServerCore<NetAddr>>>>,
) {
    let server = core.id();
    let mut links: HashMap<u64, PeerLink> = HashMap::new();
    let mut next_generation = 0u64;
    let crashed = 'outer: loop {
        let Ok(first) = rx.recv() else { break false };
        // Collect one round: up to `batch` protocol messages already
        // queued; control inputs act as barriers exactly like the threaded
        // runtime's.
        let mut round: Vec<(NetAddr, Msg)> = Vec::new();
        let mut control = None;
        match first {
            HostInput::Proto(from, msg) => round.push((from, msg)),
            other => control = Some(other),
        }
        while control.is_none() && round.len() < batch {
            match rx.try_recv() {
                Ok(HostInput::Proto(from, msg)) => round.push((from, msg)),
                Ok(other) => control = Some(other),
                Err(_) => break,
            }
        }
        if !round.is_empty() && process_round(&mut core, epoch, round, &mut links, &fabric, server)
        {
            // A scheduled crash point fired mid-round.
            break 'outer true;
        }
        match control {
            None => {}
            Some(HostInput::Configure(f, done)) => {
                f(&mut core);
                let _ = done.send(());
            }
            Some(HostInput::Attach(peer, stream)) => {
                let stats = {
                    let mut edges = edges.lock().expect("edges lock");
                    Arc::clone(edges.entry(peer).or_default())
                };
                let generation = next_generation;
                next_generation += 1;
                let writer_stream = stream.try_clone().expect("clone unix stream");
                let reader = spawn_host_reader(
                    writer_stream.try_clone().expect("clone unix stream"),
                    peer,
                    generation,
                    tx.clone(),
                    Arc::clone(&stats),
                );
                let link = PeerLink {
                    stream,
                    writer: BufWriter::new(writer_stream),
                    stats,
                    generation,
                    seq: 0,
                    reader: Some(reader),
                };
                if let Some(old) = links.insert(peer, link) {
                    // A replaced connection: count the reconnect, unblock
                    // and join the old reader.
                    let _ = old.stream.shutdown(std::net::Shutdown::Both);
                    if let Some(handle) = old.reader {
                        let _ = handle.join();
                    }
                    links[&peer].stats.note_reconnect();
                } else {
                    live_peers.fetch_add(1, Ordering::Release);
                }
            }
            Some(HostInput::Detach(peer, generation))
                if links.get(&peer).is_some_and(|l| l.generation == generation) =>
            {
                let mut link = links.remove(&peer).expect("guard checked presence");
                if let Some(handle) = link.reader.take() {
                    let _ = handle.join();
                }
                live_peers.fetch_sub(1, Ordering::Release);
            }
            // A stale detach from a reader whose connection was already
            // replaced: the link (and its new reader) stay up.
            Some(HostInput::Detach(..)) => {}
            // Not collapsible into a guard: `send_frames` consumes `msgs`,
            // and match guards cannot move out of the scrutinee.
            #[allow(clippy::collapsible_match)]
            Some(HostInput::Emit(msgs)) => {
                if send_frames(&mut links, &fabric, server, msgs) {
                    break 'outer true;
                }
            }
            Some(HostInput::Crash) => break 'outer true,
            Some(HostInput::Shutdown) => break 'outer false,
            Some(HostInput::Proto(..)) => unreachable!("proto inputs join the round"),
        }
    };
    // Unblock and join every reader — on a crash this is the process's
    // sockets dying with it.
    for (_, mut link) in links.drain() {
        let _ = link.stream.shutdown(std::net::Shutdown::Both);
        if let Some(handle) = link.reader.take() {
            let _ = handle.join();
        }
    }
    live_peers.store(0, Ordering::Release);
    if crashed {
        // Volatile state (locks, in-flight rounds, decided memo) is gone;
        // the store and WAL survive for recovery.
        core.crash();
        fabric.stats.server_crashes.fetch_add(1, Ordering::Relaxed);
        *salvage.lock().expect("salvage lock") = Some(core);
    }
}

/// A proof evaluation deferred to the round's data-plane batch (mirrors
/// the threaded runtime's `EvalTask`).
enum EvalTask {
    Query {
        txn: TxnId,
        query_index: usize,
        query: Arc<QuerySpec>,
        user: UserId,
        credentials: Arc<[Credential]>,
        to: NetAddr,
    },
    Snapshot {
        txn: TxnId,
        snapshot: EvalSnapshot,
        to: NetAddr,
    },
}

/// Processes one batched round: protocol handling inline under one WAL
/// group, the round's proof evaluations as one data-plane batch, replies
/// coalesced per peer and flushed once per touched connection.
///
/// Returns `true` when a scheduled crash point fired: `BeforeReceive`
/// kills the server with the matching message (and the rest of the round)
/// unprocessed, `AfterReceive` right after processing it, `AfterSend`
/// right after the matching reply frame left — exactly the windows the
/// threaded fabric exposes, so the same recovery obligations arise.
fn process_round(
    core: &mut ServerCore<NetAddr>,
    epoch: Instant,
    round: Vec<(NetAddr, Msg)>,
    links: &mut HashMap<u64, PeerLink>,
    fabric: &NetFabric,
    server: ServerId,
) -> bool {
    // A Batch envelope is by definition its inner messages in order;
    // flatten up front so crash points cut at message granularity.
    let mut flat: Vec<(NetAddr, Msg)> = Vec::new();
    for (from, msg) in round {
        match msg {
            Msg::Batch(inner) => flat.extend(inner.into_iter().map(|m| (from, m))),
            other => flat.push((from, other)),
        }
    }
    let mut crashed = false;
    let mut cut = flat.len();
    for (i, (_, msg)) in flat.iter().enumerate() {
        let kind = MsgKind::of(msg);
        if fabric
            .take_crash(server, |p| p == CrashPoint::BeforeReceive(kind))
            .is_some()
        {
            // The matching message dies with the server.
            cut = i;
            crashed = true;
            break;
        }
        if fabric
            .take_crash(server, |p| p == CrashPoint::AfterReceive(kind))
            .is_some()
        {
            cut = i + 1;
            crashed = true;
            break;
        }
    }
    flat.truncate(cut);

    let now = now_since(epoch);
    let mut inline: Vec<(NetAddr, Msg)> = Vec::new();
    let mut tasks: Vec<EvalTask> = Vec::new();
    core.begin_wal_group();
    {
        for (from, msg) in flat {
            if core.unsafe_baseline() {
                inline.extend(core.handle(now, from, msg));
                continue;
            }
            match msg {
                Msg::ExecQuery {
                    txn,
                    query_index,
                    query,
                    user,
                    credentials,
                    evaluate_proof: true,
                    pin_versions,
                    capabilities,
                } => {
                    let replies = core.handle(
                        now,
                        from,
                        Msg::ExecQuery {
                            txn,
                            query_index,
                            query: Arc::clone(&query),
                            user,
                            credentials: Arc::clone(&credentials),
                            evaluate_proof: false,
                            pin_versions,
                            capabilities,
                        },
                    );
                    let ok = replies
                        .iter()
                        .any(|(_, m)| matches!(m, Msg::QueryDone { ok: true, .. }));
                    if ok {
                        tasks.push(EvalTask::Query {
                            txn,
                            query_index,
                            query,
                            user,
                            credentials,
                            to: from,
                        });
                    } else {
                        inline.extend(replies);
                    }
                }
                Msg::PrepareToValidate {
                    txn,
                    new_query,
                    user,
                    credentials,
                } => {
                    if let Some(snapshot) =
                        core.register_validation(txn, new_query, user, credentials, from)
                    {
                        tasks.push(EvalTask::Snapshot {
                            txn,
                            snapshot,
                            to: from,
                        });
                    }
                }
                Msg::Update {
                    txn,
                    targets,
                    in_commit: false,
                } => {
                    core.data_plane().fast_forward(&targets);
                    match core.snapshot_txn(txn) {
                        Some(snapshot) => tasks.push(EvalTask::Snapshot {
                            txn,
                            snapshot,
                            to: from,
                        }),
                        None => inline.push((
                            from,
                            Msg::ValidateReply {
                                txn,
                                reply: ValidationReply {
                                    vote: Vote::Yes,
                                    truth: true,
                                    versions: VersionMap::new(),
                                    proofs: Vec::new(),
                                    conflict: false,
                                },
                            },
                        )),
                    }
                }
                other => inline.extend(core.handle(now, from, other)),
            }
        }
    }
    // The WAL group closes — performing the round's one physical sync —
    // before any reply leaves, so a vote never outruns the force it
    // acknowledges.
    core.end_wal_group();
    let mut outputs = inline;
    if !tasks.is_empty() {
        let data = core.data_plane();
        let mut batch = data.begin_batch(now_since(epoch));
        for task in tasks {
            match task {
                EvalTask::Query {
                    txn,
                    query_index,
                    query,
                    user,
                    credentials,
                    to,
                } => {
                    let proof = batch.evaluate_one(user, &credentials, &query);
                    outputs.push((
                        to,
                        Msg::QueryDone {
                            txn,
                            query_index,
                            ok: true,
                            proof: Some(proof),
                            capability: None,
                        },
                    ));
                }
                EvalTask::Snapshot { txn, snapshot, to } => {
                    let (truth, versions, proofs) = batch.evaluate_snapshot(&snapshot);
                    outputs.push((
                        to,
                        Msg::ValidateReply {
                            txn,
                            reply: ValidationReply {
                                vote: Vote::Yes,
                                truth,
                                versions,
                                proofs,
                                conflict: false,
                            },
                        },
                    ));
                }
            }
        }
    }
    // One frame (and one flush) per destination per round; a disconnected
    // peer is fine to ignore, like a dead channel in the threaded runtime.
    crashed | send_frames(links, fabric, server, coalesce_replies(outputs, |a| a.0))
}

/// Writes one frame per message through the fault fabric, flushing each.
/// Returns `true` when an `AfterSend` crash point fired — the matching
/// frame left the host, the rest of the batch dies with it.
fn send_frames(
    links: &mut HashMap<u64, PeerLink>,
    fabric: &NetFabric,
    server: ServerId,
    outputs: Vec<(NetAddr, Msg)>,
) -> bool {
    for (to, msg) in outputs {
        let Some(link) = links.get_mut(&to.0) else {
            continue;
        };
        // Consult the crash schedule before the write (the threaded fabric
        // consumes the rule at the send), crash after it: the frame — and
        // with it the force the server already performed — escapes first.
        let crash_after = frame_kinds(&msg).iter().any(|&kind| {
            fabric
                .take_crash(server, |p| p == CrashPoint::AfterSend(kind))
                .is_some()
        });
        let seq = link.seq;
        link.seq += 1;
        let fate = write_through_fabric(
            fabric,
            Peer::Server(server),
            Peer::Coordinator,
            seq,
            &mut link.writer,
            &msg,
            &link.stats,
        )
        .and_then(|fate| {
            link.writer.flush()?;
            Ok(fate)
        });
        match fate {
            Ok(WireFate::Intact) => {}
            Ok(WireFate::Kill) | Err(_) => {
                // Dead (or fabric-killed) connection: drop the stream; the
                // reader's detach handles the bookkeeping, and the TM side
                // reconnects with backoff.
                let _ = link.stream.shutdown(std::net::Shutdown::Both);
            }
        }
        if crash_after {
            return true;
        }
    }
    false
}

/// The TM pool's side of one edge.
struct TmLink {
    /// `None` while disconnected.
    writer: Mutex<Option<TmWriter>>,
    stats: Arc<EdgeStats>,
    /// Outbound frame sequence — the fault fabric's per-frame roll input.
    seq: AtomicU64,
    /// Consecutive reconnect attempts since the last healthy frame; the
    /// budget that bounds a reconnect storm.
    reconnect_attempts: AtomicU64,
}

impl TmLink {
    fn new() -> TmLink {
        TmLink {
            writer: Mutex::new(None),
            stats: Arc::new(EdgeStats::default()),
            seq: AtomicU64::new(0),
            reconnect_attempts: AtomicU64::new(0),
        }
    }
}

/// Most reconnect attempts the TM makes per outage before declaring the
/// edge unavailable (further sends drop until the server is restarted or
/// a healthy frame arrives, which resets the budget).
const RECONNECT_MAX_ATTEMPTS: u64 = 6;

/// Jittered exponential backoff before reconnect attempt `attempt`
/// (1-based): doubling from 50µs, capped at 2ms, ±50% deterministic
/// jitter — the same shape as the service layer's `RetryPolicy`.
fn reconnect_backoff(attempt: u64, edge: u64) -> Duration {
    let base = 50u64
        .saturating_mul(1u64 << (attempt - 1).min(6))
        .min(2_000);
    let roll = splitmix64(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ edge) % (base + 1);
    Duration::from_micros(base / 2 + roll)
}

struct TmWriter {
    /// Kept so disconnects can unblock the reader thread.
    stream: UnixStream,
    writer: BufWriter<UnixStream>,
}

/// Routes server→TM replies to the `execute` call driving that
/// transaction. Readers route by the `txn` field every TM-bound reply
/// carries; an unroutable reply is a stale straggler and is counted under
/// the same rule the in-process runtimes apply.
type Routes = Arc<Mutex<HashMap<u64, Sender<(ServerId, Msg)>>>>;

/// A cluster whose protocol traffic crosses real byte streams.
///
/// [`NetCluster::new`] runs everything in-process over `UnixStream::pair`
/// duplex sockets: one [`ServerHost`] event loop per server, with
/// [`NetCluster::execute`] driving the sans-io `TmCore` from the calling
/// thread exactly like `safetx_runtime::Cluster::execute` — same effects,
/// same decision log, same inline master consult, same reply-deadline
/// failure detector. [`NetCluster::connect`] instead attaches to server
/// processes listening on filesystem sockets (the hosts then live in
/// other processes and only the TM side runs here).
pub struct NetCluster {
    config: ClusterConfig,
    catalog: SharedCatalog,
    cas: SharedCas,
    epoch: Instant,
    next_txn: AtomicU64,
    /// In-process hosts (empty in `connect` mode).
    hosts: Vec<ServerHost>,
    /// Shared with the reader threads (they answer wire inquiries and
    /// reset reconnect budgets).
    links: Arc<Vec<TmLink>>,
    routes: Routes,
    readers: Mutex<Vec<JoinHandle<()>>>,
    dropped_replies: Arc<AtomicU64>,
    timeout_aborts: AtomicU64,
    /// Reconnect loops that exhausted their bounded attempt budget.
    reconnect_exhausted: AtomicU64,
    decision_log: Arc<Mutex<Wal<CoordinatorRecord>>>,
    /// The transport fault fabric every frame (both directions) rolls
    /// against; disabled until a plan is armed.
    fabric: Arc<NetFabric>,
}

/// The TM pool's logical peer id on every server's side of the wire. One
/// pool per cluster today; additional pools would claim distinct ids.
pub const TM_PEER: u64 = 0;

impl NetCluster {
    /// Spawns one in-process [`ServerHost`] per server and connects each
    /// over a fresh `UnixStream` duplex pair. Shares the threaded
    /// runtime's [`ClusterConfig`] surface: `server_batch` (and the
    /// `SAFETX_SERVER_BATCH` fallback), `wal_sync_cost`, `reply_timeout`
    /// and the protocol cell all mean the same thing here.
    ///
    /// # Panics
    ///
    /// Panics when socket pairs cannot be created.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        let catalog = SharedCatalog::new();
        let mut registry = CaRegistry::new();
        registry.register(CertificateAuthority::new(CaId::new(0), 0x7331));
        let cas = SharedCas::new(registry);
        let epoch = Instant::now();
        let batch = resolve_batch(&config);
        let fabric = Arc::new(NetFabric::default());

        let mut hosts = Vec::with_capacity(config.servers);
        for i in 0..config.servers {
            let id = ServerId::new(i as u64);
            let mut core = ServerCore::new(
                id,
                catalog.clone(),
                ResourcePolicyMap::single(PolicyId::new(0)),
                cas.clone(),
                config.variant,
            );
            if let Some(cost) = config.wal_sync_cost {
                core.set_wal_sync_cost(cost);
            }
            core.set_concurrency(resolve_concurrency(&config));
            hosts.push(ServerHost::spawn_with_fabric(
                core,
                epoch,
                batch,
                Arc::clone(&fabric),
            ));
        }

        let links: Vec<TmLink> = (0..config.servers).map(|_| TmLink::new()).collect();
        let cluster = NetCluster {
            config,
            catalog,
            cas,
            epoch,
            next_txn: AtomicU64::new(0),
            hosts,
            links: Arc::new(links),
            routes: Arc::new(Mutex::new(HashMap::new())),
            readers: Mutex::new(Vec::new()),
            dropped_replies: Arc::new(AtomicU64::new(0)),
            timeout_aborts: AtomicU64::new(0),
            reconnect_exhausted: AtomicU64::new(0),
            decision_log: Arc::new(Mutex::new(Wal::new())),
            fabric,
        };
        for i in 0..cluster.config.servers {
            let (tm_end, srv_end) = UnixStream::pair().expect("socketpair");
            cluster.hosts[i].attach(TM_PEER, srv_end);
            cluster.install_tm_connection(i, tm_end, false);
        }
        cluster
    }

    /// Builds a TM-only cluster over already-connected streams, one per
    /// server in server-id order (stream `i` talks to server *i*). The
    /// server hosts live elsewhere — typically other processes serving
    /// filesystem sockets — so [`NetCluster::configure_server`] and the
    /// policy helpers are unavailable; the server processes seed
    /// themselves. The local catalog still answers master consults, so
    /// publish the same policy versions here that the servers installed.
    #[must_use]
    pub fn connect(config: ClusterConfig, streams: Vec<UnixStream>) -> Self {
        assert_eq!(
            streams.len(),
            config.servers,
            "one stream per configured server"
        );
        let catalog = SharedCatalog::new();
        let mut registry = CaRegistry::new();
        registry.register(CertificateAuthority::new(CaId::new(0), 0x7331));
        let cas = SharedCas::new(registry);
        let links: Vec<TmLink> = (0..config.servers).map(|_| TmLink::new()).collect();
        let cluster = NetCluster {
            config,
            catalog,
            cas,
            epoch: Instant::now(),
            next_txn: AtomicU64::new(0),
            hosts: Vec::new(),
            links: Arc::new(links),
            routes: Arc::new(Mutex::new(HashMap::new())),
            readers: Mutex::new(Vec::new()),
            dropped_replies: Arc::new(AtomicU64::new(0)),
            timeout_aborts: AtomicU64::new(0),
            reconnect_exhausted: AtomicU64::new(0),
            decision_log: Arc::new(Mutex::new(Wal::new())),
            fabric: Arc::new(NetFabric::default()),
        };
        for (i, stream) in streams.into_iter().enumerate() {
            cluster.install_tm_connection(i, stream, false);
        }
        cluster
    }

    /// Installs a connection on link `i`: registers the writer and spawns
    /// the demultiplexing reader.
    fn install_tm_connection(&self, i: usize, stream: UnixStream, reconnect: bool) {
        let link = &self.links[i];
        if reconnect {
            link.stats.note_reconnect();
        }
        let reader_stream = stream.try_clone().expect("clone unix stream");
        let writer_stream = stream.try_clone().expect("clone unix stream");
        *link.writer.lock().expect("link writer lock") = Some(TmWriter {
            stream,
            writer: BufWriter::new(writer_stream),
        });
        self.spawn_tm_reader(i, reader_stream);
    }

    /// Spawns the demultiplexing reader for link `i`'s current connection.
    fn spawn_tm_reader(&self, i: usize, stream: UnixStream) {
        let ctx = TmReaderCtx {
            links: Arc::clone(&self.links),
            routes: Arc::clone(&self.routes),
            dropped: Arc::clone(&self.dropped_replies),
            decision_log: Arc::clone(&self.decision_log),
            fabric: Arc::clone(&self.fabric),
        };
        let from = ServerId::new(i as u64);
        let handle = std::thread::spawn(move || {
            tm_reader_loop(stream, from, &ctx);
        });
        self.readers.lock().expect("readers lock").push(handle);
    }

    /// The configuration this cluster was built with.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shared policy catalog (also the master version server: consults
    /// are answered inline from its latest snapshot).
    #[must_use]
    pub fn catalog(&self) -> &SharedCatalog {
        &self.catalog
    }

    /// The shared certificate authorities.
    #[must_use]
    pub fn cas(&self) -> &SharedCas {
        &self.cas
    }

    /// Protocol-time now (microseconds since cluster start).
    #[must_use]
    pub fn now(&self) -> Timestamp {
        now_since(self.epoch)
    }

    /// A fresh transaction id.
    #[must_use]
    pub fn next_txn_id(&self) -> TxnId {
        TxnId::new(self.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    /// Stale replies observed across every `execute` (same accounting rule
    /// as the in-process runtimes: acks never count, everything else
    /// does).
    #[must_use]
    pub fn dropped_replies(&self) -> u64 {
        self.dropped_replies.load(Ordering::Relaxed)
    }

    /// Failure counters: everything the transport fault fabric injected
    /// (drops, delays, duplicates, corruption, truncation, disconnects),
    /// crash/recovery counts, exhausted reconnect budgets, and the reply
    /// deadlines that fired (`timeout_aborts`). All zero on a clean run
    /// with no plan armed.
    #[must_use]
    pub fn fault_counters(&self) -> FaultCounters {
        let mut counters = self.fabric.stats.snapshot();
        counters.timeout_aborts = self.timeout_aborts.load(Ordering::Relaxed);
        counters.reconnect_exhausted = self.reconnect_exhausted.load(Ordering::Relaxed);
        counters
    }

    /// Arms a transport fault plan: every frame subsequently written on
    /// any edge (both directions) rolls against it, and scheduled server
    /// crashes fire at their protocol points. Replaces any armed plan and
    /// re-arms consumed one-shot rules.
    pub fn set_fault_plan(&self, plan: NetFaultPlan) {
        self.fabric.arm(plan);
    }

    /// Disarms the fault fabric: traffic flows clean again (accumulated
    /// fault counters are kept). Also reopens every edge's reconnect
    /// budget — the cap exists to bound reconnect storms *while faults
    /// rage*; once the network is declared healthy, an edge whose budget
    /// was exhausted mid-chaos must be reachable again (recovery and
    /// in-doubt resolution depend on it).
    pub fn clear_fault_plan(&self) {
        self.fabric.disarm();
        for link in self.links.iter() {
            link.reconnect_attempts.store(0, Ordering::Relaxed);
        }
    }

    /// Kills a server's event loop as if its process died: volatile state
    /// (locks, in-flight rounds, the decided memo) is lost, every one of
    /// its connections drops, and in-flight frames are gone. The store and
    /// WAL survive for [`NetCluster::restart_server`]. Blocks until the
    /// loop has unwound.
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range, in `connect` mode, or
    /// when the loop fails to unwind within ten seconds.
    pub fn crash_server(&self, server: ServerId) {
        let i = server.index() as usize;
        let host = self
            .hosts
            .get(i)
            .expect("in-process server host (crash is unavailable in connect mode)");
        host.crash();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !host.crashed() {
            assert!(Instant::now() < deadline, "server loop failed to unwind");
            std::thread::yield_now();
        }
        host.join_loop();
        // The TM side of the edge is dead too; sever it so sends fail fast
        // instead of filling a kernel buffer nobody reads.
        let link = &self.links[i];
        if let Some(writer) = link.writer.lock().expect("link writer lock").take() {
            let _ = writer.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Servers that crashed (scheduled or via [`NetCluster::crash_server`])
    /// and have not been restarted.
    #[must_use]
    pub fn crashed_servers(&self) -> Vec<ServerId> {
        self.hosts
            .iter()
            .enumerate()
            .filter(|(_, host)| host.crashed())
            .map(|(i, _)| ServerId::new(i as u64))
            .collect()
    }

    /// Restarts a crashed server: replays its WAL (`recover_from_wal`
    /// rebuilds the decided memo and re-acquires locks for in-doubt
    /// transactions), respawns the event loop, reconnects the TM edge
    /// under the server's stable peer id, and puts one wire
    /// [`Msg::Inquiry`] per in-doubt transaction on the new connection —
    /// the TM-side readers answer from the decision log. The inquiries
    /// cross the real (fault-subject) wire; a quiesced
    /// [`NetCluster::resolve_in_doubt`] is the lossless backstop.
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range, in `connect` mode, or
    /// when no salvaged core appears within ten seconds.
    pub fn restart_server(&self, server: ServerId) {
        let i = server.index() as usize;
        let host = self
            .hosts
            .get(i)
            .expect("in-process server host (restart is unavailable in connect mode)");
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut core = loop {
            if let Some(core) = host.take_salvaged() {
                break core;
            }
            assert!(Instant::now() < deadline, "no salvaged core to restart");
            std::thread::yield_now();
        };
        host.join_loop();
        let in_doubt = core.recover_from_wal();
        host.respawn(core);
        let (tm_end, srv_end) = UnixStream::pair().expect("socketpair");
        host.attach(TM_PEER, srv_end);
        self.links[i].reconnect_attempts.store(0, Ordering::Relaxed);
        self.install_tm_connection(i, tm_end, true);
        self.fabric.stats.recoveries.fetch_add(1, Ordering::Relaxed);
        let inquiries: Vec<(NetAddr, Msg)> = in_doubt
            .into_iter()
            .map(|txn| {
                (
                    NetAddr(TM_PEER),
                    Msg::Inquiry {
                        txn,
                        from_server: server,
                    },
                )
            })
            .collect();
        if !inquiries.is_empty() {
            host.emit(inquiries);
        }
    }

    /// Drives every live server's leftover transactions to a decision on a
    /// quiesced cluster (no concurrent `execute` calls): in-doubt
    /// (prepared-Yes) transactions get the decision-log answer under the
    /// cluster's termination variant; transactions that never reached a
    /// vote get a unilateral abort (their coordinator cannot have
    /// committed without the vote). Answers cross the real wire, so the
    /// probe loops until the hosts have drained them. Returns the number
    /// of transactions resolved.
    ///
    /// # Panics
    ///
    /// Panics when a transaction stays unresolved past the deadline — with
    /// the fabric disarmed that means a decision is genuinely
    /// unobtainable, which quiesced execution rules out.
    pub fn resolve_in_doubt(&self) -> usize {
        let mut resolved: BTreeSet<(usize, TxnId)> = BTreeSet::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut outstanding = 0usize;
            for (i, host) in self.hosts.iter().enumerate() {
                if host.crashed() {
                    continue;
                }
                let (probe_tx, probe_rx) = unbounded();
                host.configure(move |core| {
                    let _ = probe_tx.send((core.active_txn_ids(), core.in_doubt_txns()));
                });
                let (active, in_doubt) = probe_rx.recv().expect("probe reply");
                let in_doubt: BTreeSet<TxnId> = in_doubt.into_iter().collect();
                for txn in active {
                    outstanding += 1;
                    resolved.insert((i, txn));
                    let msg = if in_doubt.contains(&txn) {
                        let mut answer = {
                            let log = self.decision_log.lock().expect("decision log lock");
                            safetx_txn::answer_inquiry(txn, self.config.variant, log.records())
                        };
                        // Basic 2PC's blocking case (no record, no
                        // presumption): on a quiesced cluster the
                        // coordinator is gone for good, so the absence of
                        // a forced decision record proves no participant
                        // ever saw COMMIT — coordinator recovery decides
                        // ABORT, same rule as
                        // `safetx_txn::recover_coordinator`.
                        if !matches!(answer, InquiryAnswer::Decided(_)) {
                            answer = InquiryAnswer::Decided(Decision::Abort);
                        }
                        Msg::InquiryReply { txn, answer }
                    } else {
                        // Never voted ⇒ the coordinator cannot have
                        // committed this transaction; unilateral abort
                        // releases its locks.
                        Msg::Decision {
                            txn,
                            decision: Decision::Abort,
                        }
                    };
                    self.send_to(i, &msg);
                    self.flush_link(i);
                }
            }
            if outstanding == 0 {
                return resolved.len();
            }
            assert!(
                Instant::now() < deadline,
                "in-doubt resolution wedged: {outstanding} transaction(s) left"
            );
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// A copy of the coordinator-side decision log (every `ForceLog` and
    /// `Log` record the TM pool wrote, in order).
    #[must_use]
    pub fn decision_log_records(&self) -> Vec<CoordinatorRecord> {
        self.decision_log
            .lock()
            .expect("decision log lock")
            .records()
            .cloned()
            .collect()
    }

    /// Aggregated WAL accounting across the in-process hosts (empty in
    /// `connect` mode). Meaningful on a quiesced cluster.
    #[must_use]
    pub fn wal_stats(&self) -> safetx_metrics::WalStats {
        let mut total = safetx_metrics::WalStats::default();
        for host in &self.hosts {
            let (tx, rx) = unbounded();
            host.configure(move |core| {
                let _ = tx.send(core.wal_stats());
            });
            total.merge(&rx.recv().expect("wal stats probe"));
        }
        total
    }

    /// Transport counters summed over both sides of every edge.
    #[must_use]
    pub fn transport_counters(&self) -> TransportCounters {
        let tm: TransportCounters = self.links.iter().map(|l| l.stats.snapshot()).sum();
        let servers: TransportCounters =
            self.hosts.iter().map(ServerHost::transport_counters).sum();
        tm + servers
    }

    /// Both sides of one server's edge: `(tm_side, server_side)`. On a
    /// clean quiesced run frames are conserved — everything one side sent,
    /// the other received. `server_side` is all-zero in `connect` mode
    /// (the host lives in another process).
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range.
    #[must_use]
    pub fn edge_counters(&self, server: ServerId) -> (TransportCounters, TransportCounters) {
        let i = server.index() as usize;
        let tm = self.links[i].stats.snapshot();
        let srv = self
            .hosts
            .get(i)
            .and_then(|h| h.edge_counters(TM_PEER))
            .unwrap_or_default();
        (tm, srv)
    }

    /// Applies a configuration closure on a server's event loop and waits
    /// for it (seed data, install policies, add constraints).
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range, or in `connect` mode
    /// (remote server processes configure themselves).
    pub fn configure_server(
        &self,
        server: ServerId,
        f: impl FnOnce(&mut ServerCore<NetAddr>) + Send + 'static,
    ) {
        let host = self
            .hosts
            .get(server.index() as usize)
            .expect("in-process server host (configure is unavailable in connect mode)");
        host.configure(f);
    }

    /// Publishes a policy version and notifies every replica.
    pub fn publish_policy(&self, policy: safetx_policy::Policy) {
        let id = policy.id();
        let version = policy.version();
        self.catalog.publish(policy);
        for i in 0..self.hosts.len() {
            self.configure_server(ServerId::new(i as u64), move |core| {
                core.install_policy(id, version);
            });
        }
    }

    /// Installs a policy version at every replica without publishing a new
    /// catalog entry.
    pub fn install_everywhere(&self, policy: PolicyId, version: PolicyVersion) {
        for i in 0..self.hosts.len() {
            self.configure_server(ServerId::new(i as u64), move |core| {
                core.install_policy(policy, version);
            });
        }
    }

    /// Severs the byte stream to one server without touching the server's
    /// state — the wire fails, the process survives. In-flight replies are
    /// lost; the next `execute` that needs this server trips the reply
    /// deadline and aborts with `ServerUnavailable` (configure
    /// `ClusterConfig::reply_timeout`, or executions will block).
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range.
    pub fn disconnect_server(&self, server: ServerId) {
        let link = &self.links[server.index() as usize];
        if let Some(writer) = link.writer.lock().expect("link writer lock").take() {
            let _ = writer.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Replaces a severed connection with a fresh duplex pair under the
    /// server's original logical peer id, so reply coalescing keyed by
    /// that id spans the reconnect unchanged. Counted on both edges'
    /// `reconnects`.
    ///
    /// # Panics
    ///
    /// Panics when the server id is out of range or in `connect` mode.
    pub fn reconnect_server(&self, server: ServerId) {
        let i = server.index() as usize;
        let host = self
            .hosts
            .get(i)
            .expect("in-process server host (reconnect is driven externally in connect mode)");
        let (tm_end, srv_end) = UnixStream::pair().expect("socketpair");
        host.attach(TM_PEER, srv_end);
        self.install_tm_connection(i, tm_end, true);
    }

    /// Executes one transaction synchronously over the wire: the same
    /// blocking drive of the sans-io `TmCore` as the threaded runtime's
    /// `Cluster::execute`, except every send is an encoded frame and every
    /// reply arrives off a socket, demultiplexed to this call by
    /// transaction id.
    ///
    /// # Panics
    ///
    /// Panics when the core fails to terminate the transaction (a protocol
    /// bug, not an I/O condition).
    #[must_use]
    pub fn execute(&self, spec: &TransactionSpec, credentials: &[Credential]) -> ExecutionResult {
        let started = Instant::now();
        let txn = spec.id;
        let (reply_tx, reply_rx) = unbounded::<(ServerId, Msg)>();
        self.routes
            .lock()
            .expect("routes lock")
            .insert(txn.index(), reply_tx);

        let config = TmConfig::new(
            self.config.scheme,
            self.config.consistency,
            self.config.variant,
        );
        let mut core = TmCore::new(config, spec.clone(), credentials.to_vec(), self.now());
        let mut termination: Option<TxnTermination> = None;
        let reply_timeout = self.config.reply_timeout;

        let mut effects = core.start(self.now());
        loop {
            let mut consult_master = false;
            // Touched links flush once per effect batch, after the whole
            // batch is encoded — frames keep their protocol order and a
            // round's sends to one server share a syscall.
            let mut touched: Vec<usize> = Vec::new();
            for effect in effects {
                match effect {
                    TmEffect::Send(server, msg) => {
                        let i = server.index() as usize;
                        self.send_to(i, &msg);
                        if !touched.contains(&i) {
                            touched.push(i);
                        }
                    }
                    TmEffect::QueryMaster => consult_master = true,
                    TmEffect::ForceLog { record, .. } => {
                        self.decision_log
                            .lock()
                            .expect("decision log lock")
                            .force(record);
                    }
                    TmEffect::Log(record) => {
                        self.decision_log
                            .lock()
                            .expect("decision log lock")
                            .append(record);
                    }
                    TmEffect::ArmTimer(_) | TmEffect::Decided(_) => {}
                    TmEffect::Finished(t) => termination = Some(*t),
                }
            }
            for i in touched {
                self.flush_link(i);
            }
            if termination.is_some() {
                break;
            }
            if consult_master {
                let versions = self.catalog.latest_snapshot().1;
                effects = core.step(self.now(), TmEvent::MasterVersions { versions });
                continue;
            }
            // One reply (readers already flattened any Batch envelope), or
            // the deadline.
            let input = match reply_timeout {
                None => reply_rx.recv().ok(),
                Some(t) => reply_rx.recv_timeout(t).ok(),
            };
            let event = match input {
                None => TmEvent::ReplyTimeout,
                Some((from, msg)) => match tm_event(txn, from, msg) {
                    Ok(event) => event,
                    Err(counts_as_dropped) => {
                        if counts_as_dropped {
                            self.dropped_replies.fetch_add(1, Ordering::Relaxed);
                        }
                        effects = Vec::new();
                        continue;
                    }
                },
            };
            effects = core.step(self.now(), event);
        }

        // Deregister, then drain stragglers that raced the deregistration.
        self.routes
            .lock()
            .expect("routes lock")
            .remove(&txn.index());
        let mut driver_dropped = 0u64;
        while let Ok((_, msg)) = reply_rx.try_recv() {
            if reply_counts_as_dropped(&msg) {
                driver_dropped += 1;
            }
        }
        self.dropped_replies
            .fetch_add(driver_dropped + core.dropped_replies(), Ordering::Relaxed);

        let termination = termination.expect("core emitted Finished");
        if termination.outcome.abort_reason() == Some(AbortReason::ServerUnavailable) {
            self.timeout_aborts.fetch_add(1, Ordering::Relaxed);
        }
        ExecutionResult::from_termination(termination, started.elapsed())
    }

    /// Encodes and writes one frame to server `i` (through the fault
    /// fabric) without flushing. A down link first gets a bounded,
    /// backed-off reconnect attempt; once the budget is exhausted the
    /// frame drops — the reply deadline is the failure detector, and the
    /// edge presents as `ServerUnavailable`.
    fn send_to(&self, i: usize, msg: &Msg) {
        {
            let link = &self.links[i];
            let mut slot = link.writer.lock().expect("link writer lock");
            if slot.is_none() && !self.try_reconnect(i, &mut slot) {
                return;
            }
        }
        tm_send(&self.links, &self.fabric, i, msg);
    }

    /// One bounded reconnect attempt for link `i`, called with the
    /// writer slot held and empty. In-process mode only — `connect`-mode
    /// reconnects are driven externally — and never while the server is
    /// crashed (restart owns that handshake).
    fn try_reconnect(&self, i: usize, slot: &mut Option<TmWriter>) -> bool {
        let Some(host) = self.hosts.get(i) else {
            return false;
        };
        if host.crashed() {
            return false;
        }
        let link = &self.links[i];
        let attempt = link.reconnect_attempts.fetch_add(1, Ordering::Relaxed) + 1;
        if attempt > RECONNECT_MAX_ATTEMPTS {
            if attempt == RECONNECT_MAX_ATTEMPTS + 1 {
                self.reconnect_exhausted.fetch_add(1, Ordering::Relaxed);
            }
            return false;
        }
        std::thread::sleep(reconnect_backoff(attempt, i as u64));
        let (tm_end, srv_end) = UnixStream::pair().expect("socketpair");
        host.attach(TM_PEER, srv_end);
        link.stats.note_reconnect();
        let reader_stream = tm_end.try_clone().expect("clone unix stream");
        let writer_stream = tm_end.try_clone().expect("clone unix stream");
        *slot = Some(TmWriter {
            stream: tm_end,
            writer: BufWriter::new(writer_stream),
        });
        self.spawn_tm_reader(i, reader_stream);
        true
    }

    fn flush_link(&self, i: usize) {
        tm_flush(&self.links, i);
    }

    /// Stops every connection and host and joins all their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for link in self.links.iter() {
            if let Some(writer) = link.writer.lock().expect("link writer lock").take() {
                let _ = writer.stream.shutdown(std::net::Shutdown::Both);
            }
        }
        for handle in self.readers.lock().expect("readers lock").drain(..) {
            let _ = handle.join();
        }
        for host in self.hosts.drain(..) {
            host.shutdown();
        }
    }
}

impl Drop for NetCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Everything a TM-side reader needs beyond its stream: the links (to
/// write inquiry replies and reset reconnect budgets), the reply routes,
/// and the decision log it answers wire inquiries from.
struct TmReaderCtx {
    links: Arc<Vec<TmLink>>,
    routes: Routes,
    dropped: Arc<AtomicU64>,
    decision_log: Arc<Mutex<Wal<CoordinatorRecord>>>,
    fabric: Arc<NetFabric>,
}

/// Writes one frame on link `i` through the fault fabric, without
/// flushing. A missing writer is fine to ignore — the reply deadline (or
/// the reconnect path in `NetCluster::send_to`) is the failure detector.
fn tm_send(links: &[TmLink], fabric: &NetFabric, i: usize, msg: &Msg) {
    let link = &links[i];
    let mut slot = link.writer.lock().expect("link writer lock");
    let Some(tm_writer) = slot.as_mut() else {
        return;
    };
    let seq = link.seq.fetch_add(1, Ordering::Relaxed);
    let fate = write_through_fabric(
        fabric,
        Peer::Coordinator,
        Peer::Server(ServerId::new(i as u64)),
        seq,
        &mut tm_writer.writer,
        msg,
        &link.stats,
    );
    match fate {
        Ok(WireFate::Intact) => {}
        Ok(WireFate::Kill) | Err(_) => {
            let writer = slot.take().expect("writer present");
            let _ = writer.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Flushes link `i`'s writer, severing the connection on failure.
fn tm_flush(links: &[TmLink], i: usize) {
    let link = &links[i];
    let mut slot = link.writer.lock().expect("link writer lock");
    if let Some(tm_writer) = slot.as_mut() {
        if tm_writer.writer.flush().is_err() {
            let writer = slot.take().expect("writer present");
            let _ = writer.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Answers one wire [`Msg::Inquiry`] from a recovering server, but only
/// when the decision log holds an explicit decision record for the
/// transaction. Presumption-based answers (and the collecting-without-
/// decision inference) are deliberately NOT given here: while the cluster
/// is live a coordinator may still be mid-flight, and a presumed answer
/// could contradict the decision it is about to log. The quiesced
/// [`NetCluster::resolve_in_doubt`] applies the full termination protocol
/// once no coordinator can be in flight.
fn answer_wire_inquiry(ctx: &TmReaderCtx, txn: TxnId, from_server: ServerId) {
    let decision = {
        let log = ctx.decision_log.lock().expect("decision log lock");
        let found = log.records().find_map(|record| match record {
            CoordinatorRecord::Decision { txn: t, decision } if *t == txn => Some(*decision),
            _ => None,
        });
        found
    };
    let Some(decision) = decision else {
        return;
    };
    let i = from_server.index() as usize;
    if i >= ctx.links.len() {
        return;
    }
    let reply = Msg::InquiryReply {
        txn,
        answer: InquiryAnswer::Decided(decision),
    };
    tm_send(&ctx.links, &ctx.fabric, i, &reply);
    tm_flush(&ctx.links, i);
}

/// The TM-side reader for one edge: decodes frames, flattens coalesced
/// envelopes, answers recovery inquiries from the decision log, and
/// routes each other inner reply to the `execute` call driving its
/// transaction. Unroutable replies are stale stragglers, counted under
/// the shared rule (acks never count).
fn tm_reader_loop(stream: UnixStream, from: ServerId, ctx: &TmReaderCtx) {
    let i = from.index() as usize;
    let mut reader = BufReader::new(stream);
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        ctx.links[i].stats.note_received(payload.len());
        let msg = match decode_msg(&payload) {
            Ok(msg) => msg,
            Err(_) => {
                ctx.links[i].stats.note_decode_error();
                continue;
            }
        };
        // A decoded frame proves the edge is healthy: reopen the
        // reconnect budget.
        ctx.links[i].reconnect_attempts.store(0, Ordering::Relaxed);
        let msgs = match msg {
            Msg::Batch(inner) => inner,
            other => vec![other],
        };
        for msg in msgs {
            if let Msg::Inquiry { txn, from_server } = msg {
                answer_wire_inquiry(ctx, txn, from_server);
                continue;
            }
            route_reply(from, msg, &ctx.routes, &ctx.dropped);
        }
    }
}

/// Routes one server→TM message by its transaction id.
fn route_reply(from: ServerId, msg: Msg, routes: &Routes, dropped: &AtomicU64) {
    let txn = match reply_txn(&msg) {
        Some(txn) => txn,
        None => {
            // Server→TM traffic always carries a transaction id; anything
            // else is foreign and counted like any stale non-ack.
            if reply_counts_as_dropped(&msg) {
                dropped.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
    };
    let sender = {
        let routes = routes.lock().expect("routes lock");
        routes.get(&txn.index()).cloned()
    };
    match sender {
        Some(tx) => {
            if tx.send((from, msg)).is_err() && reply_counts_as_dropped(&Msg::Ack { txn }) {
                // Unreachable in practice (acks never count) — kept for
                // symmetry if the rule ever changes.
                dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        None => {
            if reply_counts_as_dropped(&msg) {
                dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The transaction a server→TM message belongs to.
fn reply_txn(msg: &Msg) -> Option<TxnId> {
    match msg {
        Msg::QueryDone { txn, .. }
        | Msg::ValidateReply { txn, .. }
        | Msg::CommitReply { txn, .. }
        | Msg::Ack { txn }
        | Msg::Inquiry { txn, .. }
        | Msg::InquiryReply { txn, .. }
        | Msg::VersionReply { txn, .. } => Some(*txn),
        _ => None,
    }
}

/// Converts a routed reply into the core event it carries (the socket
/// analogue of the threaded runtime's `coordinator_event`). `Err` is the
/// [`reply_counts_as_dropped`] verdict for a stale or foreign message.
fn tm_event(txn: TxnId, from: ServerId, msg: Msg) -> Result<TmEvent, bool> {
    match msg {
        Msg::QueryDone {
            txn: t,
            query_index,
            ok,
            proof,
            capability,
        } if t == txn => Ok(TmEvent::QueryDone {
            query_index,
            ok,
            proof,
            capability,
        }),
        Msg::ValidateReply { txn: t, reply } if t == txn => {
            Ok(TmEvent::ValidateReply { from, reply })
        }
        Msg::CommitReply { txn: t, reply } if t == txn => Ok(TmEvent::CommitReply { from, reply }),
        Msg::Ack { txn: t } if t == txn => Ok(TmEvent::Ack { from }),
        msg => Err(reply_counts_as_dropped(&msg)),
    }
}
